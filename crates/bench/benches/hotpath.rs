//! Criterion benchmarks of the driver hot path on large streaming trees
//! (DESIGN.md §6.11) — the statistical companion to the `bench_hotpath`
//! binary's single-shot sweep.
//!
//! These isolate the event loop: orders and the memory bound are computed
//! once per group, each iteration mints a scheduler and drives the
//! simulator over a 10⁴–10⁵-node tree. Activation runs every shape (O(1)
//! per event — pure driver cost); MemBooking runs only the random shape,
//! whose Θ(log n) height keeps its booking walks off the critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memtree_gen::large::{build, LargeShape};
use memtree_order::mem_postorder;
use memtree_sched::{Activation, MemBooking};
use memtree_sim::{simulate, SimConfig};

fn bench_driver_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_driver");
    for shape in [
        LargeShape::Chain,
        LargeShape::Caterpillar { legs: 4 },
        LargeShape::Random,
    ] {
        for &n in &[10_000usize, 100_000] {
            let tree = build(shape, n, 42);
            let ao = mem_postorder(&tree);
            let m = ao.sequential_peak(&tree) * 2;
            let cfg = SimConfig {
                measure_overhead: false,
                ..SimConfig::new(4, m)
            };
            group.bench_with_input(
                BenchmarkId::new(format!("Activation/{}", shape.label()), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let s = Activation::try_new(&tree, &ao, &ao, m).unwrap();
                        simulate(&tree, cfg, s).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_membooking_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_membooking");
    for &n in &[10_000usize, 100_000] {
        let tree = build(LargeShape::Random, n, 42);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let cfg = SimConfig {
            measure_overhead: false,
            ..SimConfig::new(4, m)
        };
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            b.iter(|| {
                let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
                simulate(&tree, cfg, s).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_driver_shapes, bench_membooking_random
}
criterion_main!(benches);
