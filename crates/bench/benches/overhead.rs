//! Criterion benchmarks of scheduling overhead (the measurements behind
//! Figures 5, 6 and 13, plus the optimised-vs-reference ablation).
//!
//! These time the *scheduler*, not the simulated application: the
//! simulation advances in virtual time, so wall-clock cost is dominated by
//! scheduler callbacks and engine bookkeeping — exactly the "scheduling
//! time" the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memtree_order::mem_postorder;
use memtree_sched::{Activation, MemBooking, MemBookingRef};
use memtree_sim::{simulate, SimConfig};
use memtree_tree::TaskTree;

fn synthetic(n: usize, seed: u64) -> TaskTree {
    memtree_gen::synthetic::paper_tree(n, seed)
}

/// A chain-like deep tree (the Figure 6 regime, H = Θ(n)).
fn deep_chain(n: usize) -> TaskTree {
    memtree_gen::shapes::chain(n, memtree_tree::TaskSpec::new(5, 10, 1.0))
}

fn bench_heuristics_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_synthetic");
    for &n in &[1_000usize, 10_000] {
        let tree = synthetic(n, 42);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let cfg = SimConfig {
            measure_overhead: false,
            ..SimConfig::new(8, m)
        };
        group.bench_with_input(BenchmarkId::new("MemBooking", n), &n, |b, _| {
            b.iter(|| {
                let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
                simulate(&tree, cfg, s).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("Activation", n), &n, |b, _| {
            b.iter(|| {
                let s = Activation::try_new(&tree, &ao, &ao, m).unwrap();
                simulate(&tree, cfg, s).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_deep_trees(c: &mut Criterion) {
    // The nH term: deep chains are MemBooking's worst case.
    let mut group = c.benchmark_group("schedule_deep_chain");
    for &n in &[1_000usize, 10_000, 50_000] {
        let tree = deep_chain(n);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let cfg = SimConfig {
            measure_overhead: false,
            ..SimConfig::new(8, m)
        };
        group.bench_with_input(BenchmarkId::new("MemBooking", n), &n, |b, _| {
            b.iter(|| {
                let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
                simulate(&tree, cfg, s).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_optimized_vs_reference(c: &mut Criterion) {
    // The Appendix-B data structures vs the literal Algorithms 2-4: the
    // complexity ablation (O(n(H+log n)) vs O(n²·H)).
    let mut group = c.benchmark_group("membooking_impls");
    let n = 2_000;
    let tree = synthetic(n, 7);
    let ao = mem_postorder(&tree);
    let m = ao.sequential_peak(&tree) * 2;
    let cfg = SimConfig {
        measure_overhead: false,
        ..SimConfig::new(8, m)
    };
    group.bench_function("optimized", |b| {
        b.iter(|| {
            let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
            simulate(&tree, cfg, s).unwrap()
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let s = MemBookingRef::try_new(&tree, &ao, &ao, m).unwrap();
            simulate(&tree, cfg, s).unwrap()
        })
    });
    group.finish();
}

fn bench_order_construction(c: &mut Criterion) {
    // Preprocessing cost: the orders are built once per tree.
    let mut group = c.benchmark_group("order_construction");
    let tree = synthetic(10_000, 3);
    group.bench_function("memPO", |b| b.iter(|| memtree_order::mem_postorder(&tree)));
    group.bench_function("OptSeq", |b| {
        b.iter(|| memtree_order::optimal_traversal(&tree))
    });
    group.bench_function("CP", |b| b.iter(|| memtree_order::cp_order(&tree)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_heuristics_by_size, bench_deep_trees,
              bench_optimized_vs_reference, bench_order_construction
}
criterion_main!(benches);
