//! Aggregation helpers: means, medians, deciles — the statistics the
//! paper's ribbon plots report.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// First decile (10th percentile).
    pub d1: f64,
    /// Ninth decile (90th percentile).
    pub d9: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values`. Returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        Some(Summary {
            count: n,
            mean,
            median: percentile(&v, 0.5),
            d1: percentile(&v, 0.1),
            d9: percentile(&v, 0.9),
            min: v[0],
            max: v[n - 1],
        })
    }
}

/// Linear-interpolation percentile of a sorted slice, `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.d1 - 1.4).abs() < 1e-12);
        assert!((s.d9 - 4.6).abs() < 1e-12);
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.d1, 7.0);
        assert_eq!(s.d9, 7.0);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 3.0);
        assert_eq!(percentile(&v, 0.5), 2.0);
    }
}
