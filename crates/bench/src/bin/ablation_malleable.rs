//! Malleable-allotment ablation (DESIGN.md §6.10): static moldable caps
//! vs the feedback rescheduler, on the **skewed-estimate corpus** — trees
//! whose allotment caps came from estimates that saw every task as tiny
//! (uniform cap 1), while the true work is heavy. The static run is then
//! near-serial; the rescheduler observes the live backlog and grows the
//! running gangs back to the whole machine.
//!
//! ```text
//! ablation_malleable [quick|full] [--out-dir DIR]
//! ```
//!
//! Prints one CSV row per case (sim-predicted and threaded-measured
//! makespans for both regimes) and writes `BENCH_malleable.json` into
//! `--out-dir` (default `bench-out`) — the artifact the `malleable-smoke`
//! CI job uploads. Exits 1 when a gate fails: on every skewed case the
//! malleable run must beat the static one by ≥10% on the virtual clock,
//! and by ≥10% wall-clock on `ThreadedPlatform` (sleep payload, so the
//! measurement is overlap, not host core count).

use memtree_bench::{ArgParser, TreeCase};
use memtree_runtime::{Platform, ThreadedPlatform, Workload};
use memtree_sched::{
    AllotmentCaps, HeuristicKind, MoldableMemBooking, PolicySpec, ProportionalRescheduler,
    ReschedulePolicy,
};
use memtree_sim::moldable::{simulate_moldable, simulate_moldable_with, SpeedupModel};
use memtree_tree::TaskSpec;
use std::io::Write;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: ablation_malleable [quick|full] [--out-dir DIR]");
    std::process::exit(2);
}

/// The corpus. Gated cases are the skewed-estimate ones: heavy true
/// times, caps from "tiny task" estimates. Chains are the worst case (no
/// tree parallelism to hide the bad caps behind); the caterpillar adds
/// some, so the gain is smaller but must still clear the gate. The
/// spindle (full scale only) is an ungated **contrast** row: its four
/// branches already saturate the machine under cap 1, so the rescheduler
/// has nothing to win there — reported to show where malleability does
/// not help, never expected to clear the gate.
fn cases(scale: &str) -> Vec<(TreeCase, bool)> {
    let n = match scale {
        "quick" => 24,
        "full" => 120,
        other => fail(&format!("unknown scale {other:?} (quick|full)")),
    };
    let mut v = vec![
        (
            TreeCase::new(
                "skew-chain",
                memtree_gen::shapes::chain(n, TaskSpec::new(1, 3, 4.0)),
            ),
            true,
        ),
        (
            TreeCase::new(
                "skew-caterpillar",
                memtree_gen::shapes::caterpillar(
                    n / 2,
                    2,
                    TaskSpec::new(1, 4, 4.0),
                    TaskSpec::new(0, 2, 2.0),
                ),
            ),
            true,
        ),
    ];
    if scale == "full" {
        v.push((
            TreeCase::new(
                "contrast-spindle",
                memtree_gen::shapes::spindle(4, n / 4, TaskSpec::new(0, 3, 3.0)),
            ),
            false,
        ));
    }
    v
}

struct Row {
    name: String,
    gated: bool,
    sim_static: f64,
    sim_malleable: f64,
    thr_static: f64,
    thr_malleable: f64,
}

fn main() {
    let mut parser = ArgParser::from_env();
    let out_dir = parser
        .take_value("--out-dir")
        .unwrap_or_else(|e| fail(&e))
        .map_or_else(|| PathBuf::from("bench-out"), PathBuf::from);
    let scale = parser
        .take_positional()
        .or_else(|| std::env::var("MEMTREE_SCALE").ok())
        .unwrap_or_else(|| "quick".into());
    parser.finish().unwrap_or_else(|e| fail(&e));

    let p = 4;
    // Sleep payload: compute time without burning CPU, so gang members
    // genuinely overlap even on a small host and the measured gain is the
    // rescheduler's, not the core count's. 1ms per time unit keeps every
    // malleable shard (1/16 of a task) well above OS sleep granularity —
    // smaller units measure wake-up latency, not overlap.
    let payload = Workload::Sleep {
        nanos_per_time_unit: 1_000_000.0,
        max_nanos: 4_000_000,
    };
    let policy = ReschedulePolicy::default();

    let mut rows: Vec<Row> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    println!("tree,platform,static_makespan,malleable_makespan,gain");
    for (c, gated) in &cases(&scale) {
        let gated = *gated;
        let ao = c.order(memtree_order::OrderKind::MemPostorder);
        let m = c.min_memory * 2;
        // The skewed estimate: every task looks tiny, so every cap is 1
        // and the static moldable schedule degenerates to sequential.
        let caps = AllotmentCaps::uniform(&c.tree, 1);

        let sched = MoldableMemBooking::try_new(&c.tree, &ao, &ao, m, caps.clone()).unwrap();
        let sim_static = simulate_moldable(&c.tree, p, m, SpeedupModel::Linear, sched).unwrap();
        sim_static.validate(&c.tree, SpeedupModel::Linear).unwrap();

        let sched = MoldableMemBooking::try_new(&c.tree, &ao, &ao, m, caps.clone()).unwrap();
        let mut resched = ProportionalRescheduler::new(&c.tree, policy);
        let sim_malleable = simulate_moldable_with(
            &c.tree,
            p,
            m,
            SpeedupModel::Linear,
            sched,
            Some(&mut resched),
        )
        .unwrap();
        sim_malleable
            .validate(&c.tree, SpeedupModel::Linear)
            .unwrap();
        println!(
            "{},sim,{:.1},{:.1},{:.2}",
            c.name,
            sim_static.makespan,
            sim_malleable.makespan,
            sim_static.makespan / sim_malleable.makespan
        );

        let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
        let threads = ThreadedPlatform::new(p).with_workload(payload);
        let thr_static = threads.run(&c.tree, &spec).unwrap();
        let thr_malleable = threads
            .with_rescheduler(policy)
            .run(&c.tree, &spec)
            .unwrap();
        println!(
            "{},threaded,{:.4},{:.4},{:.2}",
            c.name,
            thr_static.makespan,
            thr_malleable.makespan,
            thr_static.makespan / thr_malleable.makespan
        );

        if gated && sim_malleable.makespan > 0.9 * sim_static.makespan {
            violations.push(format!(
                "{}: sim malleable {:.1} not ≤ 0.9 × static {:.1}",
                c.name, sim_malleable.makespan, sim_static.makespan
            ));
        }
        if gated && thr_malleable.makespan > 0.9 * thr_static.makespan {
            violations.push(format!(
                "{}: threaded malleable {:.4}s not ≤ 0.9 × static {:.4}s",
                c.name, thr_malleable.makespan, thr_static.makespan
            ));
        }
        rows.push(Row {
            name: c.name.clone(),
            gated,
            sim_static: sim_static.makespan,
            sim_malleable: sim_malleable.makespan,
            thr_static: thr_static.makespan,
            thr_malleable: thr_malleable.makespan,
        });
    }

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out_dir.display())));
    let json_path = out_dir.join("BENCH_malleable.json");
    let mut json = std::fs::File::create(&json_path)
        .unwrap_or_else(|e| fail(&format!("creating BENCH_malleable.json: {e}")));
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"case\": \"{}\",\n      \"gated\": {},\n      \
                 \"sim_static\": {:.4},\n      \
                 \"sim_malleable\": {:.4},\n      \"sim_gain\": {:.4},\n      \
                 \"threaded_static_s\": {:.6},\n      \"threaded_malleable_s\": {:.6},\n      \
                 \"threaded_gain\": {:.4}\n    }}",
                r.name,
                r.gated,
                r.sim_static,
                r.sim_malleable,
                r.sim_static / r.sim_malleable,
                r.thr_static,
                r.thr_malleable,
                r.thr_static / r.thr_malleable,
            )
        })
        .collect();
    write!(
        json,
        "{{\n  \"scale\": \"{scale}\",\n  \"processors\": {p},\n  \"gate\": \
         \"malleable <= 0.9 x static on every gated case, sim and threaded\",\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    )
    .unwrap_or_else(|e| fail(&format!("writing BENCH_malleable.json: {e}")));
    println!("wrote {}", json_path.display());

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("gate violation: {v}");
        }
        std::process::exit(1);
    }
}
