//! Ablation (future-work extension): moldable MemBooking vs sequential
//! tasks across tree shapes and speedup models.
use memtree_bench::TreeCase;
use memtree_sched::{AllotmentCaps, MemBooking, MoldableMemBooking};
use memtree_sim::moldable::{simulate_moldable, SpeedupModel};
use memtree_sim::{simulate, SimConfig};
use memtree_tree::TaskSpec;

fn main() {
    let p = 8;
    let cases = vec![
        TreeCase::new(
            "chain-2000",
            memtree_gen::shapes::chain(2000, TaskSpec::new(1, 4, 2.0)),
        ),
        TreeCase::new(
            "caterpillar",
            memtree_gen::shapes::caterpillar(
                300,
                3,
                TaskSpec::new(1, 6, 2.0),
                TaskSpec::new(0, 2, 1.0),
            ),
        ),
        TreeCase::new("synthetic-5k", memtree_gen::synthetic::paper_tree(5000, 77)),
        TreeCase::new(
            "spindle-8x50",
            memtree_gen::shapes::spindle(8, 50, TaskSpec::new(0, 3, 1.0)),
        ),
    ];
    println!("tree,model,seq_makespan,moldable_makespan,gain");
    for c in &cases {
        let ao = c.order(memtree_order::OrderKind::MemPostorder);
        let m = c.min_memory * 2;
        let seq = simulate(
            &c.tree,
            SimConfig::new(p, m),
            MemBooking::try_new(&c.tree, &ao, &ao, m).unwrap(),
        )
        .unwrap()
        .makespan;
        for (label, model) in [
            ("linear", SpeedupModel::Linear),
            (
                "amdahl10",
                SpeedupModel::Amdahl {
                    serial_fraction: 0.1,
                },
            ),
        ] {
            let caps = AllotmentCaps::uniform(&c.tree, p as u32);
            let sched = MoldableMemBooking::try_new(&c.tree, &ao, &ao, m, caps).unwrap();
            let t = simulate_moldable(&c.tree, p, m, model, sched).unwrap();
            t.validate(&c.tree, model).unwrap();
            println!(
                "{},{label},{seq:.1},{:.1},{:.2}",
                c.name,
                t.makespan,
                seq / t.makespan
            );
        }
    }
    println!(
        "# moldability helps most where tree parallelism is scarce (chains), least on wide trees"
    );
}
