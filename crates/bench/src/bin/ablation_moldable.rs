//! Ablation (future-work extension): moldable MemBooking vs sequential
//! tasks across tree shapes and speedup models — on **both** platforms.
//!
//! The sim rows are the engine's *predicted* makespans under a speedup
//! model; the `threaded` rows are *measured* wall-clock seconds from the
//! gang-scheduled executor running a spin payload, so the prediction can
//! be checked against real threads (the gap is scheduling overhead plus
//! how well shard-splitting approximates the linear model).
use memtree_bench::TreeCase;
use memtree_runtime::{Platform, ThreadedPlatform, Workload};
use memtree_sched::{AllotmentCaps, HeuristicKind, MemBooking, MoldableMemBooking, PolicySpec};
use memtree_sim::moldable::{simulate_moldable, SpeedupModel};
use memtree_sim::{simulate, SimConfig};
use memtree_tree::TaskSpec;

fn main() {
    let p = 8;
    let cases = vec![
        TreeCase::new(
            "chain-2000",
            memtree_gen::shapes::chain(2000, TaskSpec::new(1, 4, 2.0)),
        ),
        TreeCase::new(
            "caterpillar",
            memtree_gen::shapes::caterpillar(
                300,
                3,
                TaskSpec::new(1, 6, 2.0),
                TaskSpec::new(0, 2, 1.0),
            ),
        ),
        TreeCase::new("synthetic-5k", memtree_gen::synthetic::paper_tree(5000, 77)),
        TreeCase::new(
            "spindle-8x50",
            memtree_gen::shapes::spindle(8, 50, TaskSpec::new(0, 3, 1.0)),
        ),
    ];
    // Sleep payload: models compute time without burning CPU, so gang
    // members genuinely overlap even when the host has fewer cores than
    // workers, and each member's shard (1/q of the sleep) still dominates
    // thread wake-up latency.
    let payload = Workload::Sleep {
        nanos_per_time_unit: 100_000.0,
        max_nanos: 400_000,
    };
    println!("tree,model,platform,seq_makespan,moldable_makespan,gain");
    for c in &cases {
        let ao = c.order(memtree_order::OrderKind::MemPostorder);
        let m = c.min_memory * 2;
        let seq = simulate(
            &c.tree,
            SimConfig::new(p, m),
            MemBooking::try_new(&c.tree, &ao, &ao, m).unwrap(),
        )
        .unwrap()
        .makespan;
        for (label, model) in [
            ("linear", SpeedupModel::Linear),
            (
                "amdahl10",
                SpeedupModel::Amdahl {
                    serial_fraction: 0.1,
                },
            ),
        ] {
            let caps = AllotmentCaps::uniform(&c.tree, p as u32);
            let sched = MoldableMemBooking::try_new(&c.tree, &ao, &ao, m, caps).unwrap();
            let t = simulate_moldable(&c.tree, p, m, model, sched).unwrap();
            t.validate(&c.tree, model).unwrap();
            println!(
                "{},{label},sim,{seq:.1},{:.1},{:.2}",
                c.name,
                t.makespan,
                seq / t.makespan
            );
        }
        // Threaded: the same specs gang-scheduled on real workers. Shards
        // split the spin payload evenly, so "measured" plays the role of
        // the linear model plus real-world overheads.
        let threads = ThreadedPlatform::new(p).with_workload(payload);
        let seq_spec = PolicySpec::new(HeuristicKind::MemBooking, m);
        let thr_seq = threads.run(&c.tree, &seq_spec).unwrap();
        let mold_spec = seq_spec
            .clone()
            .with_caps(AllotmentCaps::uniform(&c.tree, p as u32));
        let thr_mold = threads.run(&c.tree, &mold_spec).unwrap();
        println!(
            "{},measured,threaded,{:.4},{:.4},{:.2}",
            c.name,
            thr_seq.makespan,
            thr_mold.makespan,
            thr_seq.makespan / thr_mold.makespan
        );
    }
    println!(
        "# moldability helps most where tree parallelism is scarce (chains), least on wide trees"
    );
    println!("# threaded rows are wall-clock seconds from the gang-scheduled executor");
}
