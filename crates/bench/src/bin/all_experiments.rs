//! Runs every figure and table in sequence, with section markers.
//!
//! With `--cache-dir` the second run of this binary (or any per-figure
//! binary over the same corpora) replays every previously completed cell
//! from the content-addressed cache.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let ctx = args.ctx();
    let assembly = memtree_bench::assembly_source(args.scale);
    let synthetic = memtree_bench::synthetic_source(args.scale);
    let fa = memtree_bench::corpus::memory_factors(args.scale, 20.0);
    let fs = memtree_bench::corpus::memory_factors(args.scale, 10.0);
    use memtree_bench::figures as f;

    println!("=== fig02 makespan assembly ===");
    f::fig_makespan(&assembly, 8, &fa, &ctx).emit();
    println!("=== fig03 speedup assembly ===");
    f::fig_speedup(&assembly, 8, &fa, &ctx).emit();
    println!("=== fig04 memfrac assembly ===");
    f::fig_memfrac(&assembly, 8, &fa, &ctx).emit();
    println!("=== fig05/06 schedtime assembly ===");
    f::fig_schedtime(&assembly, 8, 2.0, &ctx).emit();
    println!("=== fig07 speedup vs height ===");
    f::fig_speedup_height(&assembly, 8, 2.0, &ctx).emit();
    println!("=== fig08 orders assembly ===");
    f::fig_orders(&assembly, 8, &fa, &ctx).emit();
    println!("=== fig09 processors assembly ===");
    f::fig_processors(&assembly, &[2, 4, 8, 16, 32], &fa, &ctx).emit();
    println!("=== fig10 makespan synthetic ===");
    f::fig_makespan(&synthetic, 8, &fs, &ctx).emit();
    println!("=== fig11 speedup synthetic ===");
    f::fig_speedup(&synthetic, 8, &fs, &ctx).emit();
    println!("=== fig12 memfrac synthetic ===");
    f::fig_memfrac(&synthetic, 8, &fs, &ctx).emit();
    println!("=== fig13 schedtime synthetic ===");
    f::fig_schedtime(&synthetic, 8, 2.0, &ctx).emit();
    println!("=== fig14 orders synthetic ===");
    f::fig_orders(&synthetic, 8, &fs, &ctx).emit();
    println!("=== fig15 processors synthetic ===");
    f::fig_processors(&synthetic, &[2, 4, 8, 16, 32], &fs, &ctx).emit();
    println!("=== fig16 backend scaling ===");
    f::fig_shards(
        &synthetic,
        8,
        &memtree_bench::Backend::default_axis(),
        16.0,
        &ctx,
    )
    .emit();
    println!("=== table: lower bound stats (assembly) ===");
    f::table_lowerbound(&assembly, 8, &fs).emit();
    println!("=== table: lower bound stats (synthetic) ===");
    f::table_lowerbound(&synthetic, 8, &fs).emit();
    println!("=== table: redtree failures (synthetic) ===");
    f::table_redtree_failures(&synthetic, &[1.0, 1.1, 1.2, 1.3, 1.4, 1.6, 2.0, 3.0]).emit();
    println!("=== table: degree distribution ===");
    f::table_degree_distribution(400_000, 7).emit();
}
