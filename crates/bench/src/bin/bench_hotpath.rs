//! The million-node hot-path gate: driver throughput on huge trees,
//! reported as ns per scheduled node (DESIGN.md §6.11).
//!
//! ```text
//! bench_hotpath [quick|full] [--out-dir DIR]
//!               [--max-sim-ns-per-node X] [--max-threaded-ns-per-node X]
//! ```
//!
//! `quick` (the `hotpath-smoke` CI scale) sweeps 10⁵-node simulator
//! cells; `full` sweeps 10⁶-node ones. Writes into `--out-dir` (default
//! `bench-out`):
//!
//! * `hotpath.csv` — every cell: shape, n, policy, backend, events,
//!   wall seconds, ns/node, nodes/sec.
//! * `BENCH_hotpath.json` — the perf trajectory artifact: the per-cell
//!   numbers plus totals and a peak-RSS proxy (`VmHWM`), uploaded per-PR
//!   so hot-path regressions show up as a trend.
//!
//! The `--max-*-ns-per-node` flags turn the run into a gate: exit 1 when
//! any cell on that backend is slower than the floor. CI floors carry
//! ~10× slack over measured steady-state numbers — they catch asymptotic
//! regressions (a per-event O(R) shift or allocation creeping back into
//! the loop), not scheduler jitter.

use memtree_bench::cli::peak_rss_kb;
use memtree_bench::{ArgParser, HotCell, HotSweep};
use std::fmt::Write as _;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench_hotpath [quick|full] [--out-dir DIR] \
         [--max-sim-ns-per-node X] [--max-threaded-ns-per-node X]"
    );
    std::process::exit(2);
}

fn take_float(parser: &mut ArgParser, name: &str) -> Option<f64> {
    parser
        .take_value(name)
        .unwrap_or_else(|e| fail(&e))
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|x| *x > 0.0)
                .unwrap_or_else(|| fail(&format!("{name} wants a positive number")))
        })
}

fn main() {
    let mut parser = ArgParser::from_env();
    let out_dir = parser
        .take_value("--out-dir")
        .unwrap_or_else(|e| fail(&e))
        .map_or_else(|| PathBuf::from("bench-out"), PathBuf::from);
    let max_sim = take_float(&mut parser, "--max-sim-ns-per-node");
    let max_threaded = take_float(&mut parser, "--max-threaded-ns-per-node");
    let scale = parser
        .take_positional()
        .or_else(|| std::env::var("MEMTREE_SCALE").ok());
    let sweep = match scale.as_deref() {
        Some("full") => HotSweep::full(),
        Some("quick") | None => HotSweep::quick(),
        Some(other) => fail(&format!("unknown scale {other:?} (quick|full)")),
    };
    parser.finish().unwrap_or_else(|e| fail(&e));

    let started = std::time::Instant::now();
    let cells = sweep.run();
    let wall_seconds = started.elapsed().as_secs_f64();

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out_dir.display())));

    let mut csv = String::new();
    csv.push_str(HotCell::csv_header());
    csv.push('\n');
    for c in &cells {
        csv.push_str(&c.csv_row());
        csv.push('\n');
    }
    let csv_path = out_dir.join("hotpath.csv");
    std::fs::write(&csv_path, csv).unwrap_or_else(|e| fail(&format!("writing hotpath.csv: {e}")));

    // The trajectory artifact: per-cell ns/node plus run totals.
    let total_nodes: usize = cells.iter().map(|c| c.tasks_run).sum();
    let peak_rss = peak_rss_kb();
    let peak_rss_json = peak_rss.map_or_else(|| "null".to_string(), |kb| kb.to_string());
    let mut json = String::from("{\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"shape\": \"{}\", \"n\": {}, \"policy\": \"{}\", \"backend\": \"{}\", \
             \"processors\": {}, \"events\": {}, \"tasks_run\": {}, \
             \"wall_seconds\": {:.6}, \"scheduling_seconds\": {:.6}, \
             \"gen_seconds\": {:.6}, \"ns_per_node\": {:.1}, \"nodes_per_sec\": {:.0}}}{sep}",
            c.shape,
            c.n,
            c.policy,
            c.backend,
            c.processors,
            c.events,
            c.tasks_run,
            c.wall_seconds,
            c.scheduling_seconds,
            c.gen_seconds,
            c.ns_per_node(),
            c.nodes_per_sec(),
        )
        .unwrap();
    }
    writeln!(
        json,
        "  ],\n  \"cell_count\": {},\n  \"total_nodes\": {total_nodes},\n  \
         \"wall_seconds\": {wall_seconds:.6},\n  \"cells_per_sec\": {:.3},\n  \
         \"peak_rss_kb\": {peak_rss_json}\n}}",
        cells.len(),
        if wall_seconds > 0.0 {
            cells.len() as f64 / wall_seconds
        } else {
            0.0
        },
    )
    .unwrap();
    let json_path = out_dir.join("BENCH_hotpath.json");
    std::fs::write(&json_path, json)
        .unwrap_or_else(|e| fail(&format!("writing BENCH_hotpath.json: {e}")));

    for c in &cells {
        println!(
            "bench_hotpath: {:>11} {:<22} {:>9} nodes on {:<8}: {:>8.1} ns/node ({:>9.0} nodes/s, {} events)",
            c.shape,
            c.policy,
            c.n,
            c.backend,
            c.ns_per_node(),
            c.nodes_per_sec(),
            c.events,
        );
    }
    println!(
        "bench_hotpath: {} cells, {total_nodes} scheduled nodes in {wall_seconds:.2}s, peak RSS {}",
        cells.len(),
        peak_rss.map_or_else(|| "unavailable".to_string(), |kb| format!("{kb} kB")),
    );
    println!("wrote {} and {}", csv_path.display(), json_path.display());

    let mut gate_failed = false;
    for (backend, floor) in [("sim", max_sim), ("threaded", max_threaded)] {
        let Some(floor) = floor else { continue };
        for c in cells.iter().filter(|c| c.backend == backend) {
            if c.ns_per_node() > floor {
                eprintln!(
                    "bench_hotpath: {} {} on {}: {:.1} ns/node exceeds the {floor:.1} floor",
                    c.shape,
                    c.policy,
                    backend,
                    c.ns_per_node(),
                );
                gate_failed = true;
            }
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}
