//! The CI perf gate: a downscaled streaming sweep, run cold then warm
//! against the content-addressed cell cache.
//!
//! ```text
//! bench_smoke [quick|full] [--cache-dir DIR] [--fresh] [--window N]
//!             [--backend LIST] [--shards LIST] [--out-dir DIR]
//!             [--min-hit-rate R] [--trees N]
//! ```
//!
//! Writes two artifacts into `--out-dir` (default `bench-out`):
//!
//! * `sweep.csv` — the full cell dump in grid order. Byte-identical
//!   between a cold and a warm run over the same cache (cached outcomes
//!   round-trip exactly), which the CI job asserts with `cmp`.
//! * `BENCH_sweep.json` — the perf trajectory: cells/sec, wall seconds,
//!   cache hit rate, threads, and a peak-RSS proxy (`VmHWM`), uploaded
//!   per-PR so regressions show up as a trend, not an anecdote.
//!
//! `--min-hit-rate R` turns the run into a gate: exit 1 when the cache
//! served less than fraction `R` of the cells (CI uses 0.95 on the warm
//! run).

use memtree_bench::{ArgParser, BenchArgs, CaseSource, Sweep, SweepReport, TreeCase};
use memtree_sched::HeuristicKind;
use std::io::Write;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench_smoke [quick|full] [--cache-dir DIR] [--fresh] [--window N] \
         [--backend LIST] [--shards LIST] [--out-dir DIR] [--min-hit-rate R] [--trees N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut parser = ArgParser::from_env();
    let out_dir = parser
        .take_value("--out-dir")
        .unwrap_or_else(|e| fail(&e))
        .map_or_else(|| PathBuf::from("bench-out"), PathBuf::from);
    let min_hit_rate: Option<f64> = parser
        .take_value("--min-hit-rate")
        .unwrap_or_else(|e| fail(&e))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--min-hit-rate wants a number in [0,1]"))
        });
    let trees: usize = parser
        .take_value("--trees")
        .unwrap_or_else(|e| fail(&e))
        .map_or(8, |v| {
            v.parse()
                .unwrap_or_else(|_| fail("--trees wants a positive integer"))
        });
    let args = BenchArgs::from_parser(&mut parser)
        .and_then(|a| parser.finish().map(|()| a))
        .unwrap_or_else(|e| fail(&e));

    // The downscaled grid: big enough to exercise streaming, multiple
    // policies and multi-axis lookups; small enough for seconds-scale CI.
    let mut cases = CaseSource::new();
    for k in 0..trees.max(1) {
        cases.push_lazy(move || {
            TreeCase::new(
                format!("smoke-{k}"),
                memtree_gen::synthetic::paper_tree(600, 9_000 + k as u64),
            )
        });
    }
    // The backend axis (`--backend`/`--shards`, default the simulator)
    // proves the cell cache is backend-aware: the CI job sweeps
    // sim + async + sharded and the warm run must replay every backend's
    // cells.
    let report = Sweep::new(&cases)
        .kinds(vec![
            HeuristicKind::Activation,
            HeuristicKind::MemBooking,
            HeuristicKind::MemBookingRedTree,
        ])
        .processors(vec![2, 4])
        .backends(args.backends_axis())
        .factors(vec![1.0, 1.5, 2.0, 3.0, 5.0])
        .ctx(&args.ctx())
        .run();

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out_dir.display())));
    let csv_path = out_dir.join("sweep.csv");
    let mut csv = String::new();
    csv.push_str(SweepReport::cell_csv_header());
    csv.push('\n');
    for row in report.cell_rows() {
        csv.push_str(&row);
        csv.push('\n');
    }
    std::fs::write(&csv_path, csv).unwrap_or_else(|e| fail(&format!("writing sweep.csv: {e}")));

    let cells = report.cells.len();
    let cells_per_sec = if report.wall_seconds > 0.0 {
        cells as f64 / report.wall_seconds
    } else {
        0.0
    };
    // An unavailable RSS proxy is JSON `null`, never a fake 0 — a 0 in
    // the trajectory artifact would read as a perfect-memory run.
    let peak_rss = memtree_bench::cli::peak_rss_kb();
    let peak_rss_json = peak_rss.map_or_else(|| "null".to_string(), |kb| kb.to_string());
    let json_path = out_dir.join("BENCH_sweep.json");
    let mut json = std::fs::File::create(&json_path)
        .unwrap_or_else(|e| fail(&format!("creating BENCH_sweep.json: {e}")));
    write!(
        json,
        "{{\n  \"cells\": {cells},\n  \"cases\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"cells_per_sec\": {:.3},\n  \"cache_hits\": {},\n  \"computed\": {},\n  \
         \"hit_rate\": {:.6},\n  \"threads_used\": {},\n  \"peak_rss_kb\": {peak_rss_json}\n}}\n",
        report.case_count(),
        report.wall_seconds,
        cells_per_sec,
        report.cache_hits,
        report.computed,
        report.hit_rate(),
        report.threads_used,
    )
    .unwrap_or_else(|e| fail(&format!("writing BENCH_sweep.json: {e}")));

    println!(
        "bench_smoke: {cells} cells in {:.2}s ({cells_per_sec:.0} cells/s), \
         {} cached / {} computed (hit rate {:.1}%), peak RSS {}",
        report.wall_seconds,
        report.cache_hits,
        report.computed,
        100.0 * report.hit_rate(),
        peak_rss.map_or_else(|| "unavailable".to_string(), |kb| format!("{kb} kB")),
    );
    println!("wrote {} and {}", csv_path.display(), json_path.display());

    if let Some(min) = min_hit_rate {
        if report.hit_rate() < min {
            eprintln!(
                "bench_smoke: hit rate {:.3} below the required {min:.3} — the cache \
                 did not resume this sweep",
                report.hit_rate()
            );
            std::process::exit(1);
        }
    }
}
