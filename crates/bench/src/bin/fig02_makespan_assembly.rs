//! Figure 2: normalized makespan vs memory bound, assembly trees, p = 8.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::assembly_source(args.scale);
    let factors = memtree_bench::corpus::memory_factors(args.scale, 20.0);
    memtree_bench::figures::fig_makespan(&cases, 8, &factors, &args.ctx()).emit();
}
