//! Figure 2: normalized makespan vs memory bound, assembly trees, p = 8.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::assembly_cases(scale);
    let factors = memtree_bench::corpus::memory_factors(scale, 20.0);
    memtree_bench::figures::fig_makespan(&cases, 8, &factors).emit();
}
