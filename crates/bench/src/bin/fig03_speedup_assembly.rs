//! Figure 3: MemBooking speedup over Activation, assembly trees.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::assembly_source(args.scale);
    let factors = memtree_bench::corpus::memory_factors(args.scale, 20.0);
    memtree_bench::figures::fig_speedup(&cases, 8, &factors, &args.ctx()).emit();
}
