//! Figure 3: speedup of MemBooking over Activation, assembly trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::assembly_cases(scale);
    let factors = memtree_bench::corpus::memory_factors(scale, 20.0);
    memtree_bench::figures::fig_speedup(&cases, 8, &factors).emit();
}
