//! Figure 5: scheduling time vs tree size, assembly trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::assembly_cases(scale);
    memtree_bench::figures::fig_schedtime(&cases, 8, 2.0).emit();
}
