//! Figure 6: scheduling time per node vs tree height (includes the deep
//! band-matrix chains).
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::assembly_cases(scale);
    memtree_bench::figures::fig_schedtime(&cases, 8, 2.0).emit();
}
