//! Figure 6: scheduling time per node vs tree height (includes the deep
//! band-matrix chains).
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::assembly_source(args.scale);
    memtree_bench::figures::fig_schedtime(&cases, 8, 2.0, &args.ctx()).emit();
}
