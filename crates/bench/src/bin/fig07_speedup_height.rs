//! Figure 7: MemBooking-over-Activation speedup against tree height.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::assembly_source(args.scale);
    memtree_bench::figures::fig_speedup_height(&cases, 8, 2.0, &args.ctx()).emit();
}
