//! Figure 7: speedup vs tree height at memory factor 2, assembly trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::assembly_cases(scale);
    memtree_bench::figures::fig_speedup_height(&cases, 8, 2.0).emit();
}
