//! Figure 9: the heuristics across p ∈ {2,4,8,16,32}, assembly trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::assembly_cases(scale);
    let factors = memtree_bench::corpus::memory_factors(scale, 20.0);
    memtree_bench::figures::fig_processors(&cases, &[2, 4, 8, 16, 32], &factors).emit();
}
