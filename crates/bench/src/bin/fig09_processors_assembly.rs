//! Figure 9: the heuristics across p ∈ {2,4,8,16,32}, assembly trees.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::assembly_source(args.scale);
    let factors = memtree_bench::corpus::memory_factors(args.scale, 20.0);
    memtree_bench::figures::fig_processors(&cases, &[2, 4, 8, 16, 32], &factors, &args.ctx())
        .emit();
}
