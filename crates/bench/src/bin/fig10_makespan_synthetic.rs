//! Figure 10: normalized makespan vs memory bound, synthetic trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::synthetic_cases(scale);
    let factors = memtree_bench::corpus::memory_factors(scale, 10.0);
    memtree_bench::figures::fig_makespan(&cases, 8, &factors).emit();
}
