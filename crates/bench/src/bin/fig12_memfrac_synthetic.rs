//! Figure 12: fraction of the memory bound used, synthetic trees.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::synthetic_source(args.scale);
    let factors = memtree_bench::corpus::memory_factors(args.scale, 10.0);
    memtree_bench::figures::fig_memfrac(&cases, 8, &factors, &args.ctx()).emit();
}
