//! Figure 13: scheduling time vs tree size, synthetic trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::synthetic_cases(scale);
    memtree_bench::figures::fig_schedtime(&cases, 8, 2.0).emit();
}
