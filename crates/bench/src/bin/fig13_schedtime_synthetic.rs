//! Figure 13: scheduling time vs tree size, synthetic trees.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::synthetic_source(args.scale);
    memtree_bench::figures::fig_schedtime(&cases, 8, 2.0, &args.ctx()).emit();
}
