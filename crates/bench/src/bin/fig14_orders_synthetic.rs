//! Figure 14: MemBooking under the six AO/EO combinations, synthetic trees.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::synthetic_source(args.scale);
    let factors = memtree_bench::corpus::memory_factors(args.scale, 10.0);
    memtree_bench::figures::fig_orders(&cases, 8, &factors, &args.ctx()).emit();
}
