//! Figure 14: MemBooking under six AO/EO combinations, synthetic trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::synthetic_cases(scale);
    let factors = memtree_bench::corpus::memory_factors(scale, 10.0);
    memtree_bench::figures::fig_orders(&cases, 8, &factors).emit();
}
