//! Figure 15: the heuristics across p ∈ {2,4,8,16,32}, synthetic trees.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::synthetic_cases(scale);
    let factors = memtree_bench::corpus::memory_factors(scale, 10.0);
    memtree_bench::figures::fig_processors(&cases, &[2, 4, 8, 16, 32], &factors).emit();
}
