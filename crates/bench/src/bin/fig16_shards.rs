//! Figure 16: shard-count scaling of the sharded forest platform
//! (MemBooking, synthetic corpus).
//!
//! The `--shards` axis defaults to `0,1,2,4,8`: the unsharded simulator
//! baseline plus the sharded backend at increasing worker counts. Cached
//! cells are shard-count-aware, so re-runs replay every completed
//! backend × shard-count combination.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::synthetic_source(args.scale);
    let shards = args.shards.clone().unwrap_or_else(|| vec![0, 1, 2, 4, 8]);
    // A roomy factor: the per-shard budget split must stay feasible at
    // the deepest shard count on the axis.
    memtree_bench::figures::fig_shards(&cases, 8, &shards, 16.0, &args.ctx()).emit();
}
