//! Figure 16: execution-backend scaling of the platform family
//! (MemBooking, synthetic corpus).
//!
//! The backend axis defaults to [`Backend::default_axis`] — the
//! unsharded simulator baseline, the threaded and async execution
//! backends, and the sharded platform at increasing shard counts;
//! `--backend`/`--shards` override it. Cached cells are backend-aware,
//! so re-runs replay every completed backend combination.

use memtree_bench::Backend;

fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::synthetic_source(args.scale);
    let backends = args.backends_axis_or(&Backend::default_axis());
    // A roomy factor: the per-shard budget split must stay feasible at
    // the deepest shard count on the axis.
    memtree_bench::figures::fig_shards(&cases, 8, &backends, 16.0, &args.ctx()).emit();
}
