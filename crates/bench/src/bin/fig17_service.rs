//! Multi-tenant service load experiment (DESIGN.md §6.9): N tenants
//! share one memory bound through `memtree_service` admission control,
//! across the three single-process backends.
//!
//! ```text
//! fig17_service [quick|full] [--backend LIST] [--tenants N]
//!               [--sessions N] [--rate R] [--grant NAME] [--out-dir DIR]
//! ```
//!
//! * `--backend` — comma-separated subset of `sim`, `threaded`, `async`
//!   (default all three);
//! * `--tenants` / `--sessions` / `--rate` — override the scale's load
//!   shape (tenant threads, sessions per tenant, aggregate arrivals/s);
//! * `--grant` — `all-available` (default), `minimum`, or `scaled:F`.
//!
//! Prints one CSV row per backend plus a shape summary, and writes
//! `BENCH_service.json` into `--out-dir` (default `bench-out`) — arrival
//! rate, admitted/refused counts, p99 admission latency, peak booked —
//! the artifact the `service-smoke` CI job uploads next to
//! `BENCH_sweep.json`. Exits 1 when any acceptance gate fails: the
//! concurrency target not sustained, a refusal count different from the
//! injected infeasible set, any under-floor grant, any failed run, or a
//! booking peak over the bound.

use memtree_bench::service_load::{run_load, LoadReport, LoadSpec};
use memtree_bench::ArgParser;
use memtree_runtime::Workload;
use memtree_service::{GrantPolicy, SessionBackend};
use std::io::Write;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fig17_service [quick|full] [--backend LIST] [--tenants N] \
         [--sessions N] [--rate R] [--grant NAME] [--out-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_grant(v: &str) -> GrantPolicy {
    match v {
        "all-available" => GrantPolicy::AllAvailable,
        "minimum" => GrantPolicy::Minimum,
        _ => match v.strip_prefix("scaled:").and_then(|f| f.parse().ok()) {
            Some(f) => GrantPolicy::Scaled(f),
            None => fail("--grant wants all-available, minimum or scaled:F"),
        },
    }
}

/// The backends under load. Sim sessions get a larger tree: virtual-time
/// runs hold no real resources, so wall-clock session lifetime — what
/// the concurrency gate needs to overlap — comes from tree size alone.
/// The executor backends sleep per task instead.
fn backends(names: &[String], sim_nodes: usize) -> Vec<(SessionBackend, usize)> {
    names
        .iter()
        .map(|n| match n.as_str() {
            "sim" => (SessionBackend::sim(4), sim_nodes),
            "threaded" => (
                SessionBackend::Threaded {
                    workers: 2,
                    workload: Workload::quick(),
                },
                0,
            ),
            "async" => (
                SessionBackend::Async {
                    workers: 2,
                    threads: 2,
                    workload: Workload::quick_io(),
                },
                0,
            ),
            other => fail(&format!("unknown backend {other:?}")),
        })
        .collect()
}

fn main() {
    let mut parser = ArgParser::from_env();
    let out_dir = parser
        .take_value("--out-dir")
        .unwrap_or_else(|e| fail(&e))
        .map_or_else(|| PathBuf::from("bench-out"), PathBuf::from);
    let backend_names: Vec<String> = parser
        .take_value("--backend")
        .unwrap_or_else(|e| fail(&e))
        .map_or_else(
            || vec!["sim".into(), "threaded".into(), "async".into()],
            |v| v.split(',').map(|s| s.trim().to_string()).collect(),
        );
    let grant = parser
        .take_value("--grant")
        .unwrap_or_else(|e| fail(&e))
        .map_or(GrantPolicy::AllAvailable, |v| parse_grant(&v));
    let tenants: Option<usize> = parser
        .take_value("--tenants")
        .unwrap_or_else(|e| fail(&e))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--tenants wants an integer"))
        });
    let sessions: Option<usize> = parser
        .take_value("--sessions")
        .unwrap_or_else(|e| fail(&e))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--sessions wants an integer"))
        });
    let rate: Option<f64> = parser
        .take_value("--rate")
        .unwrap_or_else(|e| fail(&e))
        .map(|v| v.parse().unwrap_or_else(|_| fail("--rate wants a number")));
    let scale = parser
        .take_positional()
        .or_else(|| std::env::var("MEMTREE_SCALE").ok())
        .unwrap_or_else(|| "quick".into());
    parser.finish().unwrap_or_else(|e| fail(&e));

    let mut spec = match scale.as_str() {
        "quick" => LoadSpec::quick(),
        "full" => LoadSpec::full(),
        other => fail(&format!("unknown scale {other:?} (quick|full)")),
    }
    .with_grant(grant);
    if let Some(t) = tenants {
        spec.tenants = t.max(spec.concurrency_target);
    }
    if let Some(s) = sessions {
        spec.sessions_per_tenant = s.max(1);
    }
    if let Some(r) = rate {
        spec.rate_per_sec = r.max(1.0);
    }
    let sim_nodes = spec.tree_nodes * 8;

    let mut reports: Vec<LoadReport> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for (backend, nodes_override) in backends(&backend_names, sim_nodes) {
        let mut b_spec = spec;
        if nodes_override > 0 {
            b_spec.tree_nodes = nodes_override;
        }
        let report = run_load(backend, &b_spec);
        violations.extend(report.violations(&b_spec));
        rows.push(report.csv_row());
        reports.push(report);
    }
    memtree_bench::print_csv(LoadReport::csv_header(), &rows);

    for r in &reports {
        println!(
            "fig17 {}: {} tenants peak (target {}), {}/{} admitted ({} queued), \
             {} refused (expected {}), peak booked {}/{} ({:.0}% of M), \
             admission wait p50 {}µs p99 {}µs at {:.0} sessions/s",
            r.backend,
            r.stats.peak_running,
            spec.concurrency_target,
            r.admitted_immediate + r.admitted_queued,
            r.submitted,
            r.admitted_queued,
            r.refused,
            r.expected_refusals,
            r.stats.peak_reserved,
            r.capacity,
            100.0 * r.stats.peak_reserved as f64 / r.capacity as f64,
            r.wait_p50_us,
            r.wait_p99_us,
            r.arrival_rate,
        );
    }

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", out_dir.display())));
    let json_path = out_dir.join("BENCH_service.json");
    let mut json = std::fs::File::create(&json_path)
        .unwrap_or_else(|e| fail(&format!("creating BENCH_service.json: {e}")));
    let entries: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"backend\": \"{}\",\n      \"grant\": \"{}\",\n      \
                 \"capacity\": {},\n      \"submitted\": {},\n      \"admitted\": {},\n      \
                 \"queued\": {},\n      \"refused\": {},\n      \"expected_refusals\": {},\n      \
                 \"peak_tenants\": {},\n      \"peak_booked\": {},\n      \
                 \"arrival_rate\": {:.2},\n      \"wait_p50_us\": {},\n      \
                 \"wait_p99_us\": {},\n      \"wall_seconds\": {:.4}\n    }}",
                r.backend,
                r.grant,
                r.capacity,
                r.submitted,
                r.admitted_immediate + r.admitted_queued,
                r.admitted_queued,
                r.refused,
                r.expected_refusals,
                r.stats.peak_running,
                r.stats.peak_reserved,
                r.arrival_rate,
                r.wait_p50_us,
                r.wait_p99_us,
                r.wall_seconds,
            )
        })
        .collect();
    write!(
        json,
        "{{\n  \"scale\": \"{scale}\",\n  \"tenants\": {},\n  \"sessions_per_tenant\": {},\n  \
         \"concurrency_target\": {},\n  \"backends\": [\n{}\n  ]\n}}\n",
        spec.tenants,
        spec.sessions_per_tenant,
        spec.concurrency_target,
        entries.join(",\n"),
    )
    .unwrap_or_else(|e| fail(&format!("writing BENCH_service.json: {e}")));
    println!("wrote {}", json_path.display());

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("gate violation: {v}");
        }
        std::process::exit(1);
    }
}
