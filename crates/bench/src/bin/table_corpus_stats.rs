//! Corpus inventory: the structural spread of the trees behind every
//! experiment (the reproduction's analogue of the paper's corpus
//! description in Section 7.1).
fn main() {
    let scale = memtree_bench::scale_from_env();
    println!("corpus,tree,nodes,height,max_degree,leaves,min_memory,total_time");
    for (corpus, cases) in [
        ("assembly", memtree_bench::assembly_cases(scale)),
        ("synthetic", memtree_bench::synthetic_cases(scale)),
    ] {
        for c in &cases {
            println!(
                "{corpus},{},{},{},{},{},{},{:.1}",
                c.name,
                c.len(),
                c.stats.height,
                c.stats.max_degree,
                c.tree.leaf_count(),
                c.min_memory,
                c.tree.total_time()
            );
        }
    }
}
