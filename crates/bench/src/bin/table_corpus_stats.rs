//! Corpus inventory: the structural spread of the trees behind every
//! experiment (the reproduction's analogue of the paper's corpus
//! description in Section 7.1). Streams both corpora — only one tree is
//! alive at a time no matter the scale.
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    println!("corpus,tree,nodes,height,max_degree,leaves,min_memory,total_time");
    for (corpus, source) in [
        ("assembly", memtree_bench::assembly_source(args.scale)),
        ("synthetic", memtree_bench::synthetic_source(args.scale)),
    ] {
        for c in source.iter() {
            println!(
                "{corpus},{},{},{},{},{},{},{:.1}",
                c.name,
                c.len(),
                c.stats.height,
                c.stats.max_degree,
                c.tree.leaf_count(),
                c.min_memory,
                c.tree.total_time()
            );
        }
    }
}
