//! Section 7.1: the synthetic generator's node-degree distribution.
fn main() {
    let _args = memtree_bench::BenchArgs::parse();
    memtree_bench::figures::table_degree_distribution(400_000, 7).emit();
}
