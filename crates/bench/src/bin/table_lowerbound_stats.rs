//! Section 6: how often the memory-aware lower bound beats the classical
//! one, on both corpora.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let factors = memtree_bench::corpus::memory_factors(scale, 10.0);
    println!("## assembly trees");
    let cases = memtree_bench::assembly_cases(scale);
    memtree_bench::figures::table_lowerbound(&cases, 8, &factors).emit();
    println!("## synthetic trees");
    let cases = memtree_bench::synthetic_cases(scale);
    memtree_bench::figures::table_lowerbound(&cases, 8, &factors).emit();
}
