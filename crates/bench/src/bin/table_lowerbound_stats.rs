//! Section 6: how often the memory-aware lower bound beats the classical
//! one, on both corpora (streamed: one tree alive at a time).
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let factors = memtree_bench::corpus::memory_factors(args.scale, 10.0);
    println!("## assembly trees");
    let cases = memtree_bench::assembly_source(args.scale);
    memtree_bench::figures::table_lowerbound(&cases, 8, &factors).emit();
    println!("## synthetic trees");
    let cases = memtree_bench::synthetic_source(args.scale);
    memtree_bench::figures::table_lowerbound(&cases, 8, &factors).emit();
}
