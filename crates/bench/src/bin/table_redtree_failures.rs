//! Section 7.4: fraction of synthetic trees MemBookingRedTree cannot
//! schedule under tight memory.
fn main() {
    let scale = memtree_bench::scale_from_env();
    let cases = memtree_bench::synthetic_cases(scale);
    let factors = [1.0, 1.1, 1.2, 1.3, 1.4, 1.6, 2.0, 3.0];
    memtree_bench::figures::table_redtree_failures(&cases, &factors).emit();
}
