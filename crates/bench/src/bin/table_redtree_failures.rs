//! Section 7.4: fraction of synthetic trees MemBookingRedTree cannot
//! schedule under tight memory (streamed: one tree alive at a time).
fn main() {
    let args = memtree_bench::BenchArgs::parse();
    let cases = memtree_bench::synthetic_source(args.scale);
    let factors = [1.0, 1.1, 1.2, 1.3, 1.4, 1.6, 2.0, 3.0];
    memtree_bench::figures::table_redtree_failures(&cases, &factors).emit();
}
