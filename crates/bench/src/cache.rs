//! **`CellCache`** — the content-addressed, on-disk store of completed
//! sweep cells (DESIGN.md §6.6).
//!
//! Every figure in the paper is an aggregation over a (trees × policies ×
//! orders × p × memory-factor) grid; the cells are pure functions of their
//! coordinates. This cache persists each completed [`RunOutcome`] under a
//! 128-bit key derived from *content*, never position:
//!
//! ```text
//! key = H(format version,
//!         tree content hash,          // memtree_tree::hash::content_hash
//!         PolicySpec fingerprint,     // kind + AO/EO + memory (+ caps)
//!         order pair, p, backend label, factor bits)
//! ```
//!
//! so renaming or reordering a corpus keeps every hit, while any change to
//! a tree or to a policy knob invalidates exactly the cells it affects. A
//! re-run of an interrupted sweep recomputes zero completed cells; a
//! policy tweak recomputes only that policy's series (ARMS-style cached
//! re-measurement, arXiv:2112.09509).
//!
//! ## Store format
//!
//! One file per cell (`<32 hex digits>.cell`), written atomically
//! (temp file + rename) so a killed sweep never leaves a half-written
//! entry under the final name. Each file is a versioned text record:
//!
//! ```text
//! memtree-cell v3
//! scheduled 1
//! makespan 1234.5
//! normalized 1.0625
//! memory_fraction 0.875
//! scheduling_seconds 0.00012
//! checksum 89abcdef01234567
//! ```
//!
//! `f64`s round-trip exactly through Rust's shortest-representation
//! formatting, so a warm run replays bit-identical outcomes and CSV output
//! is byte-identical to the cold run's. The trailing FNV-1a checksum
//! covers every preceding byte: corrupt or truncated files fail
//! verification, are treated as misses and silently recomputed — the
//! cache is an accelerator, never an authority.
//!
//! One deliberate consequence of byte-identical replay: the *measured*
//! `scheduling_seconds` is replayed too, so a warm run of the
//! scheduling-time figures (fig05/06/13) reports timings recorded when
//! the cell was first computed — possibly by an older build or another
//! machine. The simulated quantities (makespan, memory) are pure
//! functions of the key and always valid; for timing measurements of the
//! *current* build, pass `--fresh`.

use crate::runner::{Backend, OrderPair, RunOutcome};
use memtree_sched::{HeuristicKind, PolicySpec};
use memtree_tree::Fnv64;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version tag of both the key derivation and the file format; bumping it
/// orphans (never mis-reads) every existing entry. v2 added the shard
/// count to the key derivation; v3 generalised it to the execution
/// backend label (`sim`/`threaded`/`async`/`sharded:N`).
const FORMAT: &str = "memtree-cell v3";

/// A 128-bit content address of one sweep cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    hi: u64,
    lo: u64,
}

impl CellKey {
    /// The file name of this key inside a cache directory.
    pub fn file_name(&self) -> String {
        format!("{:016x}{:016x}.cell", self.hi, self.lo)
    }
}

/// Derives the content address of the cell `(tree, kind, pair, p,
/// backend, factor)`.
///
/// `tree_hash` is the tree's canonical content hash; the policy component
/// goes through [`PolicySpec::fingerprint`] built at the cell's actual
/// memory bound, so every behavioural knob of the policy feeds the key.
/// `backend` is the execution backend the cell runs on — each backend is
/// a different measurement (different clock, different machine shape), so
/// its label is part of the address and backends never alias each other.
/// Two independent FNV-1a lanes (distinct domain tags) form the 128-bit
/// address; at that width accidental collisions are out of reach for any
/// realistic sweep (billions of cells).
pub fn cell_key(
    tree_hash: u64,
    kind: HeuristicKind,
    pair: OrderPair,
    processors: usize,
    backend: Backend,
    factor: f64,
    memory: u64,
) -> CellKey {
    let spec = PolicySpec::new(kind, memory).with_orders(pair.ao, pair.eo);
    let lane = |tag: &str| {
        let mut h = Fnv64::with_tag(tag);
        h.write_str(FORMAT);
        h.write_u64(tree_hash);
        // The spec fingerprint covers kind, AO/EO and the memory bound.
        h.write_u64(spec.fingerprint());
        h.write_u64(processors as u64);
        h.write_str(&backend.label());
        h.write_f64(factor);
        h.finish()
    };
    CellKey {
        hi: lane("memtree-cell-key-hi"),
        lo: lane("memtree-cell-key-lo"),
    }
}

/// A directory of persisted sweep cells. Cheap to clone; safe to share
/// across the threads of one sweep and across concurrent processes
/// (atomic same-content writes).
#[derive(Clone, Debug)]
pub struct CellCache {
    dir: PathBuf,
    seq: std::sync::Arc<AtomicU64>,
}

impl CellCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CellCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CellCache {
            dir,
            seq: std::sync::Arc::new(AtomicU64::new(0)),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks `key` up. Returns `None` on a miss *or* on any entry that
    /// fails verification (bad magic, bad checksum, truncation, parse
    /// failure) — corrupt data is never trusted, the caller recomputes.
    pub fn lookup(&self, key: &CellKey) -> Option<RunOutcome> {
        let bytes = fs::read(self.dir.join(key.file_name())).ok()?;
        decode(&bytes)
    }

    /// Persists `outcome` under `key`, atomically (write to a unique temp
    /// file in the same directory, then rename). Concurrent writers of the
    /// same key race benignly: both write identical content.
    pub fn store(&self, key: &CellKey, outcome: &RunOutcome) -> io::Result<()> {
        // No `.cell` suffix: an orphan left by a killed process must never
        // be mistaken for a committed entry by `entry_paths`.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{:016x}{:016x}",
            std::process::id(),
            // ordering: Relaxed — only uniqueness of the counter value
            // matters (it lands in a file name); no data rides on it.
            self.seq.fetch_add(1, Ordering::Relaxed),
            key.hi,
            key.lo
        ));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&encode(outcome))?;
        f.sync_all()?;
        drop(f);
        let result = fs::rename(&tmp, self.dir.join(key.file_name()));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Paths of every committed entry (no temp files), unordered — for
    /// tests and maintenance tooling.
    pub fn entry_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for e in fs::read_dir(&self.dir)? {
            let p = e?.path();
            if p.extension().is_some_and(|x| x == "cell") {
                out.push(p);
            }
        }
        Ok(out)
    }

    /// Number of committed entries.
    pub fn entry_count(&self) -> io::Result<usize> {
        Ok(self.entry_paths()?.len())
    }
}

fn encode(o: &RunOutcome) -> Vec<u8> {
    let mut body = String::new();
    body.push_str(FORMAT);
    body.push('\n');
    body.push_str(&format!("scheduled {}\n", u8::from(o.scheduled)));
    body.push_str(&format!("makespan {}\n", o.makespan));
    body.push_str(&format!("normalized {}\n", o.normalized));
    body.push_str(&format!("memory_fraction {}\n", o.memory_fraction));
    body.push_str(&format!("scheduling_seconds {}\n", o.scheduling_seconds));
    let mut h = Fnv64::with_tag("memtree-cell-body");
    h.write_bytes(body.as_bytes());
    body.push_str(&format!("checksum {:016x}\n", h.finish()));
    body.into_bytes()
}

fn decode(bytes: &[u8]) -> Option<RunOutcome> {
    let text = std::str::from_utf8(bytes).ok()?;
    // The checksum line covers every byte before it.
    let body_end = text.rfind("checksum ")?;
    let (body, tail) = text.split_at(body_end);
    let stored: u64 = u64::from_str_radix(tail.strip_prefix("checksum ")?.trim(), 16).ok()?;
    let mut h = Fnv64::with_tag("memtree-cell-body");
    h.write_bytes(body.as_bytes());
    if h.finish() != stored {
        return None;
    }
    let mut lines = body.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let mut field = |name: &str| -> Option<&str> {
        let line = lines.next()?;
        line.strip_prefix(name)?.strip_prefix(' ')
    };
    let scheduled = match field("scheduled")? {
        "1" => true,
        "0" => false,
        _ => return None,
    };
    let outcome = RunOutcome {
        scheduled,
        makespan: field("makespan")?.parse().ok()?,
        normalized: field("normalized")?.parse().ok()?,
        memory_fraction: field("memory_fraction")?.parse().ok()?,
        scheduling_seconds: field("scheduling_seconds")?.parse().ok()?,
    };
    Some(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_order::OrderKind;

    const SIM: Backend = Backend::Sim;

    fn temp_cache(tag: &str) -> CellCache {
        let dir =
            std::env::temp_dir().join(format!("memtree-cellcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CellCache::open(dir).unwrap()
    }

    fn outcome() -> RunOutcome {
        RunOutcome {
            scheduled: true,
            makespan: 1234.567891011,
            normalized: 1.0000000000000002, // next f64 after 1.0: exactness matters
            memory_fraction: 0.87654321,
            scheduling_seconds: 1.25e-4,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let cache = temp_cache("roundtrip");
        let key = cell_key(
            42,
            HeuristicKind::MemBooking,
            OrderPair::default_pair(),
            8,
            SIM,
            2.0,
            999,
        );
        assert!(cache.lookup(&key).is_none());
        let o = outcome();
        cache.store(&key, &o).unwrap();
        let back = cache.lookup(&key).unwrap();
        assert_eq!(back.scheduled, o.scheduled);
        assert_eq!(back.makespan.to_bits(), o.makespan.to_bits());
        assert_eq!(back.normalized.to_bits(), o.normalized.to_bits());
        assert_eq!(back.memory_fraction.to_bits(), o.memory_fraction.to_bits());
        assert_eq!(
            back.scheduling_seconds.to_bits(),
            o.scheduling_seconds.to_bits()
        );
        assert_eq!(cache.entry_count().unwrap(), 1);
    }

    #[test]
    fn keys_separate_every_coordinate() {
        let pair = OrderPair::default_pair();
        let base = cell_key(1, HeuristicKind::MemBooking, pair, 8, SIM, 2.0, 100);
        let other_pair = OrderPair {
            ao: OrderKind::MemPostorder,
            eo: OrderKind::CriticalPath,
        };
        let variants = [
            cell_key(2, HeuristicKind::MemBooking, pair, 8, SIM, 2.0, 100),
            cell_key(1, HeuristicKind::Activation, pair, 8, SIM, 2.0, 100),
            cell_key(1, HeuristicKind::MemBooking, other_pair, 8, SIM, 2.0, 100),
            cell_key(1, HeuristicKind::MemBooking, pair, 4, SIM, 2.0, 100),
            // The execution backend is a key coordinate: the backends'
            // measurements never alias each other.
            cell_key(
                1,
                HeuristicKind::MemBooking,
                pair,
                8,
                Backend::Sharded(2),
                2.0,
                100,
            ),
            // Same shard count, different backing (threads vs processes):
            // still distinct addresses.
            cell_key(
                1,
                HeuristicKind::MemBooking,
                pair,
                8,
                Backend::Process(2),
                2.0,
                100,
            ),
            cell_key(
                1,
                HeuristicKind::MemBooking,
                pair,
                8,
                Backend::Threaded,
                2.0,
                100,
            ),
            cell_key(
                1,
                HeuristicKind::MemBooking,
                pair,
                8,
                Backend::Async,
                2.0,
                100,
            ),
            cell_key(1, HeuristicKind::MemBooking, pair, 8, SIM, 3.0, 100),
            cell_key(1, HeuristicKind::MemBooking, pair, 8, SIM, 2.0, 101),
        ];
        for v in &variants {
            assert_ne!(base, *v);
        }
        // Distinct backends are pairwise distinct too.
        for (i, a) in variants.iter().enumerate() {
            for b in &variants[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // And the derivation is deterministic.
        assert_eq!(
            base,
            cell_key(1, HeuristicKind::MemBooking, pair, 8, SIM, 2.0, 100)
        );
    }

    #[test]
    fn corrupt_and_truncated_entries_are_misses() {
        let cache = temp_cache("corrupt");
        let key = cell_key(
            7,
            HeuristicKind::Activation,
            OrderPair::default_pair(),
            4,
            SIM,
            1.5,
            50,
        );
        cache.store(&key, &outcome()).unwrap();
        let path = cache.dir().join(key.file_name());

        // Flip a payload byte: checksum fails.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(cache.lookup(&key).is_none(), "corrupt entry trusted");

        // Truncate: also a miss.
        cache.store(&key, &outcome()).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.lookup(&key).is_none(), "truncated entry trusted");

        // Garbage and empty files too.
        fs::write(&path, b"not a cell at all").unwrap();
        assert!(cache.lookup(&key).is_none());
        fs::write(&path, b"").unwrap();
        assert!(cache.lookup(&key).is_none());

        // A fresh store repairs the entry.
        cache.store(&key, &outcome()).unwrap();
        assert!(cache.lookup(&key).is_some());
    }

    #[test]
    fn orphaned_temp_files_are_not_entries() {
        let cache = temp_cache("orphan");
        let key = cell_key(
            3,
            HeuristicKind::MemBooking,
            OrderPair::default_pair(),
            2,
            SIM,
            2.0,
            64,
        );
        cache.store(&key, &outcome()).unwrap();
        // Simulate a process killed between create and rename.
        fs::write(cache.dir().join(".tmp-1234-0-deadbeefdeadbeef"), b"partial").unwrap();
        assert_eq!(cache.entry_count().unwrap(), 1);
        assert!(cache.entry_paths().unwrap().iter().all(|p| !p
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with(".tmp-")));
    }

    #[test]
    fn unscheduled_outcomes_roundtrip() {
        let cache = temp_cache("unsched");
        let key = cell_key(
            9,
            HeuristicKind::MemBookingRedTree,
            OrderPair::default_pair(),
            2,
            SIM,
            1.0,
            10,
        );
        let o = RunOutcome {
            scheduled: false,
            makespan: 0.0,
            normalized: 0.0,
            memory_fraction: 0.0,
            scheduling_seconds: 0.0,
        };
        cache.store(&key, &o).unwrap();
        let back = cache.lookup(&key).unwrap();
        assert!(!back.scheduled);
        assert_eq!(back.makespan, 0.0);
    }
}
