//! The tiny shared CLI of every figure/table binary.
//!
//! All 20 experiment binaries accept the same surface:
//!
//! ```text
//! <binary> [quick|full] [--cache-dir DIR] [--fresh] [--window N]
//!          [--backend LIST] [--shards LIST]
//! ```
//!
//! * the positional scale (or `MEMTREE_SCALE`) picks the corpus size;
//! * `--cache-dir` (or `MEMTREE_CACHE_DIR`) attaches the content-addressed
//!   [`CellCache`] so re-runs replay completed cells;
//! * `--fresh` recomputes everything while refreshing the store;
//! * `--window` overrides the streaming sweep's in-flight case window;
//! * `--backend` sets the execution-backend axis (comma-separated:
//!   `sim`, `threaded`, `async`, `sharded:N`, `process:N`, or bare
//!   `sharded`/`process` which expand against the `--shards` counts);
//! * `--shards` sets the shard-count axis (comma-separated; `0` is the
//!   unsharded simulator) — the PR-4 spelling, mapped onto the backend
//!   axis when `--backend` is absent.
//!
//! Binaries with extra options (`bench_smoke`) reuse [`ArgParser`]
//! directly and take their extras before handing the rest to
//! [`BenchArgs::from_parser`].

use crate::cache::CellCache;
use crate::corpus::Scale;
use crate::runner::Backend;
use crate::sweep::SweepCtx;
use std::path::PathBuf;

/// A minimal flag parser over `std::env::args` — enough structure for the
/// experiment binaries without an external dependency.
#[derive(Debug)]
pub struct ArgParser {
    args: Vec<String>,
}

impl ArgParser {
    /// Parses the process arguments (excluding the binary name).
    pub fn from_env() -> Self {
        ArgParser {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// A parser over explicit arguments (tests).
    pub fn from_args(args: &[&str]) -> Self {
        ArgParser {
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Removes `name` if present; returns whether it was.
    pub fn take_flag(&mut self, name: &str) -> bool {
        match self.args.iter().position(|a| a == name) {
            Some(i) => {
                self.args.remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes `name VALUE` if present; returns the value.
    ///
    /// # Errors
    /// When the flag is present without a value — a following `--flag`
    /// does not count, so `--cache-dir --fresh` reports the missing
    /// value instead of caching into a directory named `--fresh`.
    pub fn take_value(&mut self, name: &str) -> Result<Option<String>, String> {
        match self.args.iter().position(|a| a == name) {
            Some(i) if i + 1 < self.args.len() && !self.args[i + 1].starts_with("--") => {
                self.args.remove(i);
                Ok(Some(self.args.remove(i)))
            }
            Some(_) => Err(format!("{name} requires a value")),
            None => Ok(None),
        }
    }

    /// Removes and returns the next positional (non-`--`) argument.
    pub fn take_positional(&mut self) -> Option<String> {
        let i = self.args.iter().position(|a| !a.starts_with("--"))?;
        Some(self.args.remove(i))
    }

    /// Succeeds only when every argument has been consumed.
    ///
    /// # Errors
    /// Lists the leftover (unrecognised) arguments.
    pub fn finish(self) -> Result<(), String> {
        if self.args.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognised arguments: {}", self.args.join(" ")))
        }
    }
}

/// The options shared by every figure/table binary.
#[derive(Debug)]
pub struct BenchArgs {
    /// Corpus scale (positional `quick`/`full` or `MEMTREE_SCALE`).
    pub scale: Scale,
    /// Cell-cache directory (`--cache-dir` or `MEMTREE_CACHE_DIR`).
    pub cache_dir: Option<PathBuf>,
    /// Recompute cells even on cache hits (`--fresh`).
    pub fresh: bool,
    /// Streaming window override (`--window`).
    pub window: Option<usize>,
    /// Shard-count axis (`--shards`, comma-separated; 0 = the unsharded
    /// simulator), `None` when the flag was not given — so binaries with
    /// their own default axis (`fig16_shards`) can tell "unset" apart
    /// from an explicit `--shards 0`. Feeds the backend axis through
    /// [`BenchArgs::backends_axis`].
    pub shards: Option<Vec<usize>>,
    /// Execution-backend axis (`--backend`, comma-separated names —
    /// `sim`, `threaded`, `async`, `sharded:N`, `process:N`; bare
    /// `sharded`/`process` expand against the `--shards` counts), `None`
    /// when the flag was not given. Feed [`BenchArgs::backends_axis`] to
    /// [`crate::Sweep::backends`].
    pub backends: Option<Vec<Backend>>,
}

impl BenchArgs {
    /// Parses the process arguments; prints usage and exits on bad input.
    pub fn parse() -> BenchArgs {
        let mut parser = ArgParser::from_env();
        let parsed = Self::from_parser(&mut parser).and_then(|args| parser.finish().map(|()| args));
        match parsed {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [quick|full] [--cache-dir DIR] [--fresh] [--window N] \
                     [--backend LIST] [--shards LIST]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Consumes the shared options from `parser`, leaving any extras for
    /// the caller. Environment fallbacks: `MEMTREE_SCALE`,
    /// `MEMTREE_CACHE_DIR`.
    ///
    /// # Errors
    /// On a malformed scale, window, or missing flag value.
    pub fn from_parser(parser: &mut ArgParser) -> Result<BenchArgs, String> {
        // Flags (and their values) are consumed before the positional
        // scan, so `--cache-dir /tmp/c quick` parses the same as
        // `quick --cache-dir /tmp/c` — a flag's value must never be
        // mistaken for the scale.
        let cache_dir = parser
            .take_value("--cache-dir")?
            .or_else(|| std::env::var("MEMTREE_CACHE_DIR").ok())
            .map(PathBuf::from);
        let fresh = parser.take_flag("--fresh");
        let window = parser
            .take_value("--window")?
            .map(|w| {
                w.parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or_else(|| format!("--window must be a positive integer, got {w:?}"))
            })
            .transpose()?;
        let shards = parser
            .take_value("--shards")?
            .map(|v| {
                let counts: Result<Vec<usize>, String> = v
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<usize>().map_err(|_| {
                            format!("--shards wants comma-separated counts, got {v:?}")
                        })
                    })
                    .collect();
                let counts = counts?;
                if counts.is_empty() {
                    return Err(String::from("--shards needs at least one count"));
                }
                Ok(counts)
            })
            .transpose()?;
        let backends = parser
            .take_value("--backend")?
            .map(|v| {
                let mut out = Vec::new();
                for name in v.split(',').map(str::trim) {
                    if name == "sharded" || name == "process" {
                        // Bare `sharded`/`process` expands against the
                        // --shards counts (default: 2 shards).
                        let counts = shards
                            .clone()
                            .unwrap_or_else(|| vec![2])
                            .into_iter()
                            .filter(|&s| s >= 1)
                            .collect::<Vec<_>>();
                        if counts.is_empty() {
                            return Err(format!("--backend {name} needs a --shards count >= 1"));
                        }
                        let wrap = if name == "sharded" {
                            Backend::Sharded
                        } else {
                            Backend::Process
                        };
                        out.extend(counts.into_iter().map(wrap));
                    } else {
                        out.push(Backend::parse(name)?);
                    }
                }
                if out.is_empty() {
                    return Err(String::from("--backend needs at least one name"));
                }
                Ok(out)
            })
            .transpose()?;
        let scale_arg = parser
            .take_positional()
            .or_else(|| std::env::var("MEMTREE_SCALE").ok());
        let scale = match scale_arg.as_deref() {
            Some("full") => Scale::Full,
            Some("quick") | None => Scale::Quick,
            Some(other) => return Err(format!("unknown scale {other:?} (quick|full)")),
        };
        Ok(BenchArgs {
            scale,
            cache_dir,
            fresh,
            window,
            shards,
            backends,
        })
    }

    /// The shard-count axis for [`crate::Sweep::shards`]: the explicit
    /// `--shards` list, or the single unsharded backend when unset.
    pub fn shards_axis(&self) -> Vec<usize> {
        self.shards.clone().unwrap_or_else(|| vec![0])
    }

    /// The execution-backend axis for [`crate::Sweep::backends`]: the
    /// explicit `--backend` list when given, else the `--shards` list
    /// through the PR-4 encoding ([`Backend::from_shards`]), else the
    /// single simulator backend.
    pub fn backends_axis(&self) -> Vec<Backend> {
        if let Some(backends) = &self.backends {
            return backends.clone();
        }
        self.shards_axis()
            .into_iter()
            .map(Backend::from_shards)
            .collect()
    }

    /// [`BenchArgs::backends_axis`] with a caller default: the
    /// flag-derived axis when `--backend` or `--shards` was given, else
    /// `default` — for binaries whose natural axis is wider than the
    /// single simulator backend (`fig16_shards`).
    pub fn backends_axis_or(&self, default: &[Backend]) -> Vec<Backend> {
        if self.backends.is_some() || self.shards.is_some() {
            self.backends_axis()
        } else {
            default.to_vec()
        }
    }

    /// The sweep execution knobs these arguments describe. Opens (creating
    /// if needed) the cache directory.
    ///
    /// # Panics
    /// When the cache directory cannot be created — an unusable `--cache-dir`
    /// should fail loudly, not silently recompute.
    pub fn ctx(&self) -> SweepCtx {
        let cache = self.cache_dir.as_ref().map(|d| {
            CellCache::open(d)
                .unwrap_or_else(|e| panic!("cannot open cache dir {}: {e}", d.display()))
        });
        SweepCtx {
            cache,
            fresh: self.fresh,
            window: self.window,
        }
    }
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`) — the RSS proxy recorded in `BENCH_sweep.json` to
/// track the streaming sweep's memory trajectory.
///
/// Returns `None` off Linux, when `/proc/self/status` is unreadable, or
/// when the `VmHWM` line is missing or unparsable — "unknown" must stay
/// distinguishable from a genuine measurement (a fake 0 would read as a
/// perfect-memory run in the trajectory artifact; `bench_smoke` emits
/// JSON `null` instead).
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest.trim().trim_end_matches("kB").trim().parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_consumes_flags_values_and_positionals() {
        let mut p = ArgParser::from_args(&["full", "--fresh", "--cache-dir", "/tmp/c"]);
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(args.scale, Scale::Full);
        assert!(args.fresh);
        assert_eq!(
            args.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        assert_eq!(args.window, None);
        assert_eq!(args.shards, None);
        assert_eq!(args.shards_axis(), vec![0]);
    }

    #[test]
    fn shards_axis_parses_comma_lists() {
        let mut p = ArgParser::from_args(&["--shards", "0,2,4"]);
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(args.shards, Some(vec![0, 2, 4]));
        assert_eq!(args.shards_axis(), vec![0, 2, 4]);

        // An explicit `--shards 0` is distinguishable from the default.
        let mut p = ArgParser::from_args(&["--shards", "0"]);
        assert_eq!(
            BenchArgs::from_parser(&mut p).unwrap().shards,
            Some(vec![0])
        );

        let mut p = ArgParser::from_args(&["--shards", "two"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());
    }

    #[test]
    fn leftovers_and_bad_values_error() {
        let mut p = ArgParser::from_args(&["--bogus"]);
        let _ = BenchArgs::from_parser(&mut p).unwrap();
        assert!(p.finish().is_err());

        let mut p = ArgParser::from_args(&["--window", "0"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());

        let mut p = ArgParser::from_args(&["--cache-dir"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());

        // A following flag is not a value.
        let mut p = ArgParser::from_args(&["--cache-dir", "--fresh"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());

        let mut p = ArgParser::from_args(&["medium"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());
    }

    #[test]
    fn flags_may_precede_the_positional_scale() {
        let mut p = ArgParser::from_args(&["--cache-dir", "/tmp/c", "full"]);
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(args.scale, Scale::Full);
        assert_eq!(
            args.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
    }

    #[test]
    fn extras_can_be_taken_before_shared_parsing() {
        let mut p = ArgParser::from_args(&["quick", "--out-dir", "x", "--window", "3"]);
        assert_eq!(p.take_value("--out-dir").unwrap().as_deref(), Some("x"));
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(args.window, Some(3));
        assert_eq!(args.scale, Scale::Quick);
    }

    #[test]
    fn peak_rss_is_measured_and_positive_on_linux() {
        #[cfg(target_os = "linux")]
        assert!(peak_rss_kb().expect("VmHWM available on Linux") > 0);
        #[cfg(not(target_os = "linux"))]
        assert_eq!(peak_rss_kb(), None);
    }

    #[test]
    fn backend_axis_parses_names_and_expands_sharded() {
        let mut p = ArgParser::from_args(&["--backend", "sim,threaded,async,sharded:4"]);
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(
            args.backends_axis(),
            vec![
                Backend::Sim,
                Backend::Threaded,
                Backend::Async,
                Backend::Sharded(4)
            ]
        );

        // Bare `sharded` expands against the --shards counts (0 entries,
        // being the unsharded simulator, do not produce sharded cells).
        let mut p = ArgParser::from_args(&["--backend", "sim,sharded", "--shards", "0,2,4"]);
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(
            args.backends_axis(),
            vec![Backend::Sim, Backend::Sharded(2), Backend::Sharded(4)]
        );

        // … and defaults to 2 shards without --shards.
        let mut p = ArgParser::from_args(&["--backend", "sharded"]);
        assert_eq!(
            BenchArgs::from_parser(&mut p).unwrap().backends_axis(),
            vec![Backend::Sharded(2)]
        );

        // Without --backend, --shards feeds the axis through the PR-4
        // encoding; without either, the axis is the simulator.
        let mut p = ArgParser::from_args(&["--shards", "0,2"]);
        assert_eq!(
            BenchArgs::from_parser(&mut p).unwrap().backends_axis(),
            vec![Backend::Sim, Backend::Sharded(2)]
        );
        let mut p = ArgParser::from_args(&[]);
        assert_eq!(
            BenchArgs::from_parser(&mut p).unwrap().backends_axis(),
            vec![Backend::Sim]
        );

        // Unknown names and malformed shard suffixes error loudly.
        let mut p = ArgParser::from_args(&["--backend", "simulator"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());
        let mut p = ArgParser::from_args(&["--backend", "sharded:0"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());
        let mut p = ArgParser::from_args(&["--backend", "sharded:two"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());
    }

    #[test]
    fn backend_axis_parses_and_expands_process() {
        let mut p = ArgParser::from_args(&["--backend", "process:2,process:4"]);
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(
            args.backends_axis(),
            vec![Backend::Process(2), Backend::Process(4)]
        );
        assert_eq!(Backend::Process(4).label(), "process:4");

        // Bare `process` expands against --shards, skipping the 0 entry
        // (the unsharded simulator is not a process configuration).
        let mut p = ArgParser::from_args(&["--backend", "process", "--shards", "0,1,4"]);
        let args = BenchArgs::from_parser(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(
            args.backends_axis(),
            vec![Backend::Process(1), Backend::Process(4)]
        );

        // … and defaults to 2 shards without --shards.
        let mut p = ArgParser::from_args(&["--backend", "process"]);
        assert_eq!(
            BenchArgs::from_parser(&mut p).unwrap().backends_axis(),
            vec![Backend::Process(2)]
        );

        let mut p = ArgParser::from_args(&["--backend", "process:0"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());
        let mut p = ArgParser::from_args(&["--backend", "process:", "--shards", "2"]);
        assert!(BenchArgs::from_parser(&mut p).is_err());
    }
}
