//! Corpora for the experiments: assembly trees (multifrontal pipeline)
//! and the paper's synthetic family.

use crate::runner::TreeCase;
use memtree_multifrontal::CorpusSpec;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small corpora: every binary finishes in seconds to a couple of
    /// minutes. The default.
    Quick,
    /// Paper-sized corpora (within laptop limits).
    Full,
}

/// The assembly-tree corpus (the UFL-collection stand-in; DESIGN.md §5).
pub fn assembly_cases(scale: Scale) -> Vec<TreeCase> {
    let spec = match scale {
        Scale::Quick => CorpusSpec {
            grids2d: vec![20, 30, 40, 50],
            grids3d: vec![7, 9],
            bands: vec![(3_000, 1), (8_000, 1), (2_000, 3)],
            randoms: vec![(1_500, 2_200, 11), (3_000, 4_500, 12), (3_000, 1_500, 13)],
            amalgamate_below: 0,
            params: Default::default(),
        },
        Scale::Full => CorpusSpec::evaluation(),
    };
    memtree_multifrontal::assembly_corpus(&spec)
        .into_iter()
        .map(|(name, tree)| TreeCase::new(name, tree))
        .collect()
}

/// The synthetic corpus of Section 7.1: `count` trees per size.
pub fn synthetic_cases(scale: Scale) -> Vec<TreeCase> {
    let plan: &[(usize, usize)] = match scale {
        // (node count, number of trees)
        Scale::Quick => &[(1_000, 12), (10_000, 6)],
        Scale::Full => &[(1_000, 50), (10_000, 50), (100_000, 12)],
    };
    let mut out = Vec::new();
    for &(n, count) in plan {
        for k in 0..count {
            let seed = 1_000 * n as u64 + k as u64;
            let tree = memtree_gen::synthetic::paper_tree(n, seed);
            out.push(TreeCase::new(format!("synth-{n}-{k}"), tree));
        }
    }
    out
}

/// The memory factors swept by the makespan figures (the paper's x-axis
/// "normalized memory bound", 1…20 for assembly trees, 1…10 synthetic).
pub fn memory_factors(scale: Scale, max: f64) -> Vec<f64> {
    let base: Vec<f64> = match scale {
        Scale::Quick => vec![1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0, 15.0, 20.0],
        Scale::Full => vec![
            1.0, 1.1, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0,
        ],
    };
    base.into_iter().filter(|&f| f <= max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpora_build() {
        let a = assembly_cases(Scale::Quick);
        assert!(a.len() >= 8);
        let s = synthetic_cases(Scale::Quick);
        assert_eq!(s.len(), 18);
        for c in a.iter().chain(&s) {
            assert!(c.min_memory > 0, "{} has zero minimum memory", c.name);
        }
    }

    #[test]
    fn factors_capped() {
        let f = memory_factors(Scale::Quick, 10.0);
        assert!(f.iter().all(|&x| x <= 10.0));
        assert_eq!(f[0], 1.0);
    }
}
