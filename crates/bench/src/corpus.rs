//! Corpora for the experiments: assembly trees (multifrontal pipeline)
//! and the paper's synthetic family.
//!
//! Each corpus comes in two shapes: the materialised `*_cases` (a `Vec`
//! of built [`TreeCase`]s) and the streaming `*_source` (a lazy
//! [`CaseSource`] of cheap descriptors realised on demand), which is what
//! the windowed [`crate::Sweep`] consumes to keep peak RSS bounded by its
//! in-flight window instead of the corpus size.

use crate::runner::{CaseSource, TreeCase};
use memtree_multifrontal::CorpusSpec;
use std::sync::Arc;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small corpora: every binary finishes in seconds to a couple of
    /// minutes. The default.
    Quick,
    /// Paper-sized corpora (within laptop limits).
    Full,
}

fn assembly_spec(scale: Scale) -> CorpusSpec {
    match scale {
        Scale::Quick => CorpusSpec {
            grids2d: vec![20, 30, 40, 50],
            grids3d: vec![7, 9],
            bands: vec![(3_000, 1), (8_000, 1), (2_000, 3)],
            randoms: vec![(1_500, 2_200, 11), (3_000, 4_500, 12), (3_000, 1_500, 13)],
            amalgamate_below: 0,
            params: Default::default(),
        },
        Scale::Full => CorpusSpec::evaluation(),
    }
}

/// The assembly-tree corpus as a streaming source: each tree runs the
/// symbolic pipeline only when its sweep window arrives.
pub fn assembly_source(scale: Scale) -> CaseSource {
    let spec = Arc::new(assembly_spec(scale));
    let mut source = CaseSource::new();
    for id in spec.case_ids() {
        let spec = spec.clone();
        source.push_lazy(move || {
            let (name, tree) = spec.build_case(&id);
            TreeCase::new(name, tree)
        });
    }
    source
}

/// The assembly-tree corpus (the UFL-collection stand-in; DESIGN.md §5),
/// fully materialised.
pub fn assembly_cases(scale: Scale) -> Vec<TreeCase> {
    memtree_multifrontal::assembly_corpus(&assembly_spec(scale))
        .into_iter()
        .map(|(name, tree)| TreeCase::new(name, tree))
        .collect()
}

/// (node count, number of trees) per scale.
fn synthetic_plan(scale: Scale) -> &'static [(usize, usize)] {
    match scale {
        Scale::Quick => &[(1_000, 12), (10_000, 6)],
        Scale::Full => &[(1_000, 50), (10_000, 50), (100_000, 12)],
    }
}

/// The synthetic corpus of Section 7.1 as a streaming source: each tree
/// is generated from its seed when its sweep window arrives.
pub fn synthetic_source(scale: Scale) -> CaseSource {
    let mut source = CaseSource::new();
    for &(n, count) in synthetic_plan(scale) {
        for k in 0..count {
            let seed = 1_000 * n as u64 + k as u64;
            source.push_lazy(move || {
                TreeCase::new(
                    format!("synth-{n}-{k}"),
                    memtree_gen::synthetic::paper_tree(n, seed),
                )
            });
        }
    }
    source
}

/// The synthetic corpus of Section 7.1, fully materialised.
pub fn synthetic_cases(scale: Scale) -> Vec<TreeCase> {
    let source = synthetic_source(scale);
    (0..source.len())
        .map(|i| {
            Arc::try_unwrap(source.build(i)).unwrap_or_else(|_| unreachable!("fresh lazy build"))
        })
        .collect()
}

/// The memory factors swept by the makespan figures (the paper's x-axis
/// "normalized memory bound", 1…20 for assembly trees, 1…10 synthetic).
pub fn memory_factors(scale: Scale, max: f64) -> Vec<f64> {
    let base: Vec<f64> = match scale {
        Scale::Quick => vec![1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0, 15.0, 20.0],
        Scale::Full => vec![
            1.0, 1.1, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0,
        ],
    };
    base.into_iter().filter(|&f| f <= max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpora_build() {
        let a = assembly_cases(Scale::Quick);
        assert!(a.len() >= 8);
        let s = synthetic_cases(Scale::Quick);
        assert_eq!(s.len(), 18);
        for c in a.iter().chain(&s) {
            assert!(c.min_memory > 0, "{} has zero minimum memory", c.name);
        }
    }

    #[test]
    fn sources_stream_the_same_corpora() {
        let eager = synthetic_cases(Scale::Quick);
        let source = synthetic_source(Scale::Quick);
        assert_eq!(source.len(), eager.len());
        for (got, want) in source.iter().zip(&eager) {
            assert_eq!(got.name, want.name);
            assert_eq!(got.content_hash(), want.content_hash());
        }
        // Assembly: spot-check the first case without building the whole
        // corpus twice.
        let asm_source = assembly_source(Scale::Quick);
        let first = asm_source.build(0);
        assert_eq!(first.name, "grid2d-20");
        assert!(first.min_memory > 0);
        assert_eq!(asm_source.len(), assembly_cases(Scale::Quick).len());
    }

    #[test]
    fn factors_capped() {
        let f = memory_factors(Scale::Quick, 10.0);
        assert!(f.iter().all(|&x| x <= 10.0));
        assert_eq!(f[0], 1.0);
    }
}
