//! The experiment implementations behind every figure/table binary.
//!
//! Each function returns a [`FigureOutput`]; binaries print it. The
//! `notes` field carries the shape summary recorded in EXPERIMENTS.md.
//!
//! Every simulator-backed figure runs its scenario grid through
//! [`Sweep`], so the (tree × policy × p × memory) cells fan out across
//! all cores and stream through a bounded case window; the caller's
//! [`SweepCtx`] decides whether cells replay from the content-addressed
//! cache. Aggregations read the report's cells and per-case metadata —
//! never the trees themselves, which the streaming sweep has already
//! dropped.

use crate::aggregate::Summary;
use crate::runner::{Backend, CaseSource, OrderPair};
use crate::sweep::{Sweep, SweepCtx, SweepReport};
use memtree_sched::HeuristicKind;

/// CSV payload plus human-readable findings.
pub struct FigureOutput {
    /// CSV header.
    pub header: String,
    /// CSV rows.
    pub rows: Vec<String>,
    /// Shape-summary lines (printed after the CSV, `# `-prefixed).
    pub notes: Vec<String>,
}

impl FigureOutput {
    /// Prints the CSV and notes to stdout.
    pub fn emit(&self) {
        crate::print_csv(&self.header, &self.rows);
        for n in &self.notes {
            println!("# {n}");
        }
    }
}

/// The three heuristics of the headline comparison.
fn main_heuristics() -> Vec<HeuristicKind> {
    vec![
        HeuristicKind::Activation,
        HeuristicKind::MemBookingRedTree,
        HeuristicKind::MemBooking,
    ]
}

/// The sweep-execution note shared by every figure.
fn sweep_note(report: &SweepReport, p: usize) -> String {
    format!(
        "corpus size: {} trees, p = {p}; {} sweep cells on {} threads ({} cached, {} computed)",
        report.case_count(),
        report.cells.len(),
        report.threads_used,
        report.cache_hits,
        report.computed
    )
}

/// Normalized makespans of the scheduled cells in a series.
fn scheduled_normalized(
    report: &SweepReport,
    kind: HeuristicKind,
    pair: OrderPair,
    p: usize,
    factor: f64,
) -> Vec<f64> {
    report
        .series(kind, pair, p, factor)
        .filter(|c| c.outcome.scheduled)
        .map(|c| c.outcome.normalized)
        .collect()
}

/// Figures 2 and 10: normalized makespan vs normalized memory bound for
/// the three heuristics.
pub fn fig_makespan(cases: &CaseSource, p: usize, factors: &[f64], ctx: &SweepCtx) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(main_heuristics())
        .processors(vec![p])
        .factors(factors.to_vec())
        .ctx(ctx)
        .run();
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut mb_at_2 = f64::NAN;
    let mut ac_at_2 = f64::NAN;
    for &factor in factors {
        for kind in main_heuristics() {
            let label = kind.label();
            let scheduled =
                scheduled_normalized(&report, kind, OrderPair::default_pair(), p, factor);
            let coverage = scheduled.len() as f64 / report.case_count() as f64;
            if let Some(s) = Summary::of(&scheduled) {
                rows.push(format!(
                    "{factor},{label},{:.4},{:.4},{:.3}",
                    s.mean, s.median, coverage
                ));
                if (factor - 2.0).abs() < 1e-9 {
                    if kind == HeuristicKind::MemBooking {
                        mb_at_2 = s.mean;
                    }
                    if kind == HeuristicKind::Activation {
                        ac_at_2 = s.mean;
                    }
                }
            } else {
                rows.push(format!("{factor},{label},NA,NA,{coverage:.3}"));
            }
        }
    }
    if mb_at_2.is_finite() && ac_at_2.is_finite() {
        notes.push(format!(
            "at memory factor 2: MemBooking mean normalized makespan {mb_at_2:.3} vs Activation {ac_at_2:.3} (ratio {:.2})",
            ac_at_2 / mb_at_2
        ));
    }
    notes.push(sweep_note(&report, p));
    FigureOutput {
        header:
            "memory_factor,heuristic,mean_normalized_makespan,median_normalized_makespan,coverage"
                .into(),
        rows,
        notes,
    }
}

/// Per-factor speedups of MemBooking over Activation (cells paired by
/// tree; only trees both policies scheduled count).
fn speedups_at(report: &SweepReport, p: usize, factor: f64) -> Vec<f64> {
    let pair = OrderPair::default_pair();
    (0..report.case_count())
        .filter_map(|ci| {
            let mb = report.cell(ci, HeuristicKind::MemBooking, pair, p, factor)?;
            let ac = report.cell(ci, HeuristicKind::Activation, pair, p, factor)?;
            (mb.outcome.scheduled && ac.outcome.scheduled && mb.outcome.makespan > 0.0)
                .then(|| ac.outcome.makespan / mb.outcome.makespan)
        })
        .collect()
}

/// Figures 3 and 11: the speedup distribution of MemBooking over
/// Activation per memory factor.
pub fn fig_speedup(cases: &CaseSource, p: usize, factors: &[f64], ctx: &SweepCtx) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
        .processors(vec![p])
        .factors(factors.to_vec())
        .ctx(ctx)
        .run();
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &factor in factors {
        let speedups = speedups_at(&report, p, factor);
        if let Some(s) = Summary::of(&speedups) {
            rows.push(format!(
                "{factor},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                s.mean, s.median, s.d1, s.d9, s.min, s.max
            ));
            if (factor - 2.0).abs() < 1e-9 {
                notes.push(format!(
                    "speedup at factor 2: mean {:.3}, median {:.3}, range [{:.2}, {:.2}] (paper: avg 1.25-1.45 on assembly trees)",
                    s.mean, s.median, s.min, s.max
                ));
            }
        }
    }
    FigureOutput {
        header: "memory_factor,mean_speedup,median_speedup,decile1,decile9,min,max".into(),
        rows,
        notes,
    }
}

/// Figures 4 and 12: fraction of the memory bound actually used.
pub fn fig_memfrac(cases: &CaseSource, p: usize, factors: &[f64], ctx: &SweepCtx) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(main_heuristics())
        .processors(vec![p])
        .factors(factors.to_vec())
        .ctx(ctx)
        .run();
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &factor in factors {
        for kind in main_heuristics() {
            let fr: Vec<f64> = report
                .series(kind, OrderPair::default_pair(), p, factor)
                .filter(|c| c.outcome.scheduled)
                .map(|c| c.outcome.memory_fraction)
                .collect();
            if let Some(s) = Summary::of(&fr) {
                rows.push(format!(
                    "{factor},{},{:.4},{:.4}",
                    kind.label(),
                    s.mean,
                    s.median
                ));
                if (factor - 2.0).abs() < 1e-9 && kind == HeuristicKind::MemBooking {
                    notes.push(format!(
                        "MemBooking uses {:.0}% of the bound at factor 2 — the competitors are more conservative",
                        100.0 * s.mean
                    ));
                }
            }
        }
    }
    FigureOutput {
        header: "memory_factor,heuristic,mean_memory_fraction,median_memory_fraction".into(),
        rows,
        notes,
    }
}

/// Figures 5, 6 and 13: scheduling time against tree size and height.
pub fn fig_schedtime(cases: &CaseSource, p: usize, factor: f64, ctx: &SweepCtx) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(main_heuristics())
        .processors(vec![p])
        .factors(vec![factor])
        .ctx(ctx)
        .run();
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let mut worst_per_node = 0f64;
    for (ci, meta) in report.cases.iter().enumerate() {
        for kind in main_heuristics() {
            let Some(cell) = report.cell(ci, kind, OrderPair::default_pair(), p, factor) else {
                continue;
            };
            if !cell.outcome.scheduled {
                continue;
            }
            let per_node = cell.outcome.scheduling_seconds / meta.nodes as f64;
            worst_per_node = worst_per_node.max(per_node);
            rows.push(format!(
                "{},{},{},{},{:.6e},{:.6e}",
                meta.name,
                meta.nodes,
                meta.height,
                kind.label(),
                cell.outcome.scheduling_seconds,
                per_node
            ));
        }
    }
    notes.push(format!(
        "worst scheduling time per node: {worst_per_node:.2e} s (paper: below 1 ms per node even at height 1e5)"
    ));
    FigureOutput {
        header: "tree,nodes,height,heuristic,scheduling_seconds,seconds_per_node".into(),
        rows,
        notes,
    }
}

/// Figure 7: speedup of MemBooking over Activation against tree height at
/// a fixed memory factor.
pub fn fig_speedup_height(
    cases: &CaseSource,
    p: usize,
    factor: f64,
    ctx: &SweepCtx,
) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
        .processors(vec![p])
        .factors(vec![factor])
        .ctx(ctx)
        .run();
    let pair = OrderPair::default_pair();
    let mut rows = Vec::new();
    let mut shallow = Vec::new();
    let mut deep = Vec::new();
    for (ci, meta) in report.cases.iter().enumerate() {
        let (Some(mb), Some(ac)) = (
            report.cell(ci, HeuristicKind::MemBooking, pair, p, factor),
            report.cell(ci, HeuristicKind::Activation, pair, p, factor),
        ) else {
            continue;
        };
        if mb.outcome.scheduled && ac.outcome.scheduled && mb.outcome.makespan > 0.0 {
            let s = ac.outcome.makespan / mb.outcome.makespan;
            rows.push(format!(
                "{},{},{},{:.4}",
                meta.name, meta.nodes, meta.height, s
            ));
            if (meta.height as usize) * 4 > meta.nodes {
                deep.push(s);
            } else {
                shallow.push(s);
            }
        }
    }
    let mut notes = Vec::new();
    if let (Some(sh), Some(dp)) = (Summary::of(&shallow), Summary::of(&deep)) {
        notes.push(format!(
            "mean speedup: shallow trees {:.3} vs deep trees {:.3} (paper: best speedups on shallow trees)",
            sh.mean, dp.mean
        ));
    }
    FigureOutput {
        header: "tree,nodes,height,speedup_vs_activation".into(),
        rows,
        notes,
    }
}

/// Figures 8 and 14: MemBooking under the six AO/EO combinations.
pub fn fig_orders(cases: &CaseSource, p: usize, factors: &[f64], ctx: &SweepCtx) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(vec![HeuristicKind::MemBooking])
        .pairs(OrderPair::paper_combinations())
        .processors(vec![p])
        .factors(factors.to_vec())
        .ctx(ctx)
        .run();
    let mut rows = Vec::new();
    let mut best_at_2: Option<(String, f64)> = None;
    for &factor in factors {
        for pair in OrderPair::paper_combinations() {
            let vals: Vec<f64> = report
                .series(HeuristicKind::MemBooking, pair, p, factor)
                .filter(|c| c.outcome.scheduled)
                .map(|c| c.outcome.normalized)
                .collect();
            if let Some(s) = Summary::of(&vals) {
                rows.push(format!(
                    "{factor},{},{:.4},{:.4}",
                    pair.label(),
                    s.mean,
                    s.median
                ));
                if (factor - 2.0).abs() < 1e-9
                    && best_at_2.as_ref().is_none_or(|(_, m)| s.mean < *m)
                {
                    best_at_2 = Some((pair.label(), s.mean));
                }
            }
        }
    }
    let mut notes = Vec::new();
    if let Some((label, mean)) = best_at_2 {
        notes.push(format!(
            "best AO/EO at factor 2: {label} (mean {mean:.3}); paper finds CP execution order best, with small gaps"
        ));
    }
    FigureOutput {
        header: "memory_factor,ao_eo,mean_normalized_makespan,median_normalized_makespan".into(),
        rows,
        notes,
    }
}

/// Figures 9 and 15: the heuristics across processor counts.
pub fn fig_processors(
    cases: &CaseSource,
    processors: &[usize],
    factors: &[f64],
    ctx: &SweepCtx,
) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(main_heuristics())
        .processors(processors.to_vec())
        .factors(factors.to_vec())
        .ctx(ctx)
        .run();
    let mut rows = Vec::new();
    let mut gaps: Vec<(usize, f64)> = Vec::new();
    for &p in processors {
        let mut mb2 = f64::NAN;
        let mut ac2 = f64::NAN;
        for &factor in factors {
            for kind in main_heuristics() {
                let vals: Vec<f64> = report
                    .series(kind, OrderPair::default_pair(), p, factor)
                    .filter(|c| c.outcome.scheduled)
                    .map(|c| c.outcome.normalized)
                    .collect();
                if let Some(s) = Summary::of(&vals) {
                    rows.push(format!("{p},{factor},{},{:.4}", kind.label(), s.mean));
                    if (factor - 2.0).abs() < 1e-9 {
                        match kind {
                            HeuristicKind::MemBooking => mb2 = s.mean,
                            HeuristicKind::Activation => ac2 = s.mean,
                            _ => {}
                        }
                    }
                }
            }
        }
        if mb2.is_finite() && ac2.is_finite() {
            gaps.push((p, ac2 / mb2));
        }
    }
    let notes = vec![format!(
        "Activation/MemBooking mean-normalized ratio at factor 2, by p: {} (paper: the gain grows with p)",
        gaps.iter()
            .map(|(p, g)| format!("p={p}: {g:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    )];
    FigureOutput {
        header: "processors,memory_factor,heuristic,mean_normalized_makespan".into(),
        rows,
        notes,
    }
}

/// Figure 16: execution-backend scaling, shard counts included.
///
/// One MemBooking series per backend: the simulator baseline reports
/// virtual-time makespans; the execution backends (threaded, async,
/// sharded) report the run's wall-clock seconds — the scaling quantity
/// `BENCH_sweep.json` tracks across PRs. Each backend is its own
/// cache-key coordinate, so the rows carry the backend label rather than
/// pretending the clocks compare.
pub fn fig_shards(
    cases: &CaseSource,
    p: usize,
    backends: &[Backend],
    factor: f64,
    ctx: &SweepCtx,
) -> FigureOutput {
    let report = Sweep::new(cases)
        .kinds(vec![HeuristicKind::MemBooking])
        .processors(vec![p])
        .backends(backends.to_vec())
        .factors(vec![factor])
        .ctx(ctx)
        .run();
    let mut rows = Vec::new();
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for &b in backends {
        let cells: Vec<_> = report
            .series_at(
                HeuristicKind::MemBooking,
                OrderPair::default_pair(),
                p,
                b,
                factor,
            )
            .collect();
        let scheduled: Vec<f64> = cells
            .iter()
            .filter(|c| c.outcome.scheduled)
            .map(|c| c.outcome.makespan)
            .collect();
        let coverage = scheduled.len() as f64 / report.case_count().max(1) as f64;
        if let Some(summary) = Summary::of(&scheduled) {
            rows.push(format!(
                "{},{coverage:.3},{:.6},{:.6}",
                b.label(),
                summary.mean,
                summary.median
            ));
            if let Backend::Sharded(s) = b {
                scaling.push((s, summary.mean));
            }
        } else {
            rows.push(format!("{},{coverage:.3},NA,NA", b.label()));
        }
    }
    let mut notes = vec![sweep_note(&report, p)];
    if let (Some((s1, t1)), Some((sn, tn))) = (scaling.first(), scaling.last()) {
        if s1 != sn && *tn > 0.0 {
            notes.push(format!(
                "sharded wall-clock scaling: {s1} shard(s) {t1:.4}s -> {sn} shards {tn:.4}s \
                 ({:.2}x)",
                t1 / tn
            ));
        }
    }
    FigureOutput {
        header: "backend,scheduled_fraction,mean_makespan,median_makespan".into(),
        rows,
        notes,
    }
}

/// Section 6 statistics: how often and by how much the memory-aware lower
/// bound improves on the classical one.
///
/// Streams the corpus: each tree is built, measured at every factor, and
/// dropped before the next one is realised.
pub fn table_lowerbound(cases: &CaseSource, p: usize, factors: &[f64]) -> FigureOutput {
    let mut improved = vec![0usize; factors.len()];
    let mut gains: Vec<Vec<f64>> = vec![Vec::new(); factors.len()];
    let mut improvements = Vec::new();
    let mut total = 0usize;
    for c in cases.iter() {
        for (fi, &factor) in factors.iter().enumerate() {
            let lb = c.lower_bounds(p, factor);
            total += 1;
            if lb.memory_bound_improves() {
                improved[fi] += 1;
                gains[fi].push(lb.improvement_ratio());
                improvements.push(lb.improvement_ratio());
            }
        }
    }
    let rows = factors
        .iter()
        .enumerate()
        .map(|(fi, factor)| {
            let avg = Summary::of(&gains[fi]).map_or(0.0, |s| s.mean);
            format!(
                "{factor},{:.3},{:.3}",
                improved[fi] as f64 / cases.len() as f64,
                avg
            )
        })
        .collect();
    let overall = Summary::of(&improvements).map_or(0.0, |s| s.mean);
    let total_improved: usize = improved.iter().sum();
    let notes = vec![format!(
        "memory-aware bound improves the classical bound in {:.0}% of (tree, M) cases, by {:.0}% on average when it does (paper: 22%/46% assembly, 33%/37% synthetic at p = 8)",
        100.0 * total_improved as f64 / total as f64,
        100.0 * overall
    )];
    FigureOutput {
        header: "memory_factor,fraction_improved,avg_improvement_when_improved".into(),
        rows,
        notes,
    }
}

/// Section 7.4 statistic: the fraction of trees MemBookingRedTree cannot
/// schedule under tight memory bounds.
///
/// Streams the corpus (one tree and its reduction transform alive at a
/// time).
pub fn table_redtree_failures(cases: &CaseSource, factors: &[f64]) -> FigureOutput {
    let mut failed = vec![0usize; factors.len()];
    for c in cases.iter() {
        let red_min = c.redtree_min_memory();
        for (fi, &factor) in factors.iter().enumerate() {
            if red_min > c.memory_at(factor) {
                failed[fi] += 1;
            }
        }
    }
    let mut rows = Vec::new();
    let mut note_at_14 = String::new();
    for (fi, &factor) in factors.iter().enumerate() {
        let frac = failed[fi] as f64 / cases.len() as f64;
        rows.push(format!("{factor},{frac:.3}"));
        if (factor - 1.4).abs() < 0.05 {
            note_at_14 = format!(
                "at factor 1.4, RedTree cannot schedule {:.0}% of the trees (paper: ≥33% of synthetic trees below 1.4)",
                100.0 * frac
            );
        }
    }
    let notes = if note_at_14.is_empty() {
        vec![]
    } else {
        vec![note_at_14]
    };
    FigureOutput {
        header: "memory_factor,fraction_unschedulable".into(),
        rows,
        notes,
    }
}

/// The Section 7.1 degree table, measured from the generator.
pub fn table_degree_distribution(samples: usize, seed: u64) -> FigureOutput {
    use rand::SeedableRng;
    let dist = memtree_gen::distributions::DegreeDistribution::paper();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut counts = [0usize; 5];
    for _ in 0..samples {
        counts[dist.sample(&mut rng) - 1] += 1;
    }
    let spec = [0.58, 0.17, 0.08, 0.08, 0.08];
    let rows = (0..5)
        .map(|k| {
            format!(
                "{},{:.4},{:.4}",
                k + 1,
                counts[k] as f64 / samples as f64,
                spec[k] / 0.99
            )
        })
        .collect();
    FigureOutput {
        header: "degree,measured_probability,specified_probability".into(),
        rows,
        notes: vec![format!(
            "{samples} samples; spec normalised (paper's table sums to 0.99)"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{memory_factors, synthetic_source, Scale};
    use crate::runner::TreeCase;

    fn tiny_cases() -> CaseSource {
        (0..4)
            .map(|s| {
                TreeCase::new(
                    format!("tiny-{s}"),
                    memtree_gen::synthetic::paper_tree(150, 40 + s),
                )
            })
            .collect()
    }

    #[test]
    fn makespan_figure_has_all_series() {
        let cases = tiny_cases();
        let out = fig_makespan(&cases, 4, &[1.0, 2.0], &SweepCtx::default());
        assert_eq!(out.rows.len(), 6, "2 factors x 3 heuristics");
        assert!(out.rows.iter().any(|r| r.contains("MemBooking")));
        assert!(!out.notes.is_empty());
    }

    #[test]
    fn speedup_figure_is_sane() {
        let cases = tiny_cases();
        let out = fig_speedup(&cases, 4, &[2.0], &SweepCtx::default());
        assert_eq!(out.rows.len(), 1);
        let mean: f64 = out.rows[0].split(',').nth(1).unwrap().parse().unwrap();
        assert!(
            mean >= 0.95,
            "MemBooking should not lose on average: {mean}"
        );
    }

    #[test]
    fn orders_figure_covers_six_pairs() {
        let cases = tiny_cases();
        let out = fig_orders(&cases, 4, &[2.0], &SweepCtx::default());
        assert_eq!(out.rows.len(), 6);
    }

    #[test]
    fn schedtime_figure_uses_case_metadata() {
        let cases = tiny_cases();
        let out = fig_schedtime(&cases, 4, 2.0, &SweepCtx::default());
        assert!(!out.rows.is_empty());
        // Rows carry the tree name and node count from the sweep metadata.
        assert!(out.rows.iter().all(|r| r.starts_with("tiny-")));
        assert!(
            out.rows[0]
                .split(',')
                .nth(1)
                .unwrap()
                .parse::<usize>()
                .unwrap()
                > 0
        );
    }

    #[test]
    fn degree_table_matches_spec() {
        let out = table_degree_distribution(100_000, 1);
        assert_eq!(out.rows.len(), 5);
        for row in &out.rows {
            let mut it = row.split(',');
            let _deg = it.next().unwrap();
            let measured: f64 = it.next().unwrap().parse().unwrap();
            let spec: f64 = it.next().unwrap().parse().unwrap();
            assert!((measured - spec).abs() < 0.02, "{row}");
        }
    }

    #[test]
    fn quick_synthetic_pipeline_smoke() {
        // A minimal end-to-end pass over the real (streaming) corpus
        // machinery: a lazy sub-source of the quick synthetic corpus.
        let full = synthetic_source(Scale::Quick);
        let mut cases = CaseSource::new();
        for i in 0..3 {
            let full = full.clone();
            cases.push_lazy(move || {
                std::sync::Arc::try_unwrap(full.build(i)).unwrap_or_else(|_| unreachable!())
            });
        }
        let factors = memory_factors(Scale::Quick, 3.0);
        let out = fig_makespan(&cases, 8, &factors, &SweepCtx::default());
        assert!(!out.rows.is_empty());
    }
}
