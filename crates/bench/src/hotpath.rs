//! The million-node hot-path sweep behind `bench_hotpath` and the
//! `hotpath-smoke` CI gate (DESIGN.md §6.11).
//!
//! Where [`crate::sweep`] measures *policy quality* over many small
//! trees, this sweep measures *driver throughput* over a few huge ones:
//! 10⁵-node (quick) to 10⁶-node (full) chains, caterpillars and random
//! recursive trees from [`memtree_gen::large`], run through the real
//! platforms so the zero-allocation event loop, the [`RankQueue`] ready
//! set and the position-indexed running set are what is on the clock.
//!
//! Per cell the sweep reports **ns per scheduled node** —
//! `wall_seconds × 10⁹ / tasks_run`, where the platform's `wall_seconds`
//! covers scheduler minting plus the event loop but *not* tree
//! generation or order construction — and its reciprocal, nodes/sec.
//! Policy axis per shape:
//!
//! * every shape runs [`HeuristicKind::Activation`] (O(1) per event) —
//!   the pure driver-throughput number;
//! * the random shape (expected height Θ(log n)) additionally runs
//!   [`HeuristicKind::MemBooking`]; chains and caterpillars have
//!   Θ(n)-height spines, where MemBooking's O(n·H) booking walks are a
//!   different (known) asymptotic story, not a hot-path regression
//!   signal.
//!
//! The threaded platform runs the no-op workload, so its cells price the
//! per-task dispatch round-trip rather than any payload.
//!
//! [`RankQueue`]: memtree_sched::RankQueue

use memtree_gen::large::{build, LargeShape};
use memtree_runtime::{Platform, SimPlatform, ThreadedPlatform};
use memtree_sched::{HeuristicKind, PolicySpec};
use memtree_tree::TaskTree;

/// One measured cell of the hot-path sweep.
#[derive(Clone, Debug)]
pub struct HotCell {
    /// Tree family label (`chain`, `caterpillar`, `random`).
    pub shape: &'static str,
    /// Node count of the generated tree.
    pub n: usize,
    /// Scheduler name as reported by the platform.
    pub policy: String,
    /// Platform name (`sim` or `threaded`).
    pub backend: &'static str,
    /// Processor / worker count.
    pub processors: usize,
    /// Scheduler events processed.
    pub events: usize,
    /// Tasks executed.
    pub tasks_run: usize,
    /// Wall-clock seconds inside the platform run (scheduler minting +
    /// event loop; excludes tree generation and order construction).
    pub wall_seconds: f64,
    /// Wall-clock seconds inside scheduler callbacks alone.
    pub scheduling_seconds: f64,
    /// Seconds spent generating the tree (reported, never gated).
    pub gen_seconds: f64,
}

impl HotCell {
    /// Nanoseconds of platform wall time per scheduled node.
    pub fn ns_per_node(&self) -> f64 {
        if self.tasks_run == 0 {
            return 0.0;
        }
        self.wall_seconds * 1e9 / self.tasks_run as f64
    }

    /// Scheduled nodes per second of platform wall time.
    pub fn nodes_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.tasks_run as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// CSV header matching [`HotCell::csv_row`].
    pub fn csv_header() -> &'static str {
        "shape,n,policy,backend,processors,events,tasks_run,\
         wall_seconds,scheduling_seconds,gen_seconds,ns_per_node,nodes_per_sec"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.1},{:.0}",
            self.shape,
            self.n,
            self.policy,
            self.backend,
            self.processors,
            self.events,
            self.tasks_run,
            self.wall_seconds,
            self.scheduling_seconds,
            self.gen_seconds,
            self.ns_per_node(),
            self.nodes_per_sec(),
        )
    }
}

/// The sweep's scale knobs.
#[derive(Clone, Copy, Debug)]
pub struct HotSweep {
    /// Node count for simulator cells.
    pub sim_nodes: usize,
    /// Node count for threaded cells (each task is a real dispatch
    /// round-trip, so the threaded axis runs smaller trees).
    pub threaded_nodes: usize,
    /// Processor / worker count for every cell.
    pub processors: usize,
}

impl HotSweep {
    /// The CI gate scale: 10⁵-node simulator cells, seconds of wall time.
    pub fn quick() -> Self {
        HotSweep {
            sim_nodes: 100_000,
            threaded_nodes: 20_000,
            processors: 4,
        }
    }

    /// The trajectory scale: 10⁶-node simulator cells.
    pub fn full() -> Self {
        HotSweep {
            sim_nodes: 1_000_000,
            threaded_nodes: 100_000,
            processors: 4,
        }
    }

    /// The shapes every backend sweeps.
    pub fn shapes() -> [LargeShape; 3] {
        [
            LargeShape::Chain,
            LargeShape::Caterpillar { legs: 4 },
            LargeShape::Random,
        ]
    }

    /// Runs the sweep: every shape × {sim, threaded} under Activation,
    /// plus the random shape under MemBooking on the simulator.
    pub fn run(&self) -> Vec<HotCell> {
        let mut cells = Vec::new();
        for shape in Self::shapes() {
            let gen_start = std::time::Instant::now();
            let tree = build(shape, self.sim_nodes, 42);
            let gen_seconds = gen_start.elapsed().as_secs_f64();
            cells.push(self.sim_cell(&tree, shape, HeuristicKind::Activation, gen_seconds));
            if matches!(shape, LargeShape::Random) {
                cells.push(self.sim_cell(&tree, shape, HeuristicKind::MemBooking, gen_seconds));
            }
        }
        for shape in Self::shapes() {
            let gen_start = std::time::Instant::now();
            let tree = build(shape, self.threaded_nodes, 42);
            let gen_seconds = gen_start.elapsed().as_secs_f64();
            cells.push(self.threaded_cell(&tree, shape, gen_seconds));
        }
        cells
    }

    fn spec_for(&self, tree: &TaskTree, kind: HeuristicKind) -> PolicySpec {
        // Twice the policy's own feasibility bound: tight enough that the
        // booking ledger cycles (the interesting regime), roomy enough
        // that every shape completes without starvation stalls.
        let spec = PolicySpec::new(kind, 0);
        let memory = spec.min_feasible(tree).saturating_mul(2);
        spec.with_memory(memory)
    }

    fn sim_cell(
        &self,
        tree: &TaskTree,
        shape: LargeShape,
        kind: HeuristicKind,
        gen_seconds: f64,
    ) -> HotCell {
        let spec = self.spec_for(tree, kind);
        let report = SimPlatform::new(self.processors)
            .run(tree, &spec)
            .expect("hot-path sim cell completes");
        HotCell {
            shape: shape.label(),
            n: tree.len(),
            policy: report.policy,
            backend: "sim",
            processors: self.processors,
            events: report.events,
            tasks_run: report.tasks_run,
            wall_seconds: report.wall_seconds,
            scheduling_seconds: report.scheduling_seconds,
            gen_seconds,
        }
    }

    fn threaded_cell(&self, tree: &TaskTree, shape: LargeShape, gen_seconds: f64) -> HotCell {
        let spec = self.spec_for(tree, HeuristicKind::Activation);
        let report = ThreadedPlatform::new(self.processors)
            .run(tree, &spec)
            .expect("hot-path threaded cell completes");
        HotCell {
            shape: shape.label(),
            n: tree.len(),
            policy: report.policy,
            backend: "threaded",
            processors: self.processors,
            events: report.events,
            tasks_run: report.tasks_run,
            wall_seconds: report.wall_seconds,
            scheduling_seconds: report.scheduling_seconds,
            gen_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downscaled_sweep_produces_sane_cells() {
        let sweep = HotSweep {
            sim_nodes: 2_000,
            threaded_nodes: 300,
            processors: 2,
        };
        let cells = sweep.run();
        // 3 sim Activation + 1 sim MemBooking + 3 threaded.
        assert_eq!(cells.len(), 7);
        for c in &cells {
            assert_eq!(
                c.tasks_run, c.n,
                "{}: sequential policies run n tasks",
                c.shape
            );
            assert!(c.events > 0 && c.wall_seconds > 0.0);
            assert!(c.ns_per_node() > 0.0 && c.nodes_per_sec() > 0.0);
            assert!(c.csv_row().split(',').count() == HotCell::csv_header().split(',').count());
        }
        assert_eq!(cells.iter().filter(|c| c.backend == "threaded").count(), 3);
        assert_eq!(
            cells
                .iter()
                .filter(|c| c.backend == "sim" && c.policy.contains("ook"))
                .count(),
            1,
            "MemBooking runs once, on the random shape"
        );
    }
}
