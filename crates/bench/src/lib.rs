#![warn(missing_docs)]
//! Experiment harness regenerating every table and figure of the paper.
//!
//! One binary per figure (`src/bin/figNN_*.rs`) prints the figure's series
//! as CSV on stdout plus a short *shape summary* — who wins, by what
//! factor, where the curves cross — the quantities EXPERIMENTS.md compares
//! against the paper. Table binaries do the same for the textual
//! statistics (lower-bound improvements, RedTree failure rates, the degree
//! table).
//!
//! Scale is controlled by the first CLI argument or the `MEMTREE_SCALE`
//! environment variable: `quick` (default; minutes) or `full` (the
//! paper-sized corpora; longer).

pub mod aggregate;
pub mod corpus;
pub mod figures;
pub mod runner;
pub mod sweep;

pub use aggregate::Summary;
pub use corpus::{assembly_cases, synthetic_cases, Scale};
pub use runner::{run_heuristic, run_on_platform, OrderPair, RunOutcome, TreeCase};
pub use sweep::{Sweep, SweepCell, SweepReport};

/// Parses the scale from CLI args / environment.
pub fn scale_from_env() -> Scale {
    let arg = std::env::args().nth(1);
    let var = std::env::var("MEMTREE_SCALE").ok();
    match arg.or(var).as_deref() {
        Some("full") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// Prints a CSV header and rows through a tiny helper so every binary
/// formats identically.
pub fn print_csv(header: &str, rows: &[String]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(lock, "{header}").unwrap();
    for r in rows {
        writeln!(lock, "{r}").unwrap();
    }
}
