#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Experiment harness regenerating every table and figure of the paper.
//!
//! One binary per figure (`src/bin/figNN_*.rs`) prints the figure's series
//! as CSV on stdout plus a short *shape summary* — who wins, by what
//! factor, where the curves cross — the quantities EXPERIMENTS.md compares
//! against the paper. Table binaries do the same for the textual
//! statistics (lower-bound improvements, RedTree failure rates, the degree
//! table).
//!
//! Scale is controlled by the first CLI argument or the `MEMTREE_SCALE`
//! environment variable: `quick` (default; minutes) or `full` (the
//! paper-sized corpora; longer). Every binary also takes `--cache-dir`
//! (persist/replay sweep cells content-addressed; see [`cache`]),
//! `--fresh` (recompute) and `--window` (streaming width) — the shared
//! surface parsed by [`cli::BenchArgs`].

pub mod aggregate;
pub mod cache;
pub mod cli;
pub mod corpus;
pub mod figures;
pub mod hotpath;
pub mod runner;
pub mod service_load;
pub mod sweep;

pub use aggregate::Summary;
pub use cache::{cell_key, CellCache, CellKey};
pub use cli::{ArgParser, BenchArgs};
pub use corpus::{assembly_cases, assembly_source, synthetic_cases, synthetic_source, Scale};
pub use hotpath::{HotCell, HotSweep};
pub use runner::{
    run_heuristic, run_heuristic_backend, run_on_platform, Backend, CaseSource, OrderPair,
    RunOutcome, TreeCase,
};
pub use service_load::{run_load, LoadReport, LoadSpec};
pub use sweep::{untimed_row, CaseMeta, Sweep, SweepCell, SweepCtx, SweepReport};

/// Prints a CSV header and rows through a tiny helper so every binary
/// formats identically.
pub fn print_csv(header: &str, rows: &[String]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(lock, "{header}").unwrap();
    for r in rows {
        writeln!(lock, "{r}").unwrap();
    }
}
