//! Per-tree experiment execution.

use memtree_order::{make_order, Order, OrderKind};
use memtree_sched::{
    build_scheduler, to_reduction_tree, HeuristicKind, LowerBounds, RedTreeBooking,
};
use memtree_sim::{simulate, SimConfig};
use memtree_tree::{TaskTree, TreeStats};
use std::collections::HashMap;

/// A corpus tree with its precomputed analysis.
pub struct TreeCase {
    /// Human-readable name (CSV key).
    pub name: String,
    /// The tree itself.
    pub tree: TaskTree,
    /// Structural statistics.
    pub stats: TreeStats,
    /// Minimum memory: the peak of the peak-minimising postorder — the
    /// unit of the "normalized memory bound" axis.
    pub min_memory: u64,
    orders: std::cell::RefCell<HashMap<OrderKind, std::rc::Rc<Order>>>,
    redtree: std::cell::OnceCell<RedCase>,
}

struct RedCase {
    tree: TaskTree,
    ao: Order,
    min_memory: u64,
}

/// A pair of order kinds: activation and execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OrderPair {
    /// Activation order (must be topological).
    pub ao: OrderKind,
    /// Execution priority.
    pub eo: OrderKind,
}

impl OrderPair {
    /// The paper's default: memPO for both.
    pub fn default_pair() -> Self {
        OrderPair { ao: OrderKind::MemPostorder, eo: OrderKind::MemPostorder }
    }

    /// The six combinations of Figures 8 and 14.
    pub fn paper_combinations() -> Vec<OrderPair> {
        use OrderKind::*;
        vec![
            OrderPair { ao: MemPostorder, eo: MemPostorder },
            OrderPair { ao: MemPostorder, eo: CriticalPath },
            OrderPair { ao: OptSeq, eo: CriticalPath },
            OrderPair { ao: OptSeq, eo: OptSeq },
            OrderPair { ao: PerfPostorder, eo: CriticalPath },
            OrderPair { ao: PerfPostorder, eo: PerfPostorder },
        ]
    }

    /// Plot label, e.g. `memPO/CP`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.ao.label(), self.eo.label())
    }
}

/// Outcome of one (tree × policy × p × memory factor) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// False when the policy could not schedule under this bound
    /// (infeasible memory) — counted for the ≥95 % plotting rule.
    pub scheduled: bool,
    /// Absolute makespan (0 when not scheduled).
    pub makespan: f64,
    /// Makespan divided by the best lower bound (Section 6).
    pub normalized: f64,
    /// Peak actual memory / bound (Figures 4 and 12).
    pub memory_fraction: f64,
    /// Wall-clock seconds spent in scheduler callbacks (Figures 5/6/13).
    pub scheduling_seconds: f64,
}

impl RunOutcome {
    fn unscheduled() -> Self {
        RunOutcome {
            scheduled: false,
            makespan: 0.0,
            normalized: 0.0,
            memory_fraction: 0.0,
            scheduling_seconds: 0.0,
        }
    }
}

impl TreeCase {
    /// Analyses `tree` (stats + memPO peak).
    pub fn new(name: impl Into<String>, tree: TaskTree) -> Self {
        let stats = TreeStats::compute(&tree);
        let mem_po = memtree_order::mem_postorder(&tree);
        let min_memory = mem_po.sequential_peak(&tree).max(1);
        let case = TreeCase {
            name: name.into(),
            tree,
            stats,
            min_memory,
            orders: std::cell::RefCell::new(HashMap::new()),
            redtree: std::cell::OnceCell::new(),
        };
        case.orders
            .borrow_mut()
            .insert(OrderKind::MemPostorder, std::rc::Rc::new(mem_po));
        case
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when the tree is empty (never, for built cases).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The order of `kind`, computed once and cached.
    pub fn order(&self, kind: OrderKind) -> std::rc::Rc<Order> {
        if let Some(o) = self.orders.borrow().get(&kind) {
            return o.clone();
        }
        let o = std::rc::Rc::new(make_order(&self.tree, kind));
        self.orders.borrow_mut().insert(kind, o.clone());
        o
    }

    /// The memory bound for a normalized factor.
    pub fn memory_at(&self, factor: f64) -> u64 {
        ((self.min_memory as f64) * factor).ceil() as u64
    }

    /// Lower bounds at `(p, factor)`.
    pub fn lower_bounds(&self, processors: usize, factor: f64) -> LowerBounds {
        LowerBounds::compute_with_stats(
            &self.tree,
            &self.stats,
            processors,
            self.memory_at(factor),
        )
    }

    fn red_case(&self) -> &RedCase {
        self.redtree.get_or_init(|| {
            let tr = to_reduction_tree(&self.tree);
            let ao = memtree_order::mem_postorder(&tr.tree);
            let min_memory = RedTreeBooking::min_memory(&tr.tree, &ao);
            RedCase { tree: tr.tree, ao, min_memory }
        })
    }

    /// Minimum memory the RedTree baseline needs on this tree (after the
    /// transform) — used by the failure-rate table.
    pub fn redtree_min_memory(&self) -> u64 {
        self.red_case().min_memory
    }
}

/// Runs `kind` on `case` and reports the outcome.
///
/// Infeasible memory (construction refusal) yields
/// `RunOutcome::scheduled == false`, matching the paper's "unable to
/// schedule within the bound" accounting.
pub fn run_heuristic(
    case: &TreeCase,
    kind: HeuristicKind,
    orders: OrderPair,
    processors: usize,
    factor: f64,
) -> RunOutcome {
    let memory = case.memory_at(factor);
    let ao = case.order(orders.ao);
    let eo = case.order(orders.eo);
    let Ok(scheduler) = build_scheduler(kind, &case.tree, &ao, &eo, memory) else {
        return RunOutcome::unscheduled();
    };
    let trace = simulate(&case.tree, SimConfig::new(processors, memory), scheduler)
        .unwrap_or_else(|e| panic!("{}: {kind} must not fail mid-run: {e}", case.name));
    debug_assert!(memtree_sim::validate::validate_trace(&case.tree, &trace).is_ok());
    let lb = case.lower_bounds(processors, factor);
    RunOutcome {
        scheduled: true,
        makespan: trace.makespan,
        normalized: trace.makespan / lb.best(),
        memory_fraction: trace.memory_fraction_used(),
        scheduling_seconds: trace.scheduling_seconds,
    }
}

/// Runs the MemBookingRedTree baseline: schedules the *transformed* tree
/// under the same absolute memory bound, normalising against the original
/// tree's lower bounds (fictitious tasks take zero time, so makespans are
/// comparable).
pub fn run_redtree(case: &TreeCase, processors: usize, factor: f64) -> RunOutcome {
    let memory = case.memory_at(factor);
    let red = case.red_case();
    let Ok(scheduler) = RedTreeBooking::try_new(&red.tree, &red.ao, &red.ao, memory) else {
        return RunOutcome::unscheduled();
    };
    let trace = simulate(&red.tree, SimConfig::new(processors, memory), scheduler)
        .unwrap_or_else(|e| panic!("{}: RedTree must not fail mid-run: {e}", case.name));
    let lb = case.lower_bounds(processors, factor);
    RunOutcome {
        scheduled: true,
        makespan: trace.makespan,
        normalized: trace.makespan / lb.best(),
        memory_fraction: trace.memory_fraction_used(),
        scheduling_seconds: trace.scheduling_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> TreeCase {
        TreeCase::new("t", memtree_gen::synthetic::paper_tree(300, 5))
    }

    #[test]
    fn membooking_dominates_activation_under_pressure() {
        let c = case();
        let p = 8;
        let mb = run_heuristic(&c, HeuristicKind::MemBooking, OrderPair::default_pair(), p, 1.5);
        let ac = run_heuristic(&c, HeuristicKind::Activation, OrderPair::default_pair(), p, 1.5);
        assert!(mb.scheduled && ac.scheduled);
        assert!(
            mb.makespan <= ac.makespan * 1.02,
            "MemBooking {} should not lose to Activation {}",
            mb.makespan,
            ac.makespan
        );
    }

    #[test]
    fn factor_one_always_schedulable_for_membooking() {
        let c = case();
        let out = run_heuristic(
            &c,
            HeuristicKind::MemBooking,
            OrderPair::default_pair(),
            4,
            1.0,
        );
        assert!(out.scheduled);
        assert!(out.normalized >= 1.0 - 1e-9, "makespan below a lower bound");
    }

    #[test]
    fn redtree_runs_or_reports_infeasible() {
        let c = case();
        let tight = run_redtree(&c, 4, 1.0);
        let roomy = run_redtree(&c, 4, 20.0);
        // Under a huge bound it must schedule; under factor 1 it usually
        // cannot (transform inflation).
        assert!(roomy.scheduled);
        if tight.scheduled {
            assert!(tight.makespan >= roomy.makespan);
        }
    }

    #[test]
    fn order_cache_returns_same_instance() {
        let c = case();
        let a = c.order(OrderKind::CriticalPath);
        let b = c.order(OrderKind::CriticalPath);
        assert!(std::rc::Rc::ptr_eq(&a, &b));
    }
}
