//! Per-tree experiment execution.
//!
//! A [`TreeCase`] is a corpus tree with its precomputed analysis plus
//! thread-safe caches of orders and of the reduction-tree transform, so a
//! parallel sweep ([`crate::sweep::Sweep`]) can fan cells out across cores
//! while sharing the expensive per-tree preprocessing.

use memtree_order::{make_order, Order, OrderKind};
use memtree_runtime::{AsyncPlatform, Platform, PlatformError, SimPlatform, ThreadedPlatform};
use memtree_sched::to_reduction_tree;
use memtree_sched::{HeuristicKind, LowerBounds, PolicyInstance, RedTreeBooking};
use memtree_tree::{TaskTree, TreeStats};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A thread-safe, compute-once cache of orders for one tree.
#[derive(Default)]
struct OrderCache {
    orders: Mutex<HashMap<OrderKind, Arc<Order>>>,
}

impl OrderCache {
    fn get(&self, tree: &TaskTree, kind: OrderKind) -> Arc<Order> {
        if let Some(o) = self.orders.lock().expect("order cache poisoned").get(&kind) {
            return o.clone();
        }
        // Computed outside the lock: order construction is the expensive
        // part and must not serialise the sweep. A racing thread may
        // compute the same order; first insert wins.
        let fresh = Arc::new(make_order(tree, kind));
        self.orders
            .lock()
            .expect("order cache poisoned")
            .entry(kind)
            .or_insert(fresh)
            .clone()
    }
}

/// A corpus tree with its precomputed analysis.
pub struct TreeCase {
    /// Human-readable name (CSV key).
    pub name: String,
    /// The tree itself.
    pub tree: TaskTree,
    /// Structural statistics.
    pub stats: TreeStats,
    /// Minimum memory: the peak of the peak-minimising postorder — the
    /// unit of the "normalized memory bound" axis.
    pub min_memory: u64,
    orders: OrderCache,
    redtree: OnceLock<RedCase>,
    content_hash: OnceLock<u64>,
}

struct RedCase {
    tree: Arc<TaskTree>,
    orders: OrderCache,
    min_memory: u64,
}

/// A pair of order kinds: activation and execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OrderPair {
    /// Activation order (must be topological).
    pub ao: OrderKind,
    /// Execution priority.
    pub eo: OrderKind,
}

impl OrderPair {
    /// The paper's default: memPO for both.
    pub fn default_pair() -> Self {
        OrderPair {
            ao: OrderKind::MemPostorder,
            eo: OrderKind::MemPostorder,
        }
    }

    /// The six combinations of Figures 8 and 14.
    pub fn paper_combinations() -> Vec<OrderPair> {
        use OrderKind::*;
        vec![
            OrderPair {
                ao: MemPostorder,
                eo: MemPostorder,
            },
            OrderPair {
                ao: MemPostorder,
                eo: CriticalPath,
            },
            OrderPair {
                ao: OptSeq,
                eo: CriticalPath,
            },
            OrderPair {
                ao: OptSeq,
                eo: OptSeq,
            },
            OrderPair {
                ao: PerfPostorder,
                eo: CriticalPath,
            },
            OrderPair {
                ao: PerfPostorder,
                eo: PerfPostorder,
            },
        ]
    }

    /// Plot label, e.g. `memPO/CP`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.ao.label(), self.eo.label())
    }
}

/// An execution backend a sweep cell can run on — the sweep's backend
/// axis (`--backend sim|threaded|sharded|async` on the shared CLI).
///
/// `Sim` reports virtual-time makespans with paper-normalised lower
/// bounds; the execution backends (`Threaded`, `Async`, `Sharded`) report
/// the run's wall-clock seconds and a `normalized` of 0 — different
/// clocks are different measurements, and the cell cache keys them apart
/// ([`crate::cache::cell_key`] hashes the backend label).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The discrete-event simulator (virtual time) — the default.
    Sim,
    /// Real worker threads (`ThreadedPlatform`, wall-clock).
    Threaded,
    /// The futures-backed executor (`AsyncPlatform`, wall-clock) — the
    /// IO-bound regime.
    Async,
    /// The sharded forest platform with up to this many shard workers
    /// (≥ 1, wall-clock).
    Sharded(usize),
    /// The shard protocol over real worker *processes*
    /// (`ProcessPlatform`, wall-clock): up to this many worker processes
    /// (≥ 1), each fed its shard over a pipe.
    Process(usize),
}

impl Backend {
    /// CSV/cache label: `sim`, `threaded`, `async`, `sharded:N`,
    /// `process:N`.
    pub fn label(&self) -> String {
        match self {
            Backend::Sim => "sim".into(),
            Backend::Threaded => "threaded".into(),
            Backend::Async => "async".into(),
            Backend::Sharded(n) => format!("sharded:{n}"),
            Backend::Process(n) => format!("process:{n}"),
        }
    }

    /// The PR-4 shard-count encoding: `0` is the unsharded simulator,
    /// `n ≥ 1` the sharded platform — what a bare `--shards` axis maps
    /// through.
    pub fn from_shards(shards: usize) -> Backend {
        match shards {
            0 => Backend::Sim,
            n => Backend::Sharded(n),
        }
    }

    /// The canonical backend-scaling axis (`fig16_shards`,
    /// `all_experiments`): the simulator baseline, both single-machine
    /// execution backends, and the sharded platform at increasing shard
    /// counts.
    pub fn default_axis() -> Vec<Backend> {
        vec![
            Backend::Sim,
            Backend::Threaded,
            Backend::Async,
            Backend::Sharded(1),
            Backend::Sharded(2),
            Backend::Sharded(4),
            Backend::Sharded(8),
        ]
    }

    /// Parses one backend name: `sim`, `threaded`, `async`, `sharded:N`,
    /// or `process:N` (N ≥ 1). A bare `sharded`/`process` is rejected
    /// here — the CLI expands those against its `--shards` counts before
    /// parsing.
    ///
    /// # Errors
    /// On an unknown name or a malformed/zero shard count.
    pub fn parse(s: &str) -> Result<Backend, String> {
        fn counted(s: &str, prefix: &str) -> Option<usize> {
            s.strip_prefix(prefix)
                .and_then(|n| n.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
        }
        match s {
            "sim" => Ok(Backend::Sim),
            "threaded" => Ok(Backend::Threaded),
            "async" => Ok(Backend::Async),
            _ => {
                if let Some(n) = counted(s, "sharded:") {
                    Ok(Backend::Sharded(n))
                } else if let Some(n) = counted(s, "process:") {
                    Ok(Backend::Process(n))
                } else {
                    Err(format!(
                        "unknown backend {s:?} (sim|threaded|async|sharded:N|process:N)"
                    ))
                }
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Outcome of one (tree × policy × p × memory factor) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// False when the policy could not schedule under this bound
    /// (infeasible memory) — counted for the ≥95 % plotting rule.
    pub scheduled: bool,
    /// Absolute makespan (0 when not scheduled).
    pub makespan: f64,
    /// Makespan divided by the best lower bound (Section 6).
    pub normalized: f64,
    /// Peak actual memory / bound (Figures 4 and 12).
    pub memory_fraction: f64,
    /// Wall-clock seconds spent in scheduler callbacks (Figures 5/6/13).
    pub scheduling_seconds: f64,
}

impl RunOutcome {
    fn unscheduled() -> Self {
        RunOutcome {
            scheduled: false,
            makespan: 0.0,
            normalized: 0.0,
            memory_fraction: 0.0,
            scheduling_seconds: 0.0,
        }
    }
}

impl TreeCase {
    /// Analyses `tree` (stats + memPO peak).
    pub fn new(name: impl Into<String>, tree: TaskTree) -> Self {
        let stats = TreeStats::compute(&tree);
        let mem_po = memtree_order::mem_postorder(&tree);
        let min_memory = mem_po.sequential_peak(&tree).max(1);
        let case = TreeCase {
            name: name.into(),
            tree,
            stats,
            min_memory,
            orders: OrderCache::default(),
            redtree: OnceLock::new(),
            content_hash: OnceLock::new(),
        };
        case.orders
            .orders
            .lock()
            .expect("order cache poisoned")
            .insert(OrderKind::MemPostorder, Arc::new(mem_po));
        case
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when the tree is empty (never, for built cases).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The order of `kind`, computed once and cached (thread-safe).
    pub fn order(&self, kind: OrderKind) -> Arc<Order> {
        self.orders.get(&self.tree, kind)
    }

    /// The tree's canonical content hash
    /// ([`memtree_tree::hash::content_hash`]), computed once and cached —
    /// the tree component of a sweep cell's cache key.
    pub fn content_hash(&self) -> u64 {
        *self.content_hash.get_or_init(|| self.tree.content_hash())
    }

    /// The memory bound for a normalized factor.
    pub fn memory_at(&self, factor: f64) -> u64 {
        ((self.min_memory as f64) * factor).ceil() as u64
    }

    /// Lower bounds at `(p, factor)`.
    pub fn lower_bounds(&self, processors: usize, factor: f64) -> LowerBounds {
        LowerBounds::compute_with_stats(&self.tree, &self.stats, processors, self.memory_at(factor))
    }

    fn red_case(&self) -> &RedCase {
        self.redtree.get_or_init(|| {
            let tr = to_reduction_tree(&self.tree);
            let tree = Arc::new(tr.tree);
            let orders = OrderCache::default();
            let ao = orders.get(&tree, OrderKind::MemPostorder);
            let min_memory = RedTreeBooking::min_memory(&tree, &ao);
            RedCase {
                tree,
                orders,
                min_memory,
            }
        })
    }

    /// Minimum memory the RedTree baseline needs on this tree (after the
    /// transform) — used by the failure-rate table.
    pub fn redtree_min_memory(&self) -> u64 {
        self.red_case().min_memory
    }

    /// A [`PolicyInstance`] for `kind` over this tree, built from the
    /// case's caches (shared orders, shared transformed tree) — the
    /// fast path that lets sweeps run thousands of cells without
    /// recomputing per-tree preprocessing.
    pub fn instance(&self, kind: HeuristicKind, orders: OrderPair, memory: u64) -> PolicyInstance {
        let (transformed, ao, eo) = match kind {
            HeuristicKind::MemBookingRedTree => {
                let red = self.red_case();
                (
                    Some(red.tree.clone()),
                    red.orders.get(&red.tree, orders.ao),
                    red.orders.get(&red.tree, orders.eo),
                )
            }
            _ => (None, self.order(orders.ao), self.order(orders.eo)),
        };
        PolicyInstance::from_parts(kind, memory, transformed, ao, eo, None)
            .expect("cache-built parts are consistent")
    }
}

/// Runs `kind` on `case` at `(orders, p, factor)` on the simulator and
/// reports the outcome.
///
/// Every [`HeuristicKind`] is runnable here — `MemBookingRedTree`
/// schedules its transformed tree behind the same call. Infeasible memory
/// (construction refusal) yields `RunOutcome::scheduled == false`,
/// matching the paper's "unable to schedule within the bound" accounting;
/// RedTree's normalized makespan is measured against the *original* tree's
/// lower bounds (fictitious tasks take zero time, so makespans are
/// comparable).
pub fn run_heuristic(
    case: &TreeCase,
    kind: HeuristicKind,
    orders: OrderPair,
    processors: usize,
    factor: f64,
) -> RunOutcome {
    let memory = case.memory_at(factor);
    let instance = case.instance(kind, orders, memory);
    let report = match SimPlatform::new(processors).run_instance(&case.tree, &instance) {
        Ok(report) => report,
        Err(e) if e.is_infeasible() => return RunOutcome::unscheduled(),
        Err(e) => panic!("{}: {kind} must not fail mid-run: {e}", case.name),
    };
    let lb = case.lower_bounds(processors, factor);
    RunOutcome {
        scheduled: true,
        makespan: report.makespan,
        normalized: report.makespan / lb.best(),
        memory_fraction: if memory == 0 {
            0.0
        } else {
            report.peak_actual as f64 / memory as f64
        },
        scheduling_seconds: report.scheduling_seconds,
    }
}

/// Runs `kind` on `case` through the execution `backend` — the cell
/// dispatch behind the sweep's backend axis.
///
/// `Backend::Sim` is [`run_heuristic`] (virtual-time makespan, normalised
/// against the lower bounds). The execution backends report the run's
/// wall-clock seconds with `normalized` 0 (virtual-time lower bounds do
/// not apply):
///
/// * `Threaded` runs `processors` real worker threads;
/// * `Async` runs `processors` logical workers as futures on the
///   platform's default executor-thread count;
/// * `Sharded(s)` runs up to `min(s, processors)` shard workers of
///   `⌊processors / shard count⌋` threads each — never more threads than
///   the cell's processor budget (non-dividing counts idle the remainder
///   rather than oversubscribe);
/// * `Process(s)` splits exactly like `Sharded(s)` but each shard runs in
///   a real worker process behind the wire protocol — the cost of the
///   serialise/spawn/pipe round trip is part of the measurement. The
///   worker binary is resolved beside the current executable (both land
///   in `target/<profile>/`) or via `MEMTREE_WORKER_BIN`.
///
/// Infeasible memory — a construction refusal or a sharded budget split
/// that cannot fit — counts as unscheduled on every backend.
pub fn run_heuristic_backend(
    case: &TreeCase,
    kind: HeuristicKind,
    orders: OrderPair,
    processors: usize,
    factor: f64,
    backend: Backend,
) -> RunOutcome {
    let memory = case.memory_at(factor);
    let report = match backend {
        Backend::Sim => return run_heuristic(case, kind, orders, processors, factor),
        Backend::Threaded => run_on_platform(
            case,
            &ThreadedPlatform::new(processors.max(1)),
            kind,
            orders,
            factor,
        ),
        Backend::Async => run_on_platform(
            case,
            &AsyncPlatform::new(processors.max(1)),
            kind,
            orders,
            factor,
        ),
        Backend::Sharded(s) => {
            let spec =
                memtree_sched::PolicySpec::new(kind, memory).with_orders(orders.ao, orders.eo);
            let shard_count = s.min(processors).max(1);
            memtree_runtime::ShardedPlatform::new(shard_count)
                .with_workers_per_shard(processors / shard_count)
                .run(&case.tree, &spec)
        }
        Backend::Process(s) => {
            let spec =
                memtree_sched::PolicySpec::new(kind, memory).with_orders(orders.ao, orders.eo);
            let shard_count = s.min(processors).max(1);
            memtree_runtime::ProcessPlatform::new(shard_count)
                .with_workers_per_shard((processors / shard_count).max(1))
                .run(&case.tree, &spec)
        }
    };
    let report = match report {
        Ok(report) => report,
        Err(e) if e.is_infeasible() => return RunOutcome::unscheduled(),
        Err(e) => panic!(
            "{}: {kind} on {backend} must not fail mid-run: {e}",
            case.name
        ),
    };
    RunOutcome {
        scheduled: true,
        makespan: report.wall_seconds,
        normalized: 0.0,
        memory_fraction: if memory == 0 {
            0.0
        } else {
            report.peak_actual as f64 / memory as f64
        },
        scheduling_seconds: report.scheduling_seconds,
    }
}

/// The PR-4 shard-count entry point: `shards == 0` is the unsharded
/// simulator, `s ≥ 1` the sharded platform — a thin
/// [`Backend::from_shards`] wrapper over [`run_heuristic_backend`].
pub fn run_heuristic_sharded(
    case: &TreeCase,
    kind: HeuristicKind,
    orders: OrderPair,
    processors: usize,
    factor: f64,
    shards: usize,
) -> RunOutcome {
    run_heuristic_backend(
        case,
        kind,
        orders,
        processors,
        factor,
        Backend::from_shards(shards),
    )
}

/// A corpus as a *source* of [`TreeCase`]s rather than a materialised
/// slice: each case is either ready (already built) or a builder closure
/// that realises it on demand.
///
/// This is what lets [`crate::Sweep`] stream: a lazy source holds only
/// cheap descriptors (a seed, a grid side), the sweep builds the cases of
/// its current in-flight window, and drops each case as soon as its last
/// cell completes — peak RSS is proportional to the window, not the
/// corpus. Builders must be deterministic (same index, same case): the
/// sweep may rebuild a case after an interruption and relies on its
/// content hash matching the cached cells.
///
/// Cloning is cheap (`Arc`-shared entries) and never re-runs builders.
#[derive(Clone, Default)]
pub struct CaseSource {
    entries: Vec<CaseEntry>,
}

#[derive(Clone)]
enum CaseEntry {
    Ready(Arc<TreeCase>),
    Lazy(Arc<dyn Fn() -> TreeCase + Send + Sync>),
}

impl CaseSource {
    /// An empty source; push cases or builders into it.
    pub fn new() -> Self {
        CaseSource::default()
    }

    /// A source over already-built cases (no streaming benefit, full API
    /// compatibility — what tests and small experiments use).
    pub fn from_cases(cases: Vec<TreeCase>) -> Self {
        CaseSource {
            entries: cases
                .into_iter()
                .map(|c| CaseEntry::Ready(Arc::new(c)))
                .collect(),
        }
    }

    /// Appends a ready case.
    pub fn push_case(&mut self, case: TreeCase) {
        self.entries.push(CaseEntry::Ready(Arc::new(case)));
    }

    /// Appends a lazy builder realised on demand by [`CaseSource::build`].
    pub fn push_lazy(&mut self, build: impl Fn() -> TreeCase + Send + Sync + 'static) {
        self.entries.push(CaseEntry::Lazy(Arc::new(build)));
    }

    /// Number of cases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Realises case `index`: clones the `Arc` for ready cases, runs the
    /// builder for lazy ones. Lazy builds are *not* memoised — dropping
    /// the returned `Arc` frees the tree, which is the point.
    pub fn build(&self, index: usize) -> Arc<TreeCase> {
        match &self.entries[index] {
            CaseEntry::Ready(c) => c.clone(),
            CaseEntry::Lazy(f) => Arc::new(f()),
        }
    }

    /// Streams the cases one at a time in corpus order — for sequential
    /// consumers (corpus tables, per-tree statistics) that want bounded
    /// memory without the sweep machinery.
    pub fn iter(&self) -> impl Iterator<Item = Arc<TreeCase>> + '_ {
        (0..self.len()).map(|i| self.build(i))
    }
}

impl From<Vec<TreeCase>> for CaseSource {
    fn from(cases: Vec<TreeCase>) -> Self {
        CaseSource::from_cases(cases)
    }
}

impl FromIterator<TreeCase> for CaseSource {
    fn from_iter<I: IntoIterator<Item = TreeCase>>(iter: I) -> Self {
        CaseSource::from_cases(iter.into_iter().collect())
    }
}

impl std::fmt::Debug for CaseSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = self
            .entries
            .iter()
            .filter(|e| matches!(e, CaseEntry::Ready(_)))
            .count();
        f.debug_struct("CaseSource")
            .field("cases", &self.len())
            .field("ready", &ready)
            .field("lazy", &(self.len() - ready))
            .finish()
    }
}

/// Convenience wrapper: runs `kind` on any [`Platform`] (not just the
/// simulator), using the case's caches.
pub fn run_on_platform(
    case: &TreeCase,
    platform: &dyn Platform,
    kind: HeuristicKind,
    orders: OrderPair,
    factor: f64,
) -> Result<memtree_runtime::RunReport, PlatformError> {
    let instance = case.instance(kind, orders, case.memory_at(factor));
    platform.run_instance(&case.tree, &instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> TreeCase {
        TreeCase::new("t", memtree_gen::synthetic::paper_tree(300, 5))
    }

    #[test]
    fn membooking_dominates_activation_under_pressure() {
        let c = case();
        let p = 8;
        let mb = run_heuristic(
            &c,
            HeuristicKind::MemBooking,
            OrderPair::default_pair(),
            p,
            1.5,
        );
        let ac = run_heuristic(
            &c,
            HeuristicKind::Activation,
            OrderPair::default_pair(),
            p,
            1.5,
        );
        assert!(mb.scheduled && ac.scheduled);
        assert!(
            mb.makespan <= ac.makespan * 1.02,
            "MemBooking {} should not lose to Activation {}",
            mb.makespan,
            ac.makespan
        );
    }

    #[test]
    fn factor_one_always_schedulable_for_membooking() {
        let c = case();
        let out = run_heuristic(
            &c,
            HeuristicKind::MemBooking,
            OrderPair::default_pair(),
            4,
            1.0,
        );
        assert!(out.scheduled);
        assert!(out.normalized >= 1.0 - 1e-9, "makespan below a lower bound");
    }

    #[test]
    fn redtree_runs_or_reports_infeasible() {
        let c = case();
        let pair = OrderPair::default_pair();
        let tight = run_heuristic(&c, HeuristicKind::MemBookingRedTree, pair, 4, 1.0);
        let roomy = run_heuristic(&c, HeuristicKind::MemBookingRedTree, pair, 4, 20.0);
        // Under a huge bound it must schedule; under factor 1 it usually
        // cannot (transform inflation).
        assert!(roomy.scheduled);
        if tight.scheduled {
            assert!(tight.makespan >= roomy.makespan);
        }
    }

    #[test]
    fn order_cache_returns_same_instance() {
        let c = case();
        let a = c.order(OrderKind::CriticalPath);
        let b = c.order(OrderKind::CriticalPath);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn tree_case_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<TreeCase>();
        assert_sync::<CaseSource>();
    }

    #[test]
    fn content_hash_is_cached_and_matches_tree() {
        let c = case();
        assert_eq!(c.content_hash(), c.tree.content_hash());
        assert_eq!(c.content_hash(), c.content_hash());
    }

    #[test]
    fn case_source_builds_lazily_and_deterministically() {
        let mut source = CaseSource::new();
        source.push_case(case());
        source.push_lazy(|| TreeCase::new("lazy", memtree_gen::synthetic::paper_tree(120, 9)));
        assert_eq!(source.len(), 2);
        let a = source.build(1);
        let b = source.build(1);
        assert_eq!(a.name, "lazy");
        assert_eq!(a.content_hash(), b.content_hash());
        assert!(!Arc::ptr_eq(&a, &b), "lazy builds are not memoised");
        // Ready entries share one Arc.
        assert!(Arc::ptr_eq(&source.build(0), &source.build(0)));
        // Clones share entries without re-running builders on ready cases.
        let clone = source.clone();
        assert!(Arc::ptr_eq(&source.build(0), &clone.build(0)));
        assert_eq!(clone.iter().count(), 2);
    }

    #[test]
    fn threaded_platform_runs_a_case() {
        let c = case();
        let report = run_on_platform(
            &c,
            &memtree_runtime::ThreadedPlatform::new(2),
            HeuristicKind::MemBooking,
            OrderPair::default_pair(),
            1.0,
        )
        .unwrap();
        assert_eq!(report.tasks_run, c.len());
    }
}
