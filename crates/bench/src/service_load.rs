//! Load generator for the multi-tenant scheduling service
//! (`fig17_service`, DESIGN.md §6.9).
//!
//! `N` tenant threads share one [`Service`] over a global memory bound
//! `M`: every tenant submits a stream of sessions (its own tree, its own
//! requested bound, paced to an aggregate arrival rate) and blocks on
//! each outcome. A deterministic fraction of submissions is
//! intentionally infeasible — the requested bound is set below the
//! spec's feasibility floor — so the run also measures that admission
//! *refuses* exactly those, instead of thrashing on them.
//!
//! The report carries the service-level acceptance quantities: peak
//! concurrent tenants (must sustain the concurrency target), refusals
//! (must equal the injected infeasible count — zero infeasible sessions
//! admitted), grant floors (every admitted budget at least its floor),
//! the global booking peak (never above `M`; the hard-error ledger makes
//! an excursion a crash, not a statistic), and admission-wait
//! percentiles.

use memtree_sched::{HeuristicKind, PolicySpec};
use memtree_service::{
    Admission, GrantPolicy, Service, ServiceConfig, ServiceStats, SessionBackend, SessionRequest,
    SubmitError,
};
use memtree_tree::TaskTree;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The load shape: how many tenants, how many sessions each, how fast.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Concurrent tenant threads (each with at most one session in
    /// flight).
    pub tenants: usize,
    /// Sessions each tenant submits, sequentially.
    pub sessions_per_tenant: usize,
    /// Aggregate arrival-rate target, sessions/second (pacing between a
    /// tenant's consecutive submissions; the first wave arrives as a
    /// simultaneous burst through a barrier).
    pub rate_per_sec: f64,
    /// Node count of each tenant's synthetic tree.
    pub tree_nodes: usize,
    /// Corpus seed (tenant `t` builds `paper_tree(tree_nodes, seed+t)`).
    pub seed: u64,
    /// The grant policy under test.
    pub grant: GrantPolicy,
    /// The gate: `peak_running` must reach this many concurrent tenants.
    /// The capacity is sized so this many full requests always fit.
    pub concurrency_target: usize,
}

impl LoadSpec {
    /// The CI smoke shape: 10 tenants, 8-way concurrency gate,
    /// seconds-scale.
    pub fn quick() -> Self {
        LoadSpec {
            tenants: 10,
            sessions_per_tenant: 3,
            rate_per_sec: 400.0,
            tree_nodes: 1_500,
            seed: 17_000,
            grant: GrantPolicy::AllAvailable,
            concurrency_target: 8,
        }
    }

    /// The paper-scale shape: more tenants, deeper streams, bigger trees.
    pub fn full() -> Self {
        LoadSpec {
            tenants: 16,
            sessions_per_tenant: 6,
            rate_per_sec: 200.0,
            tree_nodes: 4_000,
            seed: 17_000,
            grant: GrantPolicy::AllAvailable,
            concurrency_target: 12,
        }
    }

    /// Overrides the grant policy.
    pub fn with_grant(mut self, grant: GrantPolicy) -> Self {
        self.grant = grant;
        self
    }
}

/// Whether tenant `t`'s session number `s` is submitted with an
/// infeasible bound (requested below the floor). Deterministic, never
/// the first session (the opening barrier burst carries the concurrency
/// gate), roughly one in seven thereafter.
fn inject_infeasible(t: usize, s: usize) -> bool {
    s > 0 && (t * 31 + s) % 7 == 3
}

/// One backend's aggregate load outcome.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Backend label (`sim`/`threaded`/`async`).
    pub backend: &'static str,
    /// Grant-policy label.
    pub grant: &'static str,
    /// The global memory bound `M` the run shared.
    pub capacity: u64,
    /// Sessions submitted (feasible + injected infeasible).
    pub submitted: usize,
    /// Admitted without queueing.
    pub admitted_immediate: usize,
    /// Admitted after waiting in the queue.
    pub admitted_queued: usize,
    /// Refused as infeasible.
    pub refused: usize,
    /// Intentionally infeasible submissions — must equal `refused`.
    pub expected_refusals: usize,
    /// Sessions whose granted budget fell below their feasibility floor
    /// — must be zero (an infeasible admission).
    pub underfloor_grants: usize,
    /// Sessions whose run errored.
    pub run_failures: usize,
    /// Measured aggregate arrival rate, sessions/second.
    pub arrival_rate: f64,
    /// Median admission wait, microseconds.
    pub wait_p50_us: u64,
    /// 99th-percentile admission wait, microseconds.
    pub wait_p99_us: u64,
    /// Wall-clock of the whole run, seconds.
    pub wall_seconds: f64,
    /// The service's final counters (peaks included).
    pub stats: ServiceStats,
}

impl LoadReport {
    /// CSV header matching [`LoadReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "backend,grant,capacity,tenants_peak,submitted,admitted_immediate,admitted_queued,\
         refused,expected_refusals,underfloor_grants,run_failures,peak_reserved,\
         arrival_rate,wait_p50_us,wait_p99_us,wall_seconds"
    }

    /// One CSV row of the aggregate outcome.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.1},{},{},{:.3}",
            self.backend,
            self.grant,
            self.capacity,
            self.stats.peak_running,
            self.submitted,
            self.admitted_immediate,
            self.admitted_queued,
            self.refused,
            self.expected_refusals,
            self.underfloor_grants,
            self.run_failures,
            self.stats.peak_reserved,
            self.arrival_rate,
            self.wait_p50_us,
            self.wait_p99_us,
            self.wall_seconds,
        )
    }

    /// The acceptance gates, as human-readable violations (empty = pass):
    /// the concurrency target sustained, refusals exactly the injected
    /// infeasible set, no under-floor grant, no failed run, booking peak
    /// within the bound.
    pub fn violations(&self, spec: &LoadSpec) -> Vec<String> {
        let mut v = Vec::new();
        if self.stats.peak_running < spec.concurrency_target {
            v.push(format!(
                "{}: peak concurrent tenants {} below the target {}",
                self.backend, self.stats.peak_running, spec.concurrency_target
            ));
        }
        if self.refused != self.expected_refusals {
            v.push(format!(
                "{}: {} refusals for {} infeasible submissions",
                self.backend, self.refused, self.expected_refusals
            ));
        }
        if self.underfloor_grants > 0 {
            v.push(format!(
                "{}: {} sessions admitted below their feasibility floor",
                self.backend, self.underfloor_grants
            ));
        }
        if self.run_failures > 0 {
            v.push(format!(
                "{}: {} session runs failed",
                self.backend, self.run_failures
            ));
        }
        if self.stats.peak_reserved > self.capacity {
            v.push(format!(
                "{}: peak booked {} over the bound {}",
                self.backend, self.stats.peak_reserved, self.capacity
            ));
        }
        v
    }
}

/// One tenant thread's tallies.
#[derive(Default)]
struct TenantResult {
    immediate: usize,
    queued: usize,
    refused: usize,
    underfloor: usize,
    failures: usize,
    waits: Vec<Duration>,
}

/// Runs the load shape against one backend and aggregates the outcome.
///
/// The capacity is `concurrency_target · max(request)`, so that many
/// full requests always fit side by side — the concurrency gate measures
/// the service, not an under-provisioned machine — while `tenants`
/// exceeding the target still queue and exercise the rebalance path.
pub fn run_load(backend: SessionBackend, spec: &LoadSpec) -> LoadReport {
    assert!(spec.tenants >= spec.concurrency_target);
    // Tenant trees, their floors, and their (feasible) requested bounds:
    // 25% headroom over the floor keeps grants close to the floor so
    // concurrency is capacity-bound, not generosity-bound.
    let tenants: Vec<(Arc<TaskTree>, u64, u64)> = (0..spec.tenants)
        .map(|t| {
            let tree = Arc::new(memtree_gen::synthetic::paper_tree(
                spec.tree_nodes,
                spec.seed + t as u64,
            ));
            let floor = PolicySpec::new(HeuristicKind::MemBooking, 0).min_feasible(&tree);
            let requested = floor + floor / 4;
            (tree, floor, requested)
        })
        .collect();
    let max_request = tenants.iter().map(|&(_, _, r)| r).max().unwrap();
    let capacity = max_request * spec.concurrency_target as u64;

    let service = Arc::new(Service::start(
        ServiceConfig::new(capacity)
            .with_backend(backend)
            .with_grant(spec.grant),
    ));
    let barrier = Arc::new(Barrier::new(spec.tenants));
    let pace = Duration::from_secs_f64(spec.tenants as f64 / spec.rate_per_sec.max(1.0));

    let started = Instant::now();
    let handles: Vec<std::thread::JoinHandle<TenantResult>> = tenants
        .iter()
        .enumerate()
        .map(|(t, (tree, floor, requested))| {
            let (tree, floor, requested) = (tree.clone(), *floor, *requested);
            let service = service.clone();
            let barrier = barrier.clone();
            let sessions = spec.sessions_per_tenant;
            std::thread::spawn(move || {
                let mut res = TenantResult::default();
                for s in 0..sessions {
                    if s == 0 {
                        // The first wave arrives simultaneously: the
                        // concurrency gate measures a real burst.
                        barrier.wait();
                    } else {
                        std::thread::sleep(pace);
                    }
                    let bound = if inject_infeasible(t, s) {
                        floor - 1
                    } else {
                        requested
                    };
                    let spec = PolicySpec::new(HeuristicKind::MemBooking, bound);
                    match service.submit(SessionRequest::new(spec, tree.clone())) {
                        Ok(ticket) => {
                            match ticket.admission {
                                Admission::Immediate { .. } => res.immediate += 1,
                                Admission::Queued { .. } => res.queued += 1,
                            }
                            let outcome = ticket.wait().expect("service stays up");
                            if outcome.budget < floor {
                                res.underfloor += 1;
                            }
                            if outcome.result.is_err() {
                                res.failures += 1;
                            }
                            res.waits.push(outcome.admission_wait);
                        }
                        Err(SubmitError::Infeasible(_)) => res.refused += 1,
                        Err(e) => panic!("tenant {t} session {s}: {e}"),
                    }
                }
                res
            })
        })
        .collect();

    let mut total = TenantResult::default();
    for h in handles {
        let r = h.join().expect("tenant thread");
        total.immediate += r.immediate;
        total.queued += r.queued;
        total.refused += r.refused;
        total.underfloor += r.underfloor;
        total.failures += r.failures;
        total.waits.extend(r.waits);
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    let service = Arc::try_unwrap(service).expect("all tenants joined");
    let stats = service.shutdown();

    total.waits.sort_unstable();
    let pct = |q: f64| -> u64 {
        if total.waits.is_empty() {
            return 0;
        }
        let i = ((total.waits.len() - 1) as f64 * q).round() as usize;
        total.waits[i].as_micros() as u64
    };
    let submitted = spec.tenants * spec.sessions_per_tenant;
    let expected_refusals = (0..spec.tenants)
        .flat_map(|t| (0..spec.sessions_per_tenant).map(move |s| (t, s)))
        .filter(|&(t, s)| inject_infeasible(t, s))
        .count();

    LoadReport {
        backend: backend.label(),
        grant: spec.grant.label(),
        capacity,
        submitted,
        admitted_immediate: total.immediate,
        admitted_queued: total.queued,
        refused: total.refused,
        expected_refusals,
        underfloor_grants: total.underfloor,
        run_failures: total.failures,
        arrival_rate: if wall_seconds > 0.0 {
            submitted as f64 / wall_seconds
        } else {
            0.0
        },
        wait_p50_us: pct(0.50),
        wait_p99_us: pct(0.99),
        wall_seconds,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature load run passes its own gates. The threaded backend
    /// with the sleeping workload keeps sessions alive for milliseconds,
    /// so the opening burst's concurrency is deterministic, not a race
    /// against scheduler jitter.
    #[test]
    fn quick_load_passes_its_gates() {
        let spec = LoadSpec {
            tenants: 4,
            sessions_per_tenant: 2,
            rate_per_sec: 1_000.0,
            tree_nodes: 400,
            seed: 99,
            grant: GrantPolicy::AllAvailable,
            concurrency_target: 3,
        };
        let backend = memtree_service::SessionBackend::Threaded {
            workers: 2,
            workload: memtree_runtime::Workload::quick(),
        };
        let report = run_load(backend, &spec);
        assert_eq!(report.violations(&spec), Vec::<String>::new());
        assert_eq!(report.submitted, 8);
        assert_eq!(
            report.admitted_immediate + report.admitted_queued + report.refused,
            report.submitted
        );
    }
}
