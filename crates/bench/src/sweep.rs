//! **`Sweep`** — declarative scenario grids fanned out over all cores
//! (DESIGN.md §6.4).
//!
//! A sweep is the cartesian product (trees × policies × order pairs ×
//! processor counts × memory factors); every figure in the paper is an
//! aggregation over such a grid. [`Sweep::run`] executes the cells with
//! `rayon`, one simulator run per cell, sharing each [`TreeCase`]'s cached
//! orders and reduction-tree transform across cells. Cells come back in
//! deterministic grid order regardless of which thread ran them, so
//! downstream CSV output is reproducible.

use crate::runner::{run_heuristic, OrderPair, RunOutcome, TreeCase};
use memtree_sched::HeuristicKind;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Mutex;

/// One point of the scenario grid with its outcome.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Index of the tree in the sweep's case slice.
    pub case_index: usize,
    /// The tree's name (CSV key).
    pub tree: String,
    /// Policy run in this cell.
    pub kind: HeuristicKind,
    /// Order pair used.
    pub pair: OrderPair,
    /// Processor count.
    pub processors: usize,
    /// Normalized memory factor.
    pub factor: f64,
    /// What happened.
    pub outcome: RunOutcome,
}

/// Result of a sweep: the cells in grid order plus execution metadata.
#[derive(Debug)]
pub struct SweepReport {
    /// All cells, ordered (case, kind, pair, processors, factor) —
    /// innermost index varies fastest.
    pub cells: Vec<SweepCell>,
    /// Distinct worker threads that executed cells (≥ 2 on multicore
    /// machines for non-trivial grids).
    pub threads_used: usize,
    // The grid axes, kept so lookups are index arithmetic instead of
    // scans.
    kinds: Vec<HeuristicKind>,
    pairs: Vec<OrderPair>,
    processors: Vec<usize>,
    factors: Vec<f64>,
}

impl SweepReport {
    /// Number of trees the sweep covered.
    pub fn case_count(&self) -> usize {
        let per_case =
            self.kinds.len() * self.pairs.len() * self.processors.len() * self.factors.len();
        self.cells.len().checked_div(per_case).unwrap_or(0)
    }

    /// The cell for an exact grid point, if that point was on the grid.
    /// O(axis lengths): computes the position from the grid order.
    pub fn cell(
        &self,
        case_index: usize,
        kind: HeuristicKind,
        pair: OrderPair,
        processors: usize,
        factor: f64,
    ) -> Option<&SweepCell> {
        let k = self.kinds.iter().position(|&x| x == kind)?;
        let o = self.pairs.iter().position(|&x| x == pair)?;
        let p = self.processors.iter().position(|&x| x == processors)?;
        let f = self.factors.iter().position(|&x| x == factor)?;
        let idx = (((case_index * self.kinds.len() + k) * self.pairs.len() + o)
            * self.processors.len()
            + p)
            * self.factors.len()
            + f;
        let cell = self.cells.get(idx)?;
        debug_assert!(
            cell.case_index == case_index
                && cell.kind == kind
                && cell.pair == pair
                && cell.processors == processors
                && cell.factor == factor
        );
        Some(cell)
    }

    /// The cells of one full series — a fixed `(kind, pair, processors,
    /// factor)` point across every tree, in tree order. All four axes are
    /// explicit so multi-axis sweeps cannot silently merge series.
    pub fn series(
        &self,
        kind: HeuristicKind,
        pair: OrderPair,
        processors: usize,
        factor: f64,
    ) -> impl Iterator<Item = &SweepCell> + '_ {
        (0..self.case_count()).filter_map(move |ci| self.cell(ci, kind, pair, processors, factor))
    }
}

/// A declarative scenario grid over a set of [`TreeCase`]s.
///
/// ```
/// use memtree_bench::{Sweep, TreeCase};
/// use memtree_sched::HeuristicKind;
///
/// let cases: Vec<TreeCase> = (0..2)
///     .map(|s| TreeCase::new(format!("t{s}"), memtree_gen::synthetic::paper_tree(120, s)))
///     .collect();
/// let report = Sweep::new(&cases)
///     .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
///     .factors(vec![1.0, 2.0])
///     .processors(vec![4])
///     .run();
/// assert_eq!(report.cells.len(), 2 * 2 * 2);
/// ```
pub struct Sweep<'a> {
    cases: &'a [TreeCase],
    kinds: Vec<HeuristicKind>,
    pairs: Vec<OrderPair>,
    processors: Vec<usize>,
    factors: Vec<f64>,
}

impl<'a> Sweep<'a> {
    /// A sweep over `cases` with the paper's defaults: MemBooking,
    /// memPO/memPO, 8 processors, memory factor 2.
    pub fn new(cases: &'a [TreeCase]) -> Self {
        Sweep {
            cases,
            kinds: vec![HeuristicKind::MemBooking],
            pairs: vec![OrderPair::default_pair()],
            processors: vec![8],
            factors: vec![2.0],
        }
    }

    /// Sets the policies axis.
    pub fn kinds(mut self, kinds: Vec<HeuristicKind>) -> Self {
        self.kinds = kinds;
        self
    }

    /// Sets the order-pair axis.
    pub fn pairs(mut self, pairs: Vec<OrderPair>) -> Self {
        self.pairs = pairs;
        self
    }

    /// Sets the processor-count axis.
    pub fn processors(mut self, processors: Vec<usize>) -> Self {
        self.processors = processors;
        self
    }

    /// Sets the memory-factor axis.
    pub fn factors(mut self, factors: Vec<f64>) -> Self {
        self.factors = factors;
        self
    }

    /// Number of grid cells this sweep will run.
    pub fn cell_count(&self) -> usize {
        self.cases.len()
            * self.kinds.len()
            * self.pairs.len()
            * self.processors.len()
            * self.factors.len()
    }

    /// Runs every cell, fanned out with rayon; cells return in grid order.
    pub fn run(&self) -> SweepReport {
        let mut grid: Vec<(usize, HeuristicKind, OrderPair, usize, f64)> =
            Vec::with_capacity(self.cell_count());
        for (case_index, _) in self.cases.iter().enumerate() {
            for &kind in &self.kinds {
                for &pair in &self.pairs {
                    for &p in &self.processors {
                        for &factor in &self.factors {
                            grid.push((case_index, kind, pair, p, factor));
                        }
                    }
                }
            }
        }
        let threads: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let cells: Vec<SweepCell> = grid
            .into_par_iter()
            .map(|(case_index, kind, pair, p, factor)| {
                threads
                    .lock()
                    .expect("thread-set lock poisoned")
                    .insert(std::thread::current().id());
                let case = &self.cases[case_index];
                SweepCell {
                    case_index,
                    tree: case.name.clone(),
                    kind,
                    pair,
                    processors: p,
                    factor,
                    outcome: run_heuristic(case, kind, pair, p, factor),
                }
            })
            .collect();
        let threads_used = threads.lock().expect("thread-set lock poisoned").len();
        SweepReport {
            cells,
            threads_used,
            kinds: self.kinds.clone(),
            pairs: self.pairs.clone(),
            processors: self.processors.clone(),
            factors: self.factors.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases(n: usize) -> Vec<TreeCase> {
        (0..n)
            .map(|s| {
                TreeCase::new(
                    format!("sweep-{s}"),
                    memtree_gen::synthetic::paper_tree(200, 60 + s as u64),
                )
            })
            .collect()
    }

    #[test]
    fn grid_is_complete_and_ordered() {
        let cs = cases(2);
        let report = Sweep::new(&cs)
            .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
            .factors(vec![1.0, 3.0])
            .processors(vec![4])
            .run();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        // Grid order: case-major, factor innermost.
        assert_eq!(report.cells[0].case_index, 0);
        assert_eq!(report.cells[0].factor, 1.0);
        assert_eq!(report.cells[1].factor, 3.0);
        assert_eq!(report.cells[4].case_index, 1);
        // Feasible policies at these factors all schedule.
        assert!(report.cells.iter().all(|c| c.outcome.scheduled));
    }

    #[test]
    fn acceptance_grid_runs_multithreaded() {
        // The acceptance scenario: ≥ 2 trees × 4 policies × 2 memory
        // factors, all policy kinds first-class (including RedTree).
        let cs = cases(2);
        let report = Sweep::new(&cs)
            .kinds(vec![
                HeuristicKind::Activation,
                HeuristicKind::MemBooking,
                HeuristicKind::MemBookingRef,
                HeuristicKind::MemBookingRedTree,
            ])
            .factors(vec![2.0, 30.0])
            .processors(vec![4])
            .run();
        assert_eq!(report.cells.len(), 2 * 4 * 2);
        // Every policy schedules at the roomy factor (30× minimum).
        for cell in report.cells.iter().filter(|c| c.factor == 30.0) {
            assert!(cell.outcome.scheduled, "{} at 30x", cell.kind);
        }
        if rayon::current_num_threads() > 1 {
            assert!(
                report.threads_used > 1,
                "sweep should use multiple threads, used {}",
                report.threads_used
            );
        }
    }

    #[test]
    fn series_and_cell_lookups() {
        let cs = cases(2);
        let report = Sweep::new(&cs).factors(vec![1.5]).processors(vec![2]).run();
        let pair = OrderPair::default_pair();
        assert_eq!(report.case_count(), 2);
        assert_eq!(
            report
                .series(HeuristicKind::MemBooking, pair, 2, 1.5)
                .count(),
            2
        );
        let cell = report
            .cell(1, HeuristicKind::MemBooking, pair, 2, 1.5)
            .expect("cell exists");
        assert_eq!(cell.tree, "sweep-1");
        // Off-grid points are None, not a wrong cell.
        assert!(report
            .cell(1, HeuristicKind::Sequential, pair, 2, 1.5)
            .is_none());
        assert!(report
            .cell(1, HeuristicKind::MemBooking, pair, 8, 1.5)
            .is_none());
        assert!(report
            .cell(5, HeuristicKind::MemBooking, pair, 2, 1.5)
            .is_none());
    }

    #[test]
    fn multi_axis_grids_keep_series_separate() {
        let cs = cases(2);
        let pairs = vec![
            OrderPair::default_pair(),
            OrderPair {
                ao: memtree_order::OrderKind::MemPostorder,
                eo: memtree_order::OrderKind::CriticalPath,
            },
        ];
        let report = Sweep::new(&cs)
            .pairs(pairs.clone())
            .processors(vec![2, 4])
            .factors(vec![2.0])
            .run();
        // Each (pair, p) series sees exactly one cell per tree.
        for &pair in &pairs {
            for &p in &[2usize, 4] {
                let cells: Vec<_> = report
                    .series(HeuristicKind::MemBooking, pair, p, 2.0)
                    .collect();
                assert_eq!(cells.len(), 2);
                assert!(cells.iter().all(|c| c.pair == pair && c.processors == p));
            }
        }
    }
}
