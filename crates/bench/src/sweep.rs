//! **`Sweep`** — streaming, resumable scenario grids fanned out over all
//! cores (DESIGN.md §6.5/§6.6).
//!
//! A sweep is the cartesian product (trees × policies × order pairs ×
//! processor counts × execution backends × memory factors); every figure
//! in the paper is an aggregation over such a grid (the backend axis
//! defaults to the simulator). [`Sweep::run`] *streams*: trees come from
//! a [`CaseSource`] and are realised in a bounded in-flight window —
//! while one window's cells execute on the rayon pool, the next window's
//! trees generate concurrently, and each case is dropped as soon as its
//! last cell completes. Peak RSS is O(window), not O(corpus), so
//! full-scale sweeps (100k-node trees × thousands of cells) run under the
//! same out-of-core discipline the paper's schedulers study.
//!
//! With a [`CellCache`] attached the sweep is also *resumable*: completed
//! cells persist under content-addressed keys, a re-run after an
//! interruption recomputes zero finished cells, and a policy change
//! invalidates exactly its own series. Cells come back in deterministic
//! grid order regardless of which thread (or which earlier run) produced
//! them, so CSV output is byte-identical between cold and warm runs.

use crate::cache::{cell_key, CellCache};
use crate::runner::{run_heuristic_backend, Backend, CaseSource, OrderPair, RunOutcome, TreeCase};
use memtree_sched::HeuristicKind;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One point of the scenario grid with its outcome.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Index of the tree in the sweep's case source.
    pub case_index: usize,
    /// The tree's name (CSV key).
    pub tree: String,
    /// Policy run in this cell.
    pub kind: HeuristicKind,
    /// Order pair used.
    pub pair: OrderPair,
    /// Processor count.
    pub processors: usize,
    /// Execution backend the cell ran on.
    pub backend: Backend,
    /// Normalized memory factor.
    pub factor: f64,
    /// What happened.
    pub outcome: RunOutcome,
    /// Whether the outcome was replayed from the cell cache.
    pub from_cache: bool,
}

/// Per-tree structural metadata recorded by the sweep, so figures can
/// aggregate by tree size/height after the tree itself has been dropped.
#[derive(Clone, Debug)]
pub struct CaseMeta {
    /// The tree's name (CSV key).
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Tree height.
    pub height: u32,
    /// Minimum memory (the unit of the memory-factor axis).
    pub min_memory: u64,
}

/// Execution knobs shared by every figure/table binary: where (and
/// whether) to cache cells, and how wide the streaming window is.
#[derive(Clone, Debug, Default)]
pub struct SweepCtx {
    /// Persist/replay cells here; `None` disables caching.
    pub cache: Option<CellCache>,
    /// Ignore existing cache entries (recompute and overwrite) — the
    /// `--fresh` flag.
    pub fresh: bool,
    /// Override the in-flight case window (`None` = one window per rayon
    /// thread, min 2).
    pub window: Option<usize>,
}

/// Result of a sweep: the cells in grid order plus execution metadata.
#[derive(Debug)]
pub struct SweepReport {
    /// All cells, ordered (case, kind, pair, processors, backend,
    /// factor) — innermost index varies fastest.
    pub cells: Vec<SweepCell>,
    /// Structural metadata of every case, in case order.
    pub cases: Vec<CaseMeta>,
    /// Distinct worker threads that executed cells (≥ 2 on multicore
    /// machines for non-trivial grids).
    pub threads_used: usize,
    /// Cells replayed from the cache.
    pub cache_hits: usize,
    /// Cells actually computed this run.
    pub computed: usize,
    /// Wall-clock duration of the whole sweep.
    pub wall_seconds: f64,
    // The grid axes, kept so lookups are index arithmetic instead of
    // scans.
    kinds: Vec<HeuristicKind>,
    pairs: Vec<OrderPair>,
    processors: Vec<usize>,
    backends: Vec<Backend>,
    factors: Vec<f64>,
}

impl SweepReport {
    /// Number of trees the sweep covered.
    pub fn case_count(&self) -> usize {
        self.cases.len()
    }

    /// Fraction of cells served from the cache (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        if self.cells.is_empty() {
            0.0
        } else {
            self.cache_hits as f64 / self.cells.len() as f64
        }
    }

    /// The cell for an exact grid point at the sweep's *first* backend
    /// (the whole axis for the common single-backend sweep); use
    /// [`SweepReport::cell_at`] to address other backends.
    /// O(axis lengths): computes the position from the grid order.
    pub fn cell(
        &self,
        case_index: usize,
        kind: HeuristicKind,
        pair: OrderPair,
        processors: usize,
        factor: f64,
    ) -> Option<&SweepCell> {
        self.cell_at(case_index, kind, pair, processors, self.backends[0], factor)
    }

    /// The cell for an exact grid point, every axis explicit.
    pub fn cell_at(
        &self,
        case_index: usize,
        kind: HeuristicKind,
        pair: OrderPair,
        processors: usize,
        backend: Backend,
        factor: f64,
    ) -> Option<&SweepCell> {
        if case_index >= self.case_count() {
            return None;
        }
        let k = self.kinds.iter().position(|&x| x == kind)?;
        let o = self.pairs.iter().position(|&x| x == pair)?;
        let p = self.processors.iter().position(|&x| x == processors)?;
        let b = self.backends.iter().position(|&x| x == backend)?;
        let f = self.factors.iter().position(|&x| x == factor)?;
        let idx = ((((case_index * self.kinds.len() + k) * self.pairs.len() + o)
            * self.processors.len()
            + p)
            * self.backends.len()
            + b)
            * self.factors.len()
            + f;
        let cell = self.cells.get(idx)?;
        debug_assert!(
            cell.case_index == case_index
                && cell.kind == kind
                && cell.pair == pair
                && cell.processors == processors
                && cell.backend == backend
                && cell.factor == factor
        );
        Some(cell)
    }

    /// The cells of one full series — a fixed `(kind, pair, processors,
    /// factor)` point across every tree, in tree order, at the sweep's
    /// first backend (see [`SweepReport::series_at`]). The axes are
    /// explicit so multi-axis sweeps cannot silently merge series.
    pub fn series(
        &self,
        kind: HeuristicKind,
        pair: OrderPair,
        processors: usize,
        factor: f64,
    ) -> impl Iterator<Item = &SweepCell> + '_ {
        self.series_at(kind, pair, processors, self.backends[0], factor)
    }

    /// The cells of one full series with the backend explicit.
    pub fn series_at(
        &self,
        kind: HeuristicKind,
        pair: OrderPair,
        processors: usize,
        backend: Backend,
        factor: f64,
    ) -> impl Iterator<Item = &SweepCell> + '_ {
        (0..self.case_count())
            .filter_map(move |ci| self.cell_at(ci, kind, pair, processors, backend, factor))
    }

    /// The header matching [`SweepReport::cell_rows`].
    pub fn cell_csv_header() -> &'static str {
        "tree,heuristic,ao_eo,processors,backend,memory_factor,scheduled,makespan,normalized,\
         memory_fraction,scheduling_seconds"
    }

    /// A full deterministic CSV dump of every cell, in grid order. With a
    /// warm cache the rows are byte-identical to the cold run's (cached
    /// outcomes round-trip `f64`s exactly) — what the `bench-smoke` CI job
    /// asserts.
    pub fn cell_rows(&self) -> Vec<String> {
        self.cells
            .iter()
            .map(|c| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{}",
                    c.tree,
                    c.kind.label(),
                    c.pair.label(),
                    c.processors,
                    c.backend.label(),
                    c.factor,
                    u8::from(c.outcome.scheduled),
                    c.outcome.makespan,
                    c.outcome.normalized,
                    c.outcome.memory_fraction,
                    c.outcome.scheduling_seconds,
                )
            })
            .collect()
    }

    /// [`SweepReport::cell_rows`] with the trailing wall-clock
    /// `scheduling_seconds` column stripped — what equivalence tests
    /// compare, since timing is nondeterministic between independent
    /// computed runs (byte-identity is the *cache's* guarantee).
    ///
    /// # Errors
    /// On any row that does not have the header's column count — a
    /// malformed row must fail loudly, never be silently truncated at the
    /// wrong comma.
    pub fn untimed_rows(&self) -> Result<Vec<String>, String> {
        self.cell_rows().iter().map(|r| untimed_row(r)).collect()
    }
}

/// Strips the trailing timing column from one [`SweepReport::cell_rows`]
/// row, verifying the row's shape first.
///
/// # Errors
/// When the row's column count differs from
/// [`SweepReport::cell_csv_header`]'s — truncated or malformed rows
/// surface a loud error instead of panicking (or worse, comparing a
/// mis-stripped prefix).
pub fn untimed_row(row: &str) -> Result<String, String> {
    let expected = SweepReport::cell_csv_header().split(',').count();
    let columns = row.split(',').count();
    if columns != expected {
        return Err(format!(
            "malformed sweep row: {columns} columns where the header has {expected}: {row:?}"
        ));
    }
    let (kept, _timing) = row
        .rsplit_once(',')
        .expect("a multi-column row contains a comma");
    Ok(kept.to_string())
}

/// A declarative scenario grid over a [`CaseSource`].
///
/// ```
/// use memtree_bench::{CaseSource, Sweep, TreeCase};
/// use memtree_sched::HeuristicKind;
///
/// let source: CaseSource = (0..2)
///     .map(|s| TreeCase::new(format!("t{s}"), memtree_gen::synthetic::paper_tree(120, s)))
///     .collect();
/// let report = Sweep::new(&source)
///     .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
///     .factors(vec![1.0, 2.0])
///     .processors(vec![4])
///     .run();
/// assert_eq!(report.cells.len(), 2 * 2 * 2);
/// ```
pub struct Sweep<'a> {
    source: &'a CaseSource,
    kinds: Vec<HeuristicKind>,
    pairs: Vec<OrderPair>,
    processors: Vec<usize>,
    backends: Vec<Backend>,
    factors: Vec<f64>,
    window: usize,
    cache: Option<CellCache>,
    fresh: bool,
}

impl<'a> Sweep<'a> {
    /// A sweep over `source` with the paper's defaults: MemBooking,
    /// memPO/memPO, 8 processors, the simulator backend, memory factor 2,
    /// a window of one case per rayon thread, no cache.
    pub fn new(source: &'a CaseSource) -> Self {
        Sweep {
            source,
            kinds: vec![HeuristicKind::MemBooking],
            pairs: vec![OrderPair::default_pair()],
            processors: vec![8],
            backends: vec![Backend::Sim],
            factors: vec![2.0],
            window: rayon::current_num_threads().max(2),
            cache: None,
            fresh: false,
        }
    }

    /// Sets the policies axis.
    ///
    /// # Panics
    /// On an empty axis: a sweep with an empty axis has zero cells and
    /// every per-case index becomes undefined, so it is rejected at
    /// construction instead of silently reporting `case_count() == 0`.
    pub fn kinds(mut self, kinds: Vec<HeuristicKind>) -> Self {
        assert!(!kinds.is_empty(), "Sweep: empty policy axis");
        self.kinds = kinds;
        self
    }

    /// Sets the order-pair axis.
    ///
    /// # Panics
    /// On an empty axis (see [`Sweep::kinds`]).
    pub fn pairs(mut self, pairs: Vec<OrderPair>) -> Self {
        assert!(!pairs.is_empty(), "Sweep: empty order-pair axis");
        self.pairs = pairs;
        self
    }

    /// Sets the processor-count axis.
    ///
    /// # Panics
    /// On an empty axis (see [`Sweep::kinds`]).
    pub fn processors(mut self, processors: Vec<usize>) -> Self {
        assert!(!processors.is_empty(), "Sweep: empty processor axis");
        self.processors = processors;
        self
    }

    /// Sets the execution-backend axis — the `--backend` sweep axis of
    /// the shared CLI (`sim|threaded|sharded|async`).
    ///
    /// # Panics
    /// On an empty axis (see [`Sweep::kinds`]).
    pub fn backends(mut self, backends: Vec<Backend>) -> Self {
        assert!(!backends.is_empty(), "Sweep: empty backend axis");
        self.backends = backends;
        self
    }

    /// Sets the backend axis through the PR-4 shard-count encoding: 0 is
    /// the unsharded simulator, `s ≥ 1` the sharded forest platform with
    /// up to `s` shard workers ([`Backend::from_shards`]).
    ///
    /// # Panics
    /// On an empty axis (see [`Sweep::kinds`]).
    pub fn shards(self, shards: Vec<usize>) -> Self {
        assert!(!shards.is_empty(), "Sweep: empty shard-count axis");
        self.backends(shards.into_iter().map(Backend::from_shards).collect())
    }

    /// Sets the memory-factor axis.
    ///
    /// # Panics
    /// On an empty axis (see [`Sweep::kinds`]).
    pub fn factors(mut self, factors: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "Sweep: empty memory-factor axis");
        self.factors = factors;
        self
    }

    /// Sets the in-flight case window: at most `window` cases (plus the
    /// window being generated) are alive at once.
    ///
    /// # Panics
    /// When `window == 0`.
    pub fn window(mut self, window: usize) -> Self {
        assert!(window >= 1, "Sweep: the in-flight window must be ≥ 1");
        self.window = window;
        self
    }

    /// Attaches a cell cache: hits are replayed, misses computed and
    /// persisted.
    pub fn cache(mut self, cache: CellCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Ignores existing cache entries (recompute everything) while still
    /// refreshing the store — the `--fresh` flag.
    pub fn fresh(mut self, fresh: bool) -> Self {
        self.fresh = fresh;
        self
    }

    /// Applies the shared execution knobs of a figure binary.
    pub fn ctx(mut self, ctx: &SweepCtx) -> Self {
        self.cache = ctx.cache.clone();
        self.fresh = ctx.fresh;
        if let Some(w) = ctx.window {
            self = self.window(w);
        }
        self
    }

    /// Number of grid cells this sweep will run.
    pub fn cell_count(&self) -> usize {
        self.source.len() * self.cells_per_case()
    }

    fn cells_per_case(&self) -> usize {
        self.kinds.len()
            * self.pairs.len()
            * self.processors.len()
            * self.backends.len()
            * self.factors.len()
    }

    /// Runs every cell; cells return in grid order.
    ///
    /// Streaming: the source's cases are realised `window` at a time; the
    /// cells of the current window fan out over the rayon pool while the
    /// next window's trees generate concurrently (`rayon::join`), and each
    /// window is dropped wholesale once its cells are in — so peak RSS
    /// tracks the window, not the corpus.
    pub fn run(&self) -> SweepReport {
        let start_time = Instant::now();
        let n = self.source.len();
        let per_case = self.cells_per_case();
        let threads: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let hits = AtomicUsize::new(0);
        let computed = AtomicUsize::new(0);

        let mut cells: Vec<SweepCell> = Vec::with_capacity(n * per_case);
        let mut cases: Vec<CaseMeta> = Vec::with_capacity(n);
        let mut start = 0usize;
        // The initial window builds in parallel — nothing competes yet.
        let mut current: Vec<Arc<TreeCase>> = (0..self.window.min(n))
            .collect::<Vec<usize>>()
            .into_par_iter()
            .map(|i| self.source.build(i))
            .collect();
        while start < n {
            let end = start + current.len();
            let next_range = end..(end + self.window).min(n);
            let (window_cells, next) = rayon::join(
                || {
                    (0..current.len() * per_case)
                        .collect::<Vec<usize>>()
                        .into_par_iter()
                        .map(|flat| {
                            let (local, rest) = (flat / per_case, flat % per_case);
                            self.run_cell(
                                start + local,
                                &current[local],
                                rest,
                                &threads,
                                &hits,
                                &computed,
                            )
                        })
                        .collect::<Vec<SweepCell>>()
                },
                // The next window generates on the join's one extra thread
                // while the full pool executes cells — sequential here, so
                // the two sides never oversubscribe the machine 2×.
                || next_range.map(|i| self.source.build(i)).collect::<Vec<_>>(),
            );
            cases.extend(current.iter().map(|c| CaseMeta {
                name: c.name.clone(),
                nodes: c.len(),
                height: c.stats.height,
                min_memory: c.min_memory,
            }));
            cells.extend(window_cells);
            current = next; // the finished window drops here
            start = end;
        }

        let threads_used = threads.lock().expect("thread-set lock poisoned").len();
        SweepReport {
            cells,
            cases,
            threads_used,
            cache_hits: hits.into_inner(),
            computed: computed.into_inner(),
            wall_seconds: start_time.elapsed().as_secs_f64(),
            kinds: self.kinds.clone(),
            pairs: self.pairs.clone(),
            processors: self.processors.clone(),
            backends: self.backends.clone(),
            factors: self.factors.clone(),
        }
    }

    /// Executes (or replays) the cell at flat in-case offset `rest`.
    fn run_cell(
        &self,
        case_index: usize,
        case: &TreeCase,
        rest: usize,
        threads: &Mutex<HashSet<std::thread::ThreadId>>,
        hits: &AtomicUsize,
        computed: &AtomicUsize,
    ) -> SweepCell {
        // Decompose in grid order: factor varies fastest.
        let f = rest % self.factors.len();
        let rest = rest / self.factors.len();
        let b = rest % self.backends.len();
        let rest = rest / self.backends.len();
        let p = rest % self.processors.len();
        let rest = rest / self.processors.len();
        let o = rest % self.pairs.len();
        let k = rest / self.pairs.len();
        let (kind, pair) = (self.kinds[k], self.pairs[o]);
        let (processors, backend, factor) = (self.processors[p], self.backends[b], self.factors[f]);

        threads
            .lock()
            .expect("thread-set lock poisoned")
            .insert(std::thread::current().id());

        let key = self.cache.as_ref().map(|_| {
            cell_key(
                case.content_hash(),
                kind,
                pair,
                processors,
                backend,
                factor,
                case.memory_at(factor),
            )
        });
        if !self.fresh {
            if let (Some(cache), Some(key)) = (&self.cache, &key) {
                if let Some(outcome) = cache.lookup(key) {
                    // ordering: Relaxed — statistics counter; read only
                    // after the rayon join barrier, which orders it.
                    hits.fetch_add(1, Ordering::Relaxed);
                    return SweepCell {
                        case_index,
                        tree: case.name.clone(),
                        kind,
                        pair,
                        processors,
                        backend,
                        factor,
                        outcome,
                        from_cache: true,
                    };
                }
            }
        }
        let outcome = run_heuristic_backend(case, kind, pair, processors, factor, backend);
        // ordering: Relaxed — statistics counter; read only after the
        // rayon join barrier, which orders it.
        computed.fetch_add(1, Ordering::Relaxed);
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            // Best-effort: a full disk must not kill the sweep.
            let _ = cache.store(key, &outcome);
        }
        SweepCell {
            case_index,
            tree: case.name.clone(),
            kind,
            pair,
            processors,
            backend,
            factor,
            outcome,
            from_cache: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases(n: usize) -> CaseSource {
        (0..n)
            .map(|s| {
                TreeCase::new(
                    format!("sweep-{s}"),
                    memtree_gen::synthetic::paper_tree(200, 60 + s as u64),
                )
            })
            .collect()
    }

    /// A lazy source of `n` synthetic trees — exercises the streaming
    /// path (cases built inside `run`, dropped per window).
    fn lazy_cases(n: usize) -> CaseSource {
        let mut source = CaseSource::new();
        for s in 0..n {
            source.push_lazy(move || {
                TreeCase::new(
                    format!("sweep-{s}"),
                    memtree_gen::synthetic::paper_tree(200, 60 + s as u64),
                )
            });
        }
        source
    }

    #[test]
    fn grid_is_complete_and_ordered() {
        let cs = cases(2);
        let report = Sweep::new(&cs)
            .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
            .factors(vec![1.0, 3.0])
            .processors(vec![4])
            .run();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        // Grid order: case-major, factor innermost.
        assert_eq!(report.cells[0].case_index, 0);
        assert_eq!(report.cells[0].factor, 1.0);
        assert_eq!(report.cells[1].factor, 3.0);
        assert_eq!(report.cells[4].case_index, 1);
        // Feasible policies at these factors all schedule.
        assert!(report.cells.iter().all(|c| c.outcome.scheduled));
        // No cache attached: everything computed, nothing hit.
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.computed, report.cells.len());
    }

    #[test]
    fn streaming_windows_match_materialised_run() {
        // The same grid through a lazy source with a tiny window must
        // produce identical cells (order and outcomes) to the eager run.
        let eager = cases(5);
        let lazy = lazy_cases(5);
        let run = |src: &CaseSource, window: usize| {
            Sweep::new(src)
                .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
                .factors(vec![1.5, 3.0])
                .processors(vec![2])
                .window(window)
                .run()
        };
        let a = run(&eager, 64);
        let b = run(&lazy, 2);
        let c = run(&lazy, 1);
        // scheduling_seconds is wall-clock (nondeterministic between
        // independent computed runs — byte-identity is the *cache's*
        // guarantee); every simulated quantity must match exactly.
        let sans_timing = |r: &SweepReport| r.untimed_rows().expect("well-formed rows");
        assert_eq!(sans_timing(&a), sans_timing(&b));
        assert_eq!(sans_timing(&a), sans_timing(&c));
        assert_eq!(b.case_count(), 5);
        assert_eq!(b.cases[3].name, "sweep-3");
        assert!(b.cases[3].nodes > 0 && b.cases[3].min_memory > 0);
    }

    #[test]
    fn acceptance_grid_runs_multithreaded() {
        // The acceptance scenario: ≥ 2 trees × 4 policies × 2 memory
        // factors, all policy kinds first-class (including RedTree).
        let cs = cases(2);
        let report = Sweep::new(&cs)
            .kinds(vec![
                HeuristicKind::Activation,
                HeuristicKind::MemBooking,
                HeuristicKind::MemBookingRef,
                HeuristicKind::MemBookingRedTree,
            ])
            .factors(vec![2.0, 30.0])
            .processors(vec![4])
            .run();
        assert_eq!(report.cells.len(), 2 * 4 * 2);
        // Every policy schedules at the roomy factor (30× minimum).
        for cell in report.cells.iter().filter(|c| c.factor == 30.0) {
            assert!(cell.outcome.scheduled, "{} at 30x", cell.kind);
        }
        if rayon::current_num_threads() > 1 {
            assert!(
                report.threads_used > 1,
                "sweep should use multiple threads, used {}",
                report.threads_used
            );
        }
    }

    #[test]
    fn series_and_cell_lookups() {
        let cs = cases(2);
        let report = Sweep::new(&cs).factors(vec![1.5]).processors(vec![2]).run();
        let pair = OrderPair::default_pair();
        assert_eq!(report.case_count(), 2);
        assert_eq!(
            report
                .series(HeuristicKind::MemBooking, pair, 2, 1.5)
                .count(),
            2
        );
        let cell = report
            .cell(1, HeuristicKind::MemBooking, pair, 2, 1.5)
            .expect("cell exists");
        assert_eq!(cell.tree, "sweep-1");
        // Off-grid points are None, not a wrong cell.
        assert!(report
            .cell(1, HeuristicKind::Sequential, pair, 2, 1.5)
            .is_none());
        assert!(report
            .cell(1, HeuristicKind::MemBooking, pair, 8, 1.5)
            .is_none());
        assert!(report
            .cell(5, HeuristicKind::MemBooking, pair, 2, 1.5)
            .is_none());
    }

    #[test]
    fn multi_axis_grids_keep_series_separate() {
        let cs = cases(2);
        let pairs = vec![
            OrderPair::default_pair(),
            OrderPair {
                ao: memtree_order::OrderKind::MemPostorder,
                eo: memtree_order::OrderKind::CriticalPath,
            },
        ];
        let report = Sweep::new(&cs)
            .pairs(pairs.clone())
            .processors(vec![2, 4])
            .factors(vec![2.0])
            .run();
        // Each (pair, p) series sees exactly one cell per tree.
        for &pair in &pairs {
            for &p in &[2usize, 4] {
                let cells: Vec<_> = report
                    .series(HeuristicKind::MemBooking, pair, p, 2.0)
                    .collect();
                assert_eq!(cells.len(), 2);
                assert!(cells.iter().all(|c| c.pair == pair && c.processors == p));
            }
        }
    }

    #[test]
    fn shard_axis_runs_both_backends() {
        let cs = cases(2);
        let report = Sweep::new(&cs)
            .processors(vec![4])
            .shards(vec![0, 2])
            .factors(vec![8.0])
            .run();
        assert_eq!(report.cells.len(), 2 * 2);
        // Grid order: the backend axis sits between processors and factor,
        // and the shard-count encoding maps onto it.
        assert_eq!(report.cells[0].backend, Backend::Sim);
        assert_eq!(report.cells[1].backend, Backend::Sharded(2));
        assert!(report.cells.iter().all(|c| c.outcome.scheduled));
        // Explicit-axis lookups separate the backends.
        let pair = OrderPair::default_pair();
        let unsharded = report
            .cell_at(0, HeuristicKind::MemBooking, pair, 4, Backend::Sim, 8.0)
            .unwrap();
        let sharded = report
            .cell_at(
                0,
                HeuristicKind::MemBooking,
                pair,
                4,
                Backend::Sharded(2),
                8.0,
            )
            .unwrap();
        assert_eq!(unsharded.backend, Backend::Sim);
        assert_eq!(sharded.backend, Backend::Sharded(2));
        // The implicit-axis lookup addresses the first backend.
        assert_eq!(
            report
                .cell(0, HeuristicKind::MemBooking, pair, 4, 8.0)
                .unwrap()
                .backend,
            Backend::Sim
        );
        // Sharded cells report wall-clock makespans, not virtual time.
        assert!(sharded.outcome.makespan > 0.0);
        assert_eq!(sharded.outcome.normalized, 0.0);
    }

    #[test]
    fn backend_axis_runs_every_execution_regime() {
        let cs = cases(1);
        let backends = vec![
            Backend::Sim,
            Backend::Threaded,
            Backend::Async,
            Backend::Sharded(2),
        ];
        let report = Sweep::new(&cs)
            .processors(vec![2])
            .backends(backends.clone())
            .factors(vec![8.0])
            .run();
        assert_eq!(report.cells.len(), backends.len());
        let pair = OrderPair::default_pair();
        for &b in &backends {
            let cell = report
                .cell_at(0, HeuristicKind::MemBooking, pair, 2, b, 8.0)
                .unwrap_or_else(|| panic!("missing {b} cell"));
            assert_eq!(cell.backend, b);
            assert!(cell.outcome.scheduled, "{b}");
            // Execution backends report wall-clock; only the simulator
            // normalises against the virtual-time lower bounds.
            if b == Backend::Sim {
                assert!(cell.outcome.normalized >= 1.0 - 1e-9, "{b}");
            } else {
                assert_eq!(cell.outcome.normalized, 0.0, "{b}");
            }
        }
        // The CSV backend column carries the labels.
        let rows = report.cell_rows();
        for (row, b) in rows.iter().zip(&backends) {
            assert!(row.contains(&format!(",{},", b.label())), "{row}");
        }
    }

    #[test]
    fn untimed_rows_strip_exactly_the_timing_column() {
        let cs = cases(1);
        let report = Sweep::new(&cs).processors(vec![2]).factors(vec![2.0]).run();
        let full = report.cell_rows();
        let stripped = report.untimed_rows().unwrap();
        assert_eq!(full.len(), stripped.len());
        for (f, s) in full.iter().zip(&stripped) {
            assert!(f.starts_with(s.as_str()));
            assert_eq!(
                s.split(',').count(),
                SweepReport::cell_csv_header().split(',').count() - 1
            );
        }
    }

    #[test]
    fn malformed_rows_error_loudly_instead_of_panicking() {
        // The regression for the old `rsplit_once(',').unwrap()` strip: a
        // truncated or garbled row surfaces a descriptive error.
        let err = untimed_row("").unwrap_err();
        assert!(err.contains("malformed sweep row"), "{err}");
        let err = untimed_row("no-commas-at-all").unwrap_err();
        assert!(err.contains("1 columns"), "{err}");
        let err = untimed_row("t,mb,memPO/memPO,4").unwrap_err();
        assert!(err.contains("4 columns"), "{err}");
        // A well-formed row round-trips.
        let ok = untimed_row("t,mb,memPO/memPO,4,sim,2,1,10,1.5,0.5,0.001").unwrap();
        assert_eq!(ok, "t,mb,memPO/memPO,4,sim,2,1,10,1.5,0.5");
    }

    #[test]
    #[should_panic(expected = "empty memory-factor axis")]
    fn empty_axis_is_a_construction_error() {
        let cs = cases(1);
        let _ = Sweep::new(&cs).factors(vec![]);
    }

    #[test]
    #[should_panic(expected = "empty shard-count axis")]
    fn empty_shard_axis_is_a_construction_error() {
        let cs = cases(1);
        let _ = Sweep::new(&cs).shards(vec![]);
    }

    #[test]
    #[should_panic(expected = "empty policy axis")]
    fn empty_kind_axis_is_a_construction_error() {
        let cs = cases(1);
        let _ = Sweep::new(&cs).kinds(vec![]);
    }

    #[test]
    fn empty_source_is_a_valid_empty_sweep() {
        let cs = CaseSource::new();
        let report = Sweep::new(&cs).run();
        assert_eq!(report.case_count(), 0);
        assert!(report.cells.is_empty());
        assert_eq!(report.hit_rate(), 0.0);
    }
}
