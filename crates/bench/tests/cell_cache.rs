//! Integration tests of the streaming sweep's content-addressed cell
//! cache: resumability, corruption handling, invalidation scope, and
//! index arithmetic over mixed cached/computed reports.

use memtree_bench::{CaseSource, CellCache, OrderPair, Sweep, SweepReport, TreeCase};
use memtree_sched::HeuristicKind;
use std::path::PathBuf;

/// A fresh temp cache directory per test.
fn temp_cache(tag: &str) -> CellCache {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("memtree-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CellCache::open(dir).unwrap()
}

/// A lazy source (exercises the streaming path end to end).
fn source(n: usize) -> CaseSource {
    let mut s = CaseSource::new();
    for k in 0..n {
        s.push_lazy(move || {
            TreeCase::new(
                format!("itest-{k}"),
                memtree_gen::synthetic::paper_tree(180, 500 + k as u64),
            )
        });
    }
    s
}

fn sweep<'a>(src: &'a CaseSource, cache: &CellCache) -> Sweep<'a> {
    Sweep::new(src)
        .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
        .processors(vec![2])
        .factors(vec![1.0, 2.0, 4.0])
        .window(2)
        .cache(cache.clone())
}

#[test]
fn warm_rerun_recomputes_zero_cells_and_is_byte_identical() {
    let cache = temp_cache("warm");
    let src = source(3);
    let cold = sweep(&src, &cache).run();
    assert_eq!(cold.computed, cold.cells.len());
    assert_eq!(cold.cache_hits, 0);

    // The acceptance criterion: a re-run against the same cache
    // recomputes zero completed cells and reproduces the CSV byte for
    // byte (scheduling_seconds included — it replays from the store).
    let warm = sweep(&src, &cache).run();
    assert_eq!(warm.computed, 0, "warm run recomputed cells");
    assert_eq!(warm.cache_hits, warm.cells.len());
    assert!((warm.hit_rate() - 1.0).abs() < 1e-12);
    assert_eq!(cold.cell_rows(), warm.cell_rows());
    assert!(warm.cells.iter().all(|c| c.from_cache));
}

#[test]
fn interrupted_sweep_resumes_without_recomputing_completed_cells() {
    let cache = temp_cache("resume");
    let src = source(3);
    // "Interrupt" after a third of the grid: run only one factor first.
    let partial = Sweep::new(&src)
        .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
        .processors(vec![2])
        .factors(vec![1.0])
        .window(2)
        .cache(cache.clone())
        .run();
    assert_eq!(partial.computed, partial.cells.len());

    // The full grid resumes: the completed third hits, the rest computes.
    let full = sweep(&src, &cache).run();
    assert_eq!(full.cache_hits, partial.cells.len());
    assert_eq!(full.computed, full.cells.len() - partial.cells.len());

    // And the partial run's outcomes are embedded verbatim.
    let pair = OrderPair::default_pair();
    for ci in 0..3 {
        let from_partial = partial
            .cell(ci, HeuristicKind::MemBooking, pair, 2, 1.0)
            .unwrap();
        let from_full = full
            .cell(ci, HeuristicKind::MemBooking, pair, 2, 1.0)
            .unwrap();
        assert!(from_full.from_cache);
        assert_eq!(
            from_partial.outcome.makespan.to_bits(),
            from_full.outcome.makespan.to_bits()
        );
    }
}

#[test]
fn corrupt_and_truncated_entries_are_recomputed_not_trusted() {
    let cache = temp_cache("corrupt");
    let src = source(2);
    let cold = sweep(&src, &cache).run();
    let mut paths = cache.entry_paths().unwrap();
    assert_eq!(paths.len(), cold.cells.len());
    paths.sort();

    // Corrupt one entry, truncate another.
    let corrupt = std::fs::read(&paths[0]).unwrap();
    let mut bytes = corrupt.clone();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x5a;
    std::fs::write(&paths[0], &bytes).unwrap();
    let full = std::fs::read(&paths[1]).unwrap();
    std::fs::write(&paths[1], &full[..full.len() / 2]).unwrap();

    let warm = sweep(&src, &cache).run();
    assert_eq!(warm.computed, 2, "exactly the two damaged cells recompute");
    assert_eq!(warm.cache_hits, warm.cells.len() - 2);
    // Identical output regardless: damaged entries were recomputed from
    // scratch, not parsed optimistically. (Timing of the two recomputed
    // cells is wall-clock, so compare everything but the last column.)
    let sans_timing = |r: &SweepReport| -> Vec<String> {
        r.cell_rows()
            .into_iter()
            .map(|row| row.rsplit_once(',').unwrap().0.to_string())
            .collect()
    };
    assert_eq!(sans_timing(&cold), sans_timing(&warm));

    // The recomputation repaired the store: a third run is all hits.
    let repaired = sweep(&src, &cache).run();
    assert_eq!(repaired.computed, 0);
    assert_eq!(cold.cell_rows().len(), repaired.cell_rows().len());
}

#[test]
fn policy_change_invalidates_exactly_its_own_cells() {
    let cache = temp_cache("invalidate");
    let src = source(2);
    let base = Sweep::new(&src)
        .kinds(vec![HeuristicKind::MemBooking])
        .processors(vec![2])
        .factors(vec![1.0, 2.0])
        .cache(cache.clone())
        .run();
    assert_eq!(base.computed, 4);

    // Adding a policy axis entry computes only the new policy's cells.
    let widened = Sweep::new(&src)
        .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
        .processors(vec![2])
        .factors(vec![1.0, 2.0])
        .cache(cache.clone())
        .run();
    assert_eq!(widened.cache_hits, 4, "MemBooking cells survive");
    assert_eq!(widened.computed, 4, "only Activation cells run");

    // Changing the order pair (a PolicySpec knob) misses for every cell
    // of the changed spec — and leaves the old entries intact.
    let before = cache.entry_count().unwrap();
    let reordered = Sweep::new(&src)
        .kinds(vec![HeuristicKind::MemBooking])
        .pairs(vec![OrderPair {
            ao: memtree_order::OrderKind::MemPostorder,
            eo: memtree_order::OrderKind::CriticalPath,
        }])
        .processors(vec![2])
        .factors(vec![1.0, 2.0])
        .cache(cache.clone())
        .run();
    assert_eq!(reordered.cache_hits, 0);
    assert_eq!(reordered.computed, 4);
    assert_eq!(cache.entry_count().unwrap(), before + 4);

    // The original spec still hits: nothing was invalidated collaterally.
    let again = Sweep::new(&src)
        .kinds(vec![HeuristicKind::MemBooking, HeuristicKind::Activation])
        .processors(vec![2])
        .factors(vec![1.0, 2.0])
        .cache(cache.clone())
        .run();
    assert_eq!(again.computed, 0);
}

#[test]
fn fresh_recomputes_but_refreshes_the_store() {
    let cache = temp_cache("fresh");
    let src = source(2);
    let cold = sweep(&src, &cache).run();
    let fresh = sweep(&src, &cache).fresh(true).run();
    assert_eq!(fresh.cache_hits, 0, "--fresh must not read the cache");
    assert_eq!(fresh.computed, cold.cells.len());
    // ... but it rewrites entries, so the next plain run is warm.
    let warm = sweep(&src, &cache).run();
    assert_eq!(warm.computed, 0);
}

#[test]
fn report_index_arithmetic_is_correct_with_cached_cells() {
    let cache = temp_cache("index");
    let src = source(3);
    sweep(&src, &cache).run();
    let warm = sweep(&src, &cache).run();
    assert_eq!(warm.case_count(), 3);
    assert_eq!(warm.cases.len(), 3);
    let pair = OrderPair::default_pair();
    // Every grid point resolves to the cell with its own coordinates.
    for ci in 0..3 {
        for kind in [HeuristicKind::MemBooking, HeuristicKind::Activation] {
            for factor in [1.0, 2.0, 4.0] {
                let cell = warm.cell(ci, kind, pair, 2, factor).unwrap();
                assert_eq!(cell.case_index, ci);
                assert_eq!(cell.kind, kind);
                assert_eq!(cell.factor, factor);
                assert_eq!(cell.tree, format!("itest-{ci}"));
                assert!(cell.from_cache);
            }
        }
    }
    // Series across trees stay separate and complete.
    for factor in [1.0, 2.0, 4.0] {
        assert_eq!(
            warm.series(HeuristicKind::Activation, pair, 2, factor)
                .count(),
            3
        );
    }
    // Off-grid points stay None.
    assert!(warm
        .cell(3, HeuristicKind::MemBooking, pair, 2, 1.0)
        .is_none());
    assert!(warm
        .cell(0, HeuristicKind::MemBooking, pair, 4, 1.0)
        .is_none());
}
