//! The simple **Activation** policy of Agullo et al. (Algorithm 1).
//!
//! Nodes are *activated* — their full execution footprint `n_i + f_i` is
//! booked — in the activation order `AO`, as long as the bookings fit in
//! `M`. A node may execute once it is activated and all its children have
//! completed; among those, the execution order `EO` picks first. When a
//! node completes, its execution data and inputs are released
//! (`n_j + Σ f_children`); its output booking conceptually migrates to the
//! parent's input.
//!
//! The policy is safe whenever `M` is at least the sequential peak of `AO`
//! (checked at construction) but books very conservatively: in a chain
//! `T1 → T2 → T3` it reserves all three footprints although no two of the
//! tasks can ever overlap — Section 3.1's motivating criticism.

use crate::error::SchedError;
use crate::readyset::RankQueue;
use memtree_order::Order;
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskTree};

/// Algorithm 1.
pub struct Activation<'a> {
    tree: &'a TaskTree,
    ao: &'a Order,
    eo: &'a Order,
    memory: u64,
    booked: u64,
    /// Next AO position to try to activate.
    next_ao: usize,
    activated: Vec<bool>,
    /// Children not yet finished, per node.
    ch_not_fin: Vec<u32>,
    /// Activated nodes whose children have all finished, as EO ranks
    /// (popped ascending — identical order to the old rank-keyed heap;
    /// see [`crate::readyset`]).
    ready: RankQueue,
}

impl<'a> Activation<'a> {
    /// Builds the policy, verifying the feasibility condition
    /// `M ≥ peak(AO)`.
    pub fn try_new(
        tree: &'a TaskTree,
        ao: &'a Order,
        eo: &'a Order,
        memory: u64,
    ) -> Result<Self, SchedError> {
        check_orders(tree, ao, eo)?;
        let required = ao.sequential_peak(tree);
        if required > memory {
            return Err(SchedError::InfeasibleMemory {
                required,
                available: memory,
            });
        }
        Ok(Activation {
            tree,
            ao,
            eo,
            memory,
            booked: 0,
            next_ao: 0,
            activated: vec![false; tree.len()],
            ch_not_fin: tree.nodes().map(|i| tree.degree(i) as u32).collect(),
            ready: RankQueue::with_universe(tree.len()),
        })
    }

    fn activate_while_possible(&mut self) {
        while self.next_ao < self.ao.len() {
            let i = self.ao.at(self.next_ao);
            let footprint = self.tree.exec(i) + self.tree.output(i);
            if self.booked + footprint > self.memory {
                break; // wait for more memory
            }
            self.booked += footprint;
            self.activated[i.index()] = true;
            self.next_ao += 1;
            if self.ch_not_fin[i.index()] == 0 {
                self.ready.insert(self.eo.rank(i));
            }
        }
    }
}

impl Scheduler for Activation<'_> {
    fn name(&self) -> &str {
        "Activation"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        // Free the memory booked by each finished node: execution data plus
        // the inputs it consumed. Its own output stays booked (the parent's
        // input from now on).
        for &j in finished {
            self.booked -= self.tree.exec(j) + self.tree.input_size(j);
            if let Some(p) = self.tree.parent(j) {
                self.ch_not_fin[p.index()] -= 1;
                if self.ch_not_fin[p.index()] == 0 && self.activated[p.index()] {
                    self.ready.insert(self.eo.rank(p));
                }
            }
        }

        self.activate_while_possible();

        while to_start.len() < idle {
            let Some(rank) = self.ready.pop_min() else {
                break;
            };
            to_start.push(self.eo.at(rank as usize));
        }
    }

    fn booked(&self) -> u64 {
        self.booked
    }
}

/// Shared order sanity check.
pub(crate) fn check_orders(tree: &TaskTree, ao: &Order, eo: &Order) -> Result<(), SchedError> {
    for o in [ao, eo] {
        if o.len() != tree.len() {
            return Err(SchedError::OrderMismatch {
                tree_len: tree.len(),
                order_len: o.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_order::{mem_postorder, OrderKind};
    use memtree_sim::{simulate, SimConfig};
    use memtree_tree::TaskSpec;

    fn orders(tree: &TaskTree) -> Order {
        mem_postorder(tree)
    }

    #[test]
    fn infeasible_memory_rejected() {
        let t = memtree_gen::shapes::chain(3, TaskSpec::new(1, 10, 1.0));
        let o = orders(&t);
        let need = o.sequential_peak(&t);
        assert!(Activation::try_new(&t, &o, &o, need - 1).is_err());
        assert!(Activation::try_new(&t, &o, &o, need).is_ok());
    }

    #[test]
    fn completes_at_exactly_minimum_memory() {
        for seed in 0..10 {
            let t = memtree_gen::synthetic::paper_tree(120, seed);
            let o = orders(&t);
            let m = o.sequential_peak(&t);
            let s = Activation::try_new(&t, &o, &o, m).unwrap();
            let trace = simulate(&t, SimConfig::new(4, m), s).unwrap();
            memtree_sim::validate::validate_trace(&t, &trace).unwrap();
        }
    }

    #[test]
    fn chain_books_everything_it_can() {
        // Chain of 3, huge memory: all three footprints booked at t = 0,
        // demonstrating the conservatism criticised in Section 3.1.
        let t = memtree_gen::shapes::chain(3, TaskSpec::new(5, 10, 1.0));
        let o = orders(&t);
        let mut s = Activation::try_new(&t, &o, &o, 1_000_000).unwrap();
        let mut start = Vec::new();
        s.on_event(&[], 1, &mut start);
        assert_eq!(s.booked(), 3 * 15, "all three activations booked");
    }

    #[test]
    fn single_processor_matches_sequential_time() {
        let t = memtree_gen::synthetic::paper_tree(60, 3);
        let o = orders(&t);
        let m = o.sequential_peak(&t) * 2;
        let s = Activation::try_new(&t, &o, &o, m).unwrap();
        let trace = simulate(&t, SimConfig::new(1, m), s).unwrap();
        assert!((trace.makespan - t.total_time()).abs() < 1e-6);
    }

    #[test]
    fn parallelism_reduces_makespan_with_ample_memory() {
        let t = memtree_gen::shapes::spindle(4, 10, TaskSpec::new(0, 1, 1.0));
        let o = orders(&t);
        let m = 10_000;
        let t1 = simulate(
            &t,
            SimConfig::new(1, m),
            Activation::try_new(&t, &o, &o, m).unwrap(),
        )
        .unwrap()
        .makespan;
        let t4 = simulate(
            &t,
            SimConfig::new(4, m),
            Activation::try_new(&t, &o, &o, m).unwrap(),
        )
        .unwrap()
        .makespan;
        assert!(t4 < t1 / 2.0, "spindle should parallelise: {t4} vs {t1}");
    }

    #[test]
    fn order_mismatch_detected() {
        let t1 = memtree_gen::shapes::chain(3, TaskSpec::default());
        let t2 = memtree_gen::shapes::chain(5, TaskSpec::default());
        let o2 = memtree_order::Order::new(
            &t2,
            memtree_tree::traverse::postorder(&t2),
            OrderKind::NaturalPostorder,
        )
        .unwrap();
        assert!(matches!(
            Activation::try_new(&t1, &o2, &o2, 1000),
            Err(SchedError::OrderMismatch { .. })
        ));
    }
}
