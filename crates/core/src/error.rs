//! Scheduler construction errors.

use std::fmt;

/// Errors raised when a scheduling policy cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The memory bound is below what the policy provably needs — the
    /// sequential peak of its activation order. Running anyway could
    /// deadlock, so construction is refused (this is the paper's
    /// feasibility condition in Theorem 1).
    InfeasibleMemory {
        /// Peak memory of the sequential activation order.
        required: u64,
        /// Memory bound requested.
        available: u64,
    },
    /// The orders passed do not belong to the tree (wrong length).
    OrderMismatch {
        /// Nodes in the tree.
        tree_len: usize,
        /// Nodes in the offending order.
        order_len: usize,
    },
    /// The policy-spec combination is invalid (e.g. moldable allotment
    /// caps on a policy other than MemBooking, or a transformed tree
    /// supplied for a non-transforming kind).
    InvalidSpec(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InfeasibleMemory {
                required,
                available,
            } => write!(
                f,
                "memory bound {available} below the sequential activation peak {required}"
            ),
            SchedError::OrderMismatch {
                tree_len,
                order_len,
            } => {
                write!(
                    f,
                    "order covers {order_len} nodes but the tree has {tree_len}"
                )
            }
            SchedError::InvalidSpec(msg) => write!(f, "invalid policy spec: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = SchedError::InfeasibleMemory {
            required: 100,
            available: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
    }
}
