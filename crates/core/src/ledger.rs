//! **`BudgetLedger`** — hierarchical memory-budget accounting shared by
//! every coordinator that splits one bound across concurrent consumers
//! (DESIGN.md §6.7/§6.9).
//!
//! Both the sharded platform's coordinator and the multi-tenant service
//! sit one level above the per-run driver ledgers: they hand each
//! consumer (a shard worker, an admitted session) a slice of the global
//! bound `M`, and the consumer's own driver enforces `actual ≤ booked ≤
//! slice` inside the run. The ledger is the parent level of that
//! hierarchy: reservations must never sum past the capacity, and every
//! reservation must come back exactly once.
//!
//! The ledger is deliberately **loud**: a reservation past the capacity
//! and a release of more than is reserved are both hard
//! [`LedgerError`]s, never saturating arithmetic or a `debug_assert!`.
//! Silent accounting drift at this level is exactly how a coordinator
//! ends up overcommitting the machine while every individual run still
//! looks feasible — the PR-4 coordinator's `debug_assert` version of
//! this type is the bug class this promotion retires.

use std::fmt;

/// A budget-accounting violation — always a coordinator bug, never a
/// recoverable scheduling outcome (feasibility refusals are
/// [`SchedError::InfeasibleMemory`](crate::SchedError::InfeasibleMemory);
/// this type is for books that stopped balancing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// A reservation would push the reserved total past the capacity.
    Overcommit {
        /// The amount whose reservation was attempted.
        requested: u64,
        /// Already reserved before the attempt.
        reserved: u64,
        /// The ledger's capacity.
        capacity: u64,
    },
    /// A release of more than is currently reserved — a double release or
    /// a release of a never-reserved amount.
    OverRelease {
        /// The amount whose release was attempted.
        requested: u64,
        /// Currently reserved.
        reserved: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Overcommit {
                requested,
                reserved,
                capacity,
            } => write!(
                f,
                "budget overcommit: reserving {requested} on top of {reserved} \
                 exceeds the capacity {capacity}"
            ),
            LedgerError::OverRelease {
                requested,
                reserved,
            } => write!(
                f,
                "budget over-release: releasing {requested} with only {reserved} reserved"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// One level of the budget hierarchy: a capacity, the amount currently
/// reserved against it, and the reservation high-water mark.
///
/// Purely an accounting device — the per-run driver ledgers do the real
/// enforcement inside each consumer — but it turns a budget-release bug
/// into a loud [`LedgerError`] instead of silent overcommit, and its
/// [`peak_reserved`](BudgetLedger::peak_reserved) is the coordinator-level
/// booking envelope reports cite (`Σ` granted budgets never exceeded it,
/// and it never exceeded the capacity).
#[derive(Clone, Debug)]
pub struct BudgetLedger {
    capacity: u64,
    reserved: u64,
    peak_reserved: u64,
}

impl BudgetLedger {
    /// An empty ledger over `capacity` units.
    pub fn new(capacity: u64) -> Self {
        BudgetLedger {
            capacity,
            reserved: 0,
            peak_reserved: 0,
        }
    }

    /// The capacity reservations may never sum past.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently reserved.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Capacity not currently reserved.
    pub fn available(&self) -> u64 {
        self.capacity - self.reserved
    }

    /// High-water mark of [`reserved`](BudgetLedger::reserved) over the
    /// ledger's lifetime — provably ≤ the capacity.
    pub fn peak_reserved(&self) -> u64 {
        self.peak_reserved
    }

    /// Reserves `amount` units.
    ///
    /// # Errors
    /// [`LedgerError::Overcommit`] when the reservation would exceed the
    /// capacity; the ledger is unchanged.
    pub fn reserve(&mut self, amount: u64) -> Result<(), LedgerError> {
        let next = self
            .reserved
            .checked_add(amount)
            .filter(|&n| n <= self.capacity);
        match next {
            Some(next) => {
                self.reserved = next;
                self.peak_reserved = self.peak_reserved.max(next);
                Ok(())
            }
            None => Err(LedgerError::Overcommit {
                requested: amount,
                reserved: self.reserved,
                capacity: self.capacity,
            }),
        }
    }

    /// Releases `amount` previously reserved units.
    ///
    /// # Errors
    /// [`LedgerError::OverRelease`] when `amount` exceeds the reserved
    /// total — a double release or a phantom release; the ledger is
    /// unchanged. This is a hard error precisely so accounting drift
    /// cannot hide: the PR-4 coordinator's `saturating_sub` would have
    /// absorbed the bug and quietly freed budget that was never granted.
    pub fn release(&mut self, amount: u64) -> Result<(), LedgerError> {
        if amount > self.reserved {
            return Err(LedgerError::OverRelease {
                requested: amount,
                reserved: self.reserved,
            });
        }
        self.reserved -= amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_round_trips() {
        let mut ledger = BudgetLedger::new(100);
        ledger.reserve(60).unwrap();
        ledger.reserve(40).unwrap();
        assert_eq!(ledger.reserved(), 100);
        assert_eq!(ledger.available(), 0);
        ledger.release(40).unwrap();
        ledger.release(60).unwrap();
        assert_eq!(ledger.reserved(), 0);
        assert_eq!(ledger.available(), 100);
        assert_eq!(ledger.peak_reserved(), 100);
    }

    #[test]
    fn overcommit_is_a_hard_error_and_leaves_the_ledger_unchanged() {
        let mut ledger = BudgetLedger::new(100);
        ledger.reserve(70).unwrap();
        let err = ledger.reserve(31).unwrap_err();
        assert_eq!(
            err,
            LedgerError::Overcommit {
                requested: 31,
                reserved: 70,
                capacity: 100
            }
        );
        assert_eq!(ledger.reserved(), 70, "failed reserve must not book");
        // Exactly filling the capacity is fine.
        ledger.reserve(30).unwrap();
        assert_eq!(ledger.available(), 0);
    }

    #[test]
    fn overcommit_catches_u64_overflow() {
        let mut ledger = BudgetLedger::new(u64::MAX);
        ledger.reserve(u64::MAX - 1).unwrap();
        let err = ledger.reserve(u64::MAX).unwrap_err();
        assert!(matches!(err, LedgerError::Overcommit { .. }));
        assert_eq!(ledger.reserved(), u64::MAX - 1);
    }

    #[test]
    fn over_release_is_a_hard_error_not_saturation() {
        let mut ledger = BudgetLedger::new(100);
        ledger.reserve(50).unwrap();
        ledger.release(50).unwrap();
        // The double release — the drift the PR-4 debug_assert missed in
        // release builds — is now a first-class error.
        let err = ledger.release(50).unwrap_err();
        assert_eq!(
            err,
            LedgerError::OverRelease {
                requested: 50,
                reserved: 0
            }
        );
        assert_eq!(ledger.reserved(), 0, "failed release must not unbook");
    }

    #[test]
    fn partial_over_release_reports_the_reserved_total() {
        let mut ledger = BudgetLedger::new(100);
        ledger.reserve(10).unwrap();
        let err = ledger.release(11).unwrap_err();
        assert_eq!(
            err,
            LedgerError::OverRelease {
                requested: 11,
                reserved: 10
            }
        );
        ledger.release(10).unwrap();
    }

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let mut ledger = BudgetLedger::new(100);
        ledger.reserve(30).unwrap();
        ledger.reserve(40).unwrap();
        ledger.release(60).unwrap();
        ledger.reserve(20).unwrap();
        assert_eq!(ledger.peak_reserved(), 70);
        assert!(ledger.peak_reserved() <= ledger.capacity());
    }

    #[test]
    fn errors_display_their_numbers() {
        let e = LedgerError::Overcommit {
            requested: 3,
            reserved: 2,
            capacity: 4,
        };
        for needle in ["3", "2", "4"] {
            assert!(e.to_string().contains(needle));
        }
        let e = LedgerError::OverRelease {
            requested: 9,
            reserved: 1,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('1'));
    }
}
