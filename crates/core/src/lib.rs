#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Memory-aware task-tree schedulers.
//!
//! This crate implements the paper's contribution and its two competitors,
//! all as [`memtree_sim::Scheduler`] policies:
//!
//! * [`membooking`] — **MemBooking** (Section 4), the paper's algorithm:
//!   activation books only the memory a subtree cannot recycle later, and
//!   completions re-dispatch freed memory to ancestors As Late As Possible.
//!   Ships both the literal reference implementation (Algorithms 2–4) and
//!   the optimised `O(n(H + log n))` implementation (Appendix B,
//!   Algorithms 5–6).
//! * [`activation`] — the simple **Activation** policy of Agullo et al.
//!   (Section 3.1, Algorithm 1): books `n_i + f_i` per activated node.
//! * [`redtree`] — **MemBookingRedTree** (Section 3.2): transforms the
//!   tree into a reduction tree and books statically-precomputed subtree
//!   requirements (a reconstruction; see DESIGN.md §4.3).
//! * [`seq`] — the one-processor baseline executing the activation order.
//! * [`lower_bound`] — the classical makespan lower bounds plus the
//!   paper's new memory-aware bound (Section 6, Theorem 3).
//!
//! All policies guarantee completion when the memory bound admits their
//! sequential activation order; [`SchedError::InfeasibleMemory`] is
//! returned up front otherwise.
//!
//! Construction goes through [`spec::PolicySpec`] — a declarative value
//! (kind + order pair + memory bound + optional moldable caps) whose
//! [`spec::PolicySpec::instantiate`] owns any tree transformation, so
//! every kind, including the reduction-tree baseline, builds through one
//! entry point and runs on any `Platform` (see DESIGN.md §6). Sharded
//! platforms split the bound into independent per-shard booking ledgers
//! through [`shard::ShardBudget`] (DESIGN.md §6.7).

pub mod activation;
pub mod error;
pub mod ledger;
pub mod lower_bound;
pub mod membooking;
pub mod moldable;
pub mod readyset;
pub mod redtree;
pub mod rescheduler;
pub mod seq;
pub mod shard;
pub mod spec;

pub use activation::Activation;
pub use error::SchedError;
pub use ledger::{BudgetLedger, LedgerError};
pub use lower_bound::LowerBounds;
pub use membooking::{MemBooking, MemBookingRef};
pub use moldable::{AllotmentCaps, MoldableMemBooking};
pub use readyset::RankQueue;
pub use redtree::{to_reduction_tree, RedTreeBooking, ReductionTransform};
pub use rescheduler::{ProportionalRescheduler, ReschedulePolicy};
pub use seq::Sequential;
pub use shard::{min_feasible_memory, ShardBudget};
pub use spec::{spec_from_str, spec_to_string, PolicyInstance, PolicySpec};

/// Which heuristic to instantiate — the legend of Figures 2/9/10/15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// Agullo et al.'s simple activation policy.
    Activation,
    /// The paper's MemBooking (optimised implementation).
    MemBooking,
    /// The reference (unoptimised) MemBooking — same schedule, slower.
    MemBookingRef,
    /// The reduction-tree booking baseline. [`PolicySpec::instantiate`]
    /// applies the reduction-tree transform, so this kind constructs like
    /// any other; the policy schedules the transformed tree
    /// ([`PolicyInstance::exec_tree`]).
    MemBookingRedTree,
    /// Sequential execution of the activation order.
    Sequential,
}

impl HeuristicKind {
    /// All five policies, in legend order.
    pub fn all() -> [HeuristicKind; 5] {
        [
            HeuristicKind::Activation,
            HeuristicKind::MemBooking,
            HeuristicKind::MemBookingRef,
            HeuristicKind::MemBookingRedTree,
            HeuristicKind::Sequential,
        ]
    }

    /// Label used in CSV output, matching the paper's plot legends.
    pub fn label(self) -> &'static str {
        match self {
            HeuristicKind::Activation => "Activation",
            HeuristicKind::MemBooking => "MemBooking",
            HeuristicKind::MemBookingRef => "MemBookingRef",
            HeuristicKind::MemBookingRedTree => "MemBookingRedTree",
            HeuristicKind::Sequential => "Sequential",
        }
    }

    /// The inverse of [`HeuristicKind::label`] — `None` for an unknown
    /// label. Wire formats (the serialized `PolicySpec` a shard-worker
    /// process receives) round-trip kinds through their labels.
    pub fn from_label(label: &str) -> Option<HeuristicKind> {
        HeuristicKind::all()
            .into_iter()
            .find(|k| k.label() == label)
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
