//! Makespan lower bounds, including the paper's memory-aware bound.
//!
//! Section 6, Theorem 3: any schedule respecting the memory bound `M`
//! satisfies `Cmax ≥ (1/M) Σ_i MemNeeded(i)·t_i` — each task occupies
//! `MemNeeded(i)` memory for `t_i` time, and the schedule's total
//! memory-time product cannot exceed `Cmax·M`. Combined with the classical
//! bounds (average workload and critical path), this is what all
//! "normalized makespan" plots divide by.

use memtree_tree::{TaskTree, TreeStats};

/// The three makespan lower bounds for a tree on `p` processors with
/// memory `M`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LowerBounds {
    /// Average workload: `Σ t_i / p`.
    pub work: f64,
    /// Critical path: the heaviest leaf-to-root path.
    pub critical_path: f64,
    /// Theorem 3: `Σ MemNeeded(i)·t_i / M`.
    pub memory_aware: f64,
}

impl LowerBounds {
    /// Computes all three bounds.
    pub fn compute(tree: &TaskTree, processors: usize, memory: u64) -> Self {
        let stats = TreeStats::compute(tree);
        Self::compute_with_stats(tree, &stats, processors, memory)
    }

    /// As [`LowerBounds::compute`] with precomputed statistics.
    pub fn compute_with_stats(
        tree: &TaskTree,
        stats: &TreeStats,
        processors: usize,
        memory: u64,
    ) -> Self {
        assert!(processors > 0, "need at least one processor");
        assert!(memory > 0, "need a positive memory bound");
        let work = tree.total_time() / processors as f64;
        let critical_path = stats.critical_path(tree);
        let memory_aware = tree
            .nodes()
            .map(|i| tree.mem_needed(i) as f64 * tree.time(i))
            .sum::<f64>()
            / memory as f64;
        LowerBounds {
            work,
            critical_path,
            memory_aware,
        }
    }

    /// The classical bound: `max(work, critical_path)`.
    pub fn classical(&self) -> f64 {
        self.work.max(self.critical_path)
    }

    /// The combined bound: `max(classical, memory_aware)`.
    pub fn best(&self) -> f64 {
        self.classical().max(self.memory_aware)
    }

    /// Whether the new memory-aware bound strictly improves on the
    /// classical one (the statistic reported in Section 6: 22 % of
    /// assembly-tree cases at p = 8, 33 % of synthetic ones).
    pub fn memory_bound_improves(&self) -> bool {
        self.memory_aware > self.classical()
    }

    /// Relative improvement of the combined bound over the classical one
    /// (0 when the memory bound does not help).
    pub fn improvement_ratio(&self) -> f64 {
        if !self.memory_bound_improves() {
            return 0.0;
        }
        self.memory_aware / self.classical() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_sim::{simulate, SimConfig};
    use memtree_tree::TaskSpec;

    #[test]
    fn bounds_on_a_fork() {
        // Root (t=1, needs 2+3+1=6), leaves t=2 (needs 2), t=3 (needs 3).
        let t = memtree_tree::TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 2, 2.0),
                TaskSpec::new(0, 3, 3.0),
            ],
        )
        .unwrap();
        let lb = LowerBounds::compute(&t, 2, 6);
        assert_eq!(lb.work, 3.0);
        assert_eq!(lb.critical_path, 4.0);
        // Σ needed*t = 6*1 + 2*2 + 3*3 = 19; /6 ≈ 3.1667.
        assert!((lb.memory_aware - 19.0 / 6.0).abs() < 1e-12);
        assert_eq!(lb.classical(), 4.0);
        assert_eq!(lb.best(), 4.0);
        assert!(!lb.memory_bound_improves());
        // Tighten memory: M = 4 -> memory bound = 4.75 > 4.
        let lb = LowerBounds::compute(&t, 2, 4);
        assert!(lb.memory_bound_improves());
        assert!((lb.improvement_ratio() - (4.75 / 4.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_independent_of_processors() {
        let t = memtree_gen::synthetic::paper_tree(100, 5);
        let a = LowerBounds::compute(&t, 2, 1000).memory_aware;
        let b = LowerBounds::compute(&t, 32, 1000).memory_aware;
        assert_eq!(a, b);
    }

    #[test]
    fn every_simulated_schedule_respects_the_bounds() {
        // Theorem 3 is about *any* correct schedule: check against real
        // MemBooking runs across memory pressures.
        for seed in 0..8 {
            let t = memtree_gen::synthetic::paper_tree(150, 100 + seed);
            let ao = memtree_order::mem_postorder(&t);
            let min_m = ao.sequential_peak(&t);
            for factor in [1.0f64, 1.5, 4.0] {
                let m = (min_m as f64 * factor) as u64;
                let s = crate::MemBooking::try_new(&t, &ao, &ao, m).unwrap();
                let trace = simulate(&t, SimConfig::new(4, m), s).unwrap();
                let lb = LowerBounds::compute(&t, 4, m);
                assert!(
                    trace.makespan >= lb.best() - 1e-6,
                    "seed {seed} factor {factor}: makespan {} below bound {}",
                    trace.makespan,
                    lb.best()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let t = memtree_gen::shapes::chain(2, TaskSpec::default());
        LowerBounds::compute(&t, 0, 10);
    }
}
