//! **MemBooking** — the paper's dynamic memory-aware scheduler (Section 4).
//!
//! Activation of a node `i` books only `MissingMem(i) = max(0,
//! MemNeeded(i) − BookedBySubtree(i))` — what the nodes below `i` cannot
//! supply later. When a node `j` completes, the memory it held is
//! re-dispatched upward **As Late As Possible**: an ancestor `i` receives
//! `C = min(B, max(0, MemNeeded(i) − (BookedBySubtree(i) − B)))` — only
//! what cannot be produced by descendants of `i` that will finish later —
//! and the remainder keeps flowing up (Algorithm 3 / lines 13–17 of
//! Algorithm 6).
//!
//! Theorem 1: if the tree can be executed sequentially within `M` following
//! the activation order `AO`, MemBooking processes the whole tree within
//! `M` on any number of processors. Construction therefore checks
//! `M ≥ peak(AO)` and refuses otherwise.
//!
//! Two interchangeable engines:
//! * [`MemBookingRef`] — literal transcription of Algorithms 2–4
//!   (sets-and-scans, `O(n²·H)` worst case), the executable specification;
//! * [`MemBooking`] — the optimised Appendix-B version (Algorithms 5–6)
//!   with heaps for `CAND`/`ACTf`, counter arrays and lazily materialised
//!   `BookedBySubtree`, running in `O(n(H + log n))` (Theorem 2).
//!
//! They produce bit-identical schedules; a property test in
//! `tests/equivalence.rs` enforces it.
//!
//! **Erratum note.** Algorithm 3 (line 5) of the paper also adds `f_j` to
//! `BookedBySubtree[parent(j)]`, which double-counts `f_j` against the
//! Lemma 3(3) invariant; the Appendix-B version (Algorithm 6, line 11)
//! updates only `Booked`/`MBooked`. Both implementations here follow
//! Appendix B, and the invariant is asserted in debug builds.

mod optimized;
mod reference;

pub use optimized::MemBooking;
pub use reference::MemBookingRef;

pub(crate) const BBS_UNSET: u64 = u64::MAX;
