//! The optimised MemBooking engine (Appendix B, Algorithms 5–6).

use super::BBS_UNSET;
use crate::activation::check_orders;
use crate::error::SchedError;
use crate::readyset::RankQueue;
use memtree_order::Order;
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskTree};

/// MemBooking with the Appendix-B data structures:
///
/// * `CAND` — rank queue keyed by AO rank (candidates for activation);
/// * `ACTf` — rank queue keyed by EO rank (activated nodes whose children
///   all finished, i.e. the runnable pool);
/// * `ChNotAct` / `ChNotFin` — per-node counters of children not yet
///   activated / finished;
/// * `Booked` / `BookedBySubtree` — the booking ledgers, with
///   `BookedBySubtree` materialised lazily (the paper's `-1` sentinel).
///
/// The Appendix prescribes binary heaps for `CAND`/`ACTf`; since both are
/// keyed by ranks of a dense order, a [`RankQueue`] (hierarchical bitset,
/// O(1) insert / amortised-O(1) pop, zero steady-state allocations) pops
/// in the identical order — pinned by the determinism regression suite.
pub struct MemBooking<'a> {
    tree: &'a TaskTree,
    ao: &'a Order,
    eo: &'a Order,
    memory: u64,
    mem_needed: Vec<u64>,
    booked: Vec<u64>,
    bbs: Vec<u64>,
    ch_not_act: Vec<u32>,
    ch_not_fin: Vec<u32>,
    activated: Vec<bool>,
    mbooked: u64,
    cand: RankQueue,
    actf: RankQueue,
}

impl<'a> MemBooking<'a> {
    /// Builds the scheduler, checking the Theorem-1 feasibility condition
    /// `M ≥ peak(AO)`.
    pub fn try_new(
        tree: &'a TaskTree,
        ao: &'a Order,
        eo: &'a Order,
        memory: u64,
    ) -> Result<Self, SchedError> {
        check_orders(tree, ao, eo)?;
        let required = ao.sequential_peak(tree);
        if required > memory {
            return Err(SchedError::InfeasibleMemory {
                required,
                available: memory,
            });
        }
        let n = tree.len();
        let mut cand = RankQueue::with_universe(n);
        for l in tree.leaves() {
            cand.insert(ao.rank(l));
        }
        Ok(MemBooking {
            tree,
            ao,
            eo,
            memory,
            mem_needed: memtree_tree::memory::mem_needed_slice(tree),
            booked: vec![0; n],
            bbs: vec![BBS_UNSET; n],
            ch_not_act: tree.nodes().map(|i| tree.degree(i) as u32).collect(),
            ch_not_fin: tree.nodes().map(|i| tree.degree(i) as u32).collect(),
            activated: vec![false; n],
            mbooked: 0,
            cand,
            actf: RankQueue::with_universe(n),
        })
    }

    /// Algorithm 6, lines 4–17: release the memory of a finished node and
    /// dispatch it to ancestors As Late As Possible.
    fn dispatch_memory(&mut self, j: NodeId) {
        let jx = j.index();
        let mut b = self.booked[jx];
        debug_assert_eq!(
            b, self.mem_needed[jx],
            "Lemma 5: a running node holds exactly MemNeeded"
        );
        self.booked[jx] = 0;
        self.mbooked -= b;
        self.bbs[jx] = 0;

        let Some(parent) = self.tree.parent(j) else {
            // Root completion: its output outlives the schedule; keep it
            // booked so `actual ≤ booked` holds at the final event.
            let f = self.tree.output(j);
            self.booked[jx] = f;
            self.mbooked += f;
            return;
        };

        // The output f_j migrates into the parent's booking.
        let px = parent.index();
        self.ch_not_fin[px] -= 1;
        if self.ch_not_fin[px] == 0 && self.activated[px] {
            self.actf.insert(self.eo.rank(parent));
        }
        let fj = self.tree.output(j);
        self.booked[px] += fj;
        self.mbooked += fj;
        b -= fj;

        // Walk up while the ancestor's BookedBySubtree is materialised,
        // leaving at each level only what later completions cannot supply.
        let mut cur = Some(parent);
        while let Some(i) = cur {
            if b == 0 || self.bbs[i.index()] == BBS_UNSET {
                break;
            }
            let ix = i.index();
            debug_assert!(
                self.bbs[ix] >= b,
                "subtree booking must include the in-flight B"
            );
            let shortfall = self.mem_needed[ix].saturating_sub(self.bbs[ix] - b);
            let c = b.min(shortfall);
            self.booked[ix] += c;
            self.mbooked += c;
            self.bbs[ix] -= b - c;
            b -= c;
            cur = self.tree.parent(i);
        }
        // Leftover `b` is simply released (already subtracted from
        // `mbooked` up front).
    }

    /// Algorithm 6, lines 18–30: activate candidates in AO order while the
    /// missing memory fits.
    fn update_cand_act(&mut self) {
        while let Some(rank) = self.cand.peek_min() {
            let i = self.ao.at(rank as usize);
            let ix = i.index();
            if self.bbs[ix] == BBS_UNSET {
                let children_sum: u64 = self
                    .tree
                    .children(i)
                    .iter()
                    .map(|c| self.bbs[c.index()])
                    .sum();
                self.bbs[ix] = self.booked[ix] + children_sum;
            }
            let missing = self.mem_needed[ix].saturating_sub(self.bbs[ix]);
            if self.mbooked + missing > self.memory {
                return; // WaitForMoreMem
            }
            self.cand.pop_min();
            self.booked[ix] += missing;
            self.mbooked += missing;
            self.bbs[ix] += missing;
            self.activated[ix] = true;
            debug_assert!(self.bbs[ix] >= self.mem_needed[ix]);
            debug_assert_eq!(
                self.bbs[ix],
                self.booked[ix]
                    + self
                        .tree
                        .children(i)
                        .iter()
                        .map(|c| self.bbs[c.index()])
                        .sum::<u64>(),
                "Lemma 3(3): BookedBySubtree must equal Booked plus children's"
            );
            if self.ch_not_fin[ix] == 0 {
                self.actf.insert(self.eo.rank(i));
            }
            if let Some(p) = self.tree.parent(i) {
                self.ch_not_act[p.index()] -= 1;
                if self.ch_not_act[p.index()] == 0 {
                    // All children activated: the parent becomes a
                    // candidate. AO rank keying keeps Lemma 1's order.
                    self.cand.insert(self.ao.rank(p));
                }
            }
        }
    }
}

impl Scheduler for MemBooking<'_> {
    fn name(&self) -> &str {
        "MemBooking"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        for &j in finished {
            self.dispatch_memory(j);
        }
        self.update_cand_act();
        while to_start.len() < idle {
            let Some(rank) = self.actf.pop_min() else {
                break;
            };
            let i = self.eo.at(rank as usize);
            debug_assert_eq!(
                self.booked[i.index()],
                self.mem_needed[i.index()],
                "Lemma 5: booked must equal MemNeeded when a node starts"
            );
            to_start.push(i);
        }
    }

    fn booked(&self) -> u64 {
        self.mbooked
    }
}
