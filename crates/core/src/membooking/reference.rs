//! The reference MemBooking engine — a literal transcription of
//! Algorithms 2–4 with explicit node states and linear scans.
//!
//! This is the executable specification: no heaps, no counters, no lazy
//! `BookedBySubtree` — candidates are found by scanning, availability by
//! re-checking children. Worst-case `O(n²·H)`; used by tests (equivalence
//! with [`super::MemBooking`]) and by the complexity ablation bench.

use crate::activation::check_orders;
use crate::error::SchedError;
use memtree_order::Order;
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskTree};

/// The five node states of Section 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Unprocessed: not yet considered (initial for interior nodes).
    Un,
    /// Candidate for activation (initial for leaves).
    Cand,
    /// Activated: enough memory booked in its subtree.
    Act,
    /// Running.
    Run,
    /// Finished.
    Fin,
}

/// Algorithms 2–4, verbatim semantics.
pub struct MemBookingRef<'a> {
    tree: &'a TaskTree,
    ao: &'a Order,
    eo: &'a Order,
    memory: u64,
    mem_needed: Vec<u64>,
    state: Vec<State>,
    booked: Vec<u64>,
    /// `BookedBySubtree`; only meaningful for `Act`/`Run` nodes (set at
    /// activation) and zeroed at completion.
    bbs: Vec<u64>,
    mbooked: u64,
}

impl<'a> MemBookingRef<'a> {
    /// Builds the scheduler, checking `M ≥ peak(AO)` (Theorem 1).
    pub fn try_new(
        tree: &'a TaskTree,
        ao: &'a Order,
        eo: &'a Order,
        memory: u64,
    ) -> Result<Self, SchedError> {
        check_orders(tree, ao, eo)?;
        let required = ao.sequential_peak(tree);
        if required > memory {
            return Err(SchedError::InfeasibleMemory {
                required,
                available: memory,
            });
        }
        let n = tree.len();
        let state = tree
            .nodes()
            .map(|i| {
                if tree.is_leaf(i) {
                    State::Cand
                } else {
                    State::Un
                }
            })
            .collect();
        Ok(MemBookingRef {
            tree,
            ao,
            eo,
            memory,
            mem_needed: memtree_tree::memory::mem_needed_slice(tree),
            state,
            booked: vec![0; n],
            bbs: vec![0; n],
            mbooked: 0,
        })
    }

    /// Algorithm 3, with the Appendix-B correction (no `f_j` added to the
    /// parent's `BookedBySubtree`) and the root's output kept booked.
    fn dispatch_memory(&mut self, j: NodeId) {
        let jx = j.index();
        let mut b = self.booked[jx];
        self.booked[jx] = 0;
        self.mbooked -= b;
        self.bbs[jx] = 0;

        let Some(parent) = self.tree.parent(j) else {
            let f = self.tree.output(j);
            self.booked[jx] = f;
            self.mbooked += f;
            return;
        };

        let fj = self.tree.output(j);
        self.booked[parent.index()] += fj;
        self.mbooked += fj;
        b -= fj;

        let mut cur = Some(parent);
        while let Some(i) = cur {
            let ix = i.index();
            if b == 0 || !matches!(self.state[ix], State::Act | State::Run) {
                break;
            }
            let c = b.min(self.mem_needed[ix].saturating_sub(self.bbs[ix] - b));
            self.booked[ix] += c;
            self.mbooked += c;
            self.bbs[ix] -= b - c;
            b -= c;
            cur = self.tree.parent(i);
        }
    }

    /// Algorithm 4: activate the AO-least candidate while memory permits.
    fn update_cand_act(&mut self) {
        loop {
            // Linear scan for the CAND node with the smallest AO rank.
            let Some(i) = self
                .tree
                .nodes()
                .filter(|&i| self.state[i.index()] == State::Cand)
                .min_by_key(|&i| self.ao.rank(i))
            else {
                return;
            };
            let ix = i.index();
            let subtree_booked: u64 = self.booked[ix]
                + self
                    .tree
                    .children(i)
                    .iter()
                    .map(|c| self.bbs[c.index()])
                    .sum::<u64>();
            let missing = self.mem_needed[ix].saturating_sub(subtree_booked);
            if self.mbooked + missing > self.memory {
                return; // WaitForMoreMem
            }
            self.booked[ix] += missing;
            self.mbooked += missing;
            self.bbs[ix] = self.booked[ix]
                + self
                    .tree
                    .children(i)
                    .iter()
                    .map(|c| self.bbs[c.index()])
                    .sum::<u64>();
            self.state[ix] = State::Act;

            if let Some(p) = self.tree.parent(i) {
                let px = p.index();
                if self.state[px] == State::Un
                    && self
                        .tree
                        .children(p)
                        .iter()
                        .all(|c| !matches!(self.state[c.index()], State::Un | State::Cand))
                {
                    self.state[px] = State::Cand;
                }
            }
        }
    }
}

impl Scheduler for MemBookingRef<'_> {
    fn name(&self) -> &str {
        "MemBookingRef"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        for &j in finished {
            self.state[j.index()] = State::Fin;
            self.dispatch_memory(j);
        }
        self.update_cand_act();

        // Start available ACT nodes by EO priority (linear scans — this is
        // the unoptimised specification).
        for _ in 0..idle {
            let Some(i) = self
                .tree
                .nodes()
                .filter(|&i| {
                    self.state[i.index()] == State::Act
                        && self
                            .tree
                            .children(i)
                            .iter()
                            .all(|c| self.state[c.index()] == State::Fin)
                })
                .min_by_key(|&i| self.eo.rank(i))
            else {
                break;
            };
            self.state[i.index()] = State::Run;
            to_start.push(i);
        }
    }

    fn booked(&self) -> u64 {
        self.mbooked
    }
}
