//! MemBooking adapted to **moldable** tasks — the extension sketched in
//! the paper's conclusion.
//!
//! The booking machinery is unchanged: activation, `BookedBySubtree` and
//! ALAP dispatch never depended on how many processors a task uses, only
//! on completion events. What changes is the start decision: when fewer
//! runnable tasks than idle processors exist, the spare processors are
//! spread over the started tasks (bounded by a per-task allotment cap),
//! resolving the paper's stated trade-off between "allocating many
//! processors to big tasks (losing tree parallelism)" and "allocating many
//! tasks in parallel (threatening the memory bound)" with a simple
//! even-split rule that favours tree parallelism first.
//!
//! Memory accounting is inherited verbatim, so Theorem 1 still applies:
//! the sequence of completions is a legal MemBooking history regardless of
//! allotments, hence the tree still finishes whenever `M ≥ peak(AO)`.

use crate::error::SchedError;
use crate::membooking::MemBooking;
use memtree_order::Order;
use memtree_sim::moldable::MoldableScheduler;
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskTree};

/// Per-task allotment caps.
#[derive(Clone, Debug)]
pub struct AllotmentCaps {
    caps: Vec<u32>,
}

impl AllotmentCaps {
    /// Uniform cap for every task.
    pub fn uniform(tree: &TaskTree, cap: u32) -> Self {
        assert!(cap >= 1);
        AllotmentCaps {
            caps: vec![cap; tree.len()],
        }
    }

    /// Caps proportional to the square root of each task's sequential
    /// time — a standard proxy for the useful parallelism of dense-kernel
    /// tasks (fronts scale ~ quadratically in work, linearly in rank).
    pub fn sqrt_of_time(tree: &TaskTree, max_cap: u32) -> Self {
        assert!(max_cap >= 1);
        let mean = (tree.total_time() / tree.len() as f64).max(1e-12);
        let caps = tree
            .nodes()
            .map(|i| {
                let ratio = (tree.time(i) / mean).max(0.0);
                (ratio.sqrt().round() as u32).clamp(1, max_cap)
            })
            .collect();
        AllotmentCaps { caps }
    }

    /// Explicit per-task caps in node-index order — how a sharded
    /// platform projects a tree's caps onto a shard's local id space.
    ///
    /// # Panics
    /// When `caps` is empty or any cap is 0.
    pub fn from_caps(caps: Vec<u32>) -> Self {
        assert!(!caps.is_empty(), "one cap per task required");
        assert!(caps.iter().all(|&c| c >= 1), "caps must be ≥ 1");
        AllotmentCaps { caps }
    }

    /// Cap of task `i`.
    #[inline]
    pub fn cap(&self, i: NodeId) -> u32 {
        self.caps[i.index()]
    }

    /// The largest cap of any task — the minimum worker count a platform
    /// needs for every gang to be schedulable at its full allotment.
    pub fn max_cap(&self) -> u32 {
        self.caps.iter().copied().max().unwrap_or(1)
    }

    /// The caps in node-index order (read-only; used by spec
    /// fingerprinting).
    pub fn as_slice(&self) -> &[u32] {
        &self.caps
    }
}

/// MemBooking for moldable tasks: identical booking, even-split allotment.
pub struct MoldableMemBooking<'a> {
    inner: MemBooking<'a>,
    caps: AllotmentCaps,
    /// Event-loop scratch (DESIGN.md §6.11: buffers are recycled across
    /// events — the steady state allocates nothing).
    picks: Vec<NodeId>,
    allotments: Vec<usize>,
}

impl<'a> MoldableMemBooking<'a> {
    /// Builds the policy; the feasibility condition is the same as
    /// sequential MemBooking's (`M ≥ peak(AO)`).
    pub fn try_new(
        tree: &'a TaskTree,
        ao: &'a Order,
        eo: &'a Order,
        memory: u64,
        caps: AllotmentCaps,
    ) -> Result<Self, SchedError> {
        assert_eq!(caps.caps.len(), tree.len(), "one cap per task required");
        Ok(MoldableMemBooking {
            inner: MemBooking::try_new(tree, ao, eo, memory)?,
            caps,
            picks: Vec::new(),
            allotments: Vec::new(),
        })
    }
}

impl MoldableScheduler for MoldableMemBooking<'_> {
    fn name(&self) -> &str {
        "MoldableMemBooking"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        // Let the sequential policy pick which tasks may start: tree
        // parallelism first.
        self.picks.clear();
        self.inner.on_event(finished, idle, &mut self.picks);
        if self.picks.is_empty() {
            return;
        }
        // Spread the idle processors evenly, capped per task; leftovers go
        // to the earliest picks (they have the highest EO priority).
        let base = idle / self.picks.len();
        let mut extra = idle % self.picks.len();
        let mut spare = 0usize;
        self.allotments.clear();
        for &i in &self.picks {
            let mut q = base;
            if extra > 0 {
                q += 1;
                extra -= 1;
            }
            let cap = self.caps.cap(i) as usize;
            if q > cap {
                spare += q - cap;
                q = cap;
            }
            self.allotments.push(q.max(1));
        }
        // Second pass: hand the spare processors to uncapped tasks.
        for (k, &i) in self.picks.iter().enumerate() {
            if spare == 0 {
                break;
            }
            let cap = self.caps.cap(i) as usize;
            let room = cap.saturating_sub(self.allotments[k]);
            let give = room.min(spare);
            self.allotments[k] += give;
            spare -= give;
        }
        to_start.extend(
            self.picks
                .iter()
                .copied()
                .zip(self.allotments.iter().copied()),
        );
    }

    fn booked(&self) -> u64 {
        Scheduler::booked(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_order::mem_postorder;
    use memtree_sim::moldable::{simulate_moldable, SpeedupModel};
    use memtree_sim::{simulate, SimConfig};
    use memtree_tree::TaskSpec;

    #[test]
    fn moldable_never_slower_than_sequential_tasks_linear() {
        for seed in 0..6 {
            let tree = memtree_gen::synthetic::paper_tree(200, seed);
            let ao = mem_postorder(&tree);
            let m = ao.sequential_peak(&tree) * 2;
            let p = 8;

            let seq_trace = simulate(
                &tree,
                SimConfig::new(p, m),
                MemBooking::try_new(&tree, &ao, &ao, m).unwrap(),
            )
            .unwrap();

            let caps = AllotmentCaps::uniform(&tree, p as u32);
            let mold = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
            let mold_trace = simulate_moldable(&tree, p, m, SpeedupModel::Linear, mold).unwrap();
            mold_trace.validate(&tree, SpeedupModel::Linear).unwrap();
            assert!(
                mold_trace.makespan <= seq_trace.makespan + 1e-9,
                "seed {seed}: moldable {} vs sequential-task {}",
                mold_trace.makespan,
                seq_trace.makespan
            );
        }
    }

    #[test]
    fn chain_is_the_win_case() {
        // A chain has zero tree parallelism: sequential-task scheduling
        // cannot beat the serial time, moldable with linear speedup can.
        let tree = memtree_gen::shapes::chain(50, TaskSpec::new(1, 3, 2.0));
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let p = 4;
        let caps = AllotmentCaps::uniform(&tree, p as u32);
        let mold = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let trace = simulate_moldable(&tree, p, m, SpeedupModel::Linear, mold).unwrap();
        trace.validate(&tree, SpeedupModel::Linear).unwrap();
        assert!((trace.makespan - tree.total_time() / p as f64).abs() < 1e-9);
    }

    #[test]
    fn amdahl_caps_the_gain() {
        let tree = memtree_gen::shapes::chain(30, TaskSpec::new(1, 3, 2.0));
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let p = 8;
        let model = SpeedupModel::Amdahl {
            serial_fraction: 0.5,
        };
        let caps = AllotmentCaps::uniform(&tree, p as u32);
        let mold = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let trace = simulate_moldable(&tree, p, m, model, mold).unwrap();
        trace.validate(&tree, model).unwrap();
        // Amdahl with f = 0.5 cannot double the speed no matter what.
        assert!(trace.makespan >= tree.total_time() / 2.0 - 1e-9);
        assert!(trace.makespan < tree.total_time());
    }

    #[test]
    fn caps_respected() {
        let tree = memtree_gen::shapes::chain(10, TaskSpec::new(0, 1, 1.0));
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let caps = AllotmentCaps::uniform(&tree, 2);
        let mold = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let trace = simulate_moldable(&tree, 8, m, SpeedupModel::Linear, mold).unwrap();
        assert!(trace.records.iter().all(|r| r.procs <= 2));
    }

    #[test]
    fn sqrt_caps_scale_with_time() {
        let tree = memtree_tree::TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 1, 100.0),
                TaskSpec::new(0, 1, 0.01),
            ],
        )
        .unwrap();
        let caps = AllotmentCaps::sqrt_of_time(&tree, 16);
        assert!(caps.cap(memtree_tree::NodeId(1)) > caps.cap(memtree_tree::NodeId(2)));
        assert!(caps.cap(memtree_tree::NodeId(2)) >= 1);
    }

    #[test]
    fn memory_invariants_hold_at_minimum_memory() {
        // The Theorem-1 argument carries over: run at exactly peak(AO).
        for seed in 0..4 {
            let tree = memtree_gen::synthetic::paper_tree(150, 70 + seed);
            let ao = mem_postorder(&tree);
            let m = ao.sequential_peak(&tree);
            let caps = AllotmentCaps::sqrt_of_time(&tree, 8);
            let mold = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
            let trace = simulate_moldable(&tree, 8, m, SpeedupModel::Linear, mold).unwrap();
            trace.validate(&tree, SpeedupModel::Linear).unwrap();
            assert!(trace.peak_booked <= m);
            assert!(trace.peak_actual <= trace.peak_booked);
        }
    }
}
