//! **`RankQueue`** — the amortised-O(1) ready set behind the list
//! schedulers (DESIGN.md §6.11).
//!
//! Activation and MemBooking keep their candidate/runnable pools ordered
//! by AO/EO *rank*. A rank is a position in an [`memtree_order::Order`]:
//! a dense permutation of `0..n`, unique per node. That makes a general
//! priority queue overkill — membership is a bit per rank, and "pop the
//! minimum" is "find the first set bit". `RankQueue` is that bitset,
//! with two summary levels so the scan skips 4096 ranks per word probe:
//!
//! * level 0 — one bit per rank (`words`);
//! * level 1 — one bit per level-0 word (`sum1`);
//! * level 2 — one bit per level-1 word (`sum2`), scanned from a cursor
//!   that only moves backward on inserts below it.
//!
//! `insert` is O(1). `pop_min`/`peek_min` find the lowest set bit via at
//! most three word probes after the cursor scan; the cursor makes the
//! scan amortised-O(1) under the schedulers' drain-roughly-in-rank-order
//! access pattern, and even the adversarial ping-pong pattern costs only
//! `n / 4096²` word probes per operation (one probe up to n ≈ 2²⁴).
//!
//! The schedulers map a popped rank back to its node through the order
//! (`order.at(rank)`), so the queue stores **no node ids at all**: three
//! bit levels, ~`n/8` bytes — against the binary heap's 8 bytes per
//! entry — and, crucially for the zero-allocation steady state, every
//! word is allocated up front at construction.
//!
//! Because ranks are unique and each scheduler inserts a node at most
//! once, pop order is **byte-identical** to the previous
//! `BinaryHeap<Reverse<(rank, NodeId)>>`: both pop strictly ascending
//! ranks (pinned by `crates/runtime/tests/determinism.rs`).

const BITS: usize = u64::BITS as usize;

/// A set of ranks from a dense universe `0..n`, popping in ascending
/// order. See the module docs for the level structure and cost model.
#[derive(Clone, Debug)]
pub struct RankQueue {
    /// Level 0: bit `r` set ⇔ rank `r` present.
    words: Vec<u64>,
    /// Level 1: bit `w` set ⇔ `words[w] != 0`.
    sum1: Vec<u64>,
    /// Level 2: bit `w` set ⇔ `sum1[w] != 0`.
    sum2: Vec<u64>,
    /// Lowest level-2 word that may be non-zero (monotone under pops,
    /// reset by inserts below it).
    cursor: usize,
    len: usize,
}

impl RankQueue {
    /// An empty queue over ranks `0..universe`. All storage is allocated
    /// here; no later operation allocates.
    pub fn with_universe(universe: usize) -> Self {
        let w0 = universe.div_ceil(BITS).max(1);
        let w1 = w0.div_ceil(BITS);
        let w2 = w1.div_ceil(BITS);
        RankQueue {
            words: vec![0; w0],
            sum1: vec![0; w1],
            sum2: vec![0; w2],
            cursor: 0,
            len: 0,
        }
    }

    /// Ranks currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `rank`. The caller guarantees each rank is inserted at
    /// most once while present (the schedulers insert each node at most
    /// once, ever).
    pub fn insert(&mut self, rank: u32) {
        let r = rank as usize;
        let w0 = r / BITS;
        debug_assert!(w0 < self.words.len(), "rank {rank} out of universe");
        debug_assert!(
            self.words[w0] & (1u64 << (r % BITS)) == 0,
            "rank {rank} inserted twice"
        );
        self.words[w0] |= 1u64 << (r % BITS);
        let w1 = w0 / BITS;
        self.sum1[w1] |= 1u64 << (w0 % BITS);
        let w2 = w1 / BITS;
        self.sum2[w2] |= 1u64 << (w1 % BITS);
        self.cursor = self.cursor.min(w2);
        self.len += 1;
    }

    /// The smallest queued rank, without removing it.
    pub fn peek_min(&self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mut w2 = self.cursor;
        while self.sum2[w2] == 0 {
            w2 += 1;
        }
        let w1 = w2 * BITS + self.sum2[w2].trailing_zeros() as usize;
        let w0 = w1 * BITS + self.sum1[w1].trailing_zeros() as usize;
        Some((w0 * BITS + self.words[w0].trailing_zeros() as usize) as u32)
    }

    /// Removes and returns the smallest queued rank.
    pub fn pop_min(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        while self.sum2[self.cursor] == 0 {
            self.cursor += 1;
        }
        let w2 = self.cursor;
        let w1 = w2 * BITS + self.sum2[w2].trailing_zeros() as usize;
        let w0 = w1 * BITS + self.sum1[w1].trailing_zeros() as usize;
        let bit = self.words[w0].trailing_zeros() as usize;
        self.words[w0] &= self.words[w0] - 1;
        if self.words[w0] == 0 {
            self.sum1[w1] &= self.sum1[w1] - 1;
            if self.sum1[w1] == 0 {
                self.sum2[w2] &= self.sum2[w2] - 1;
            }
        }
        self.len -= 1;
        Some((w0 * BITS + bit) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_ascending_rank_order() {
        let mut q = RankQueue::with_universe(1000);
        for r in [512u32, 3, 999, 64, 65, 0, 700] {
            q.insert(r);
        }
        assert_eq!(q.len(), 7);
        assert_eq!(q.peek_min(), Some(0));
        let mut out = Vec::new();
        while let Some(r) = q.pop_min() {
            out.push(r);
        }
        assert_eq!(out, vec![0, 3, 64, 65, 512, 700, 999]);
        assert!(q.is_empty());
        assert_eq!(q.pop_min(), None);
        assert_eq!(q.peek_min(), None);
    }

    #[test]
    fn reinsertion_below_the_cursor_is_found() {
        // Drain high ranks (cursor advances), then insert a low rank:
        // the cursor must retreat.
        let mut q = RankQueue::with_universe(1 << 16);
        q.insert(60_000);
        assert_eq!(q.pop_min(), Some(60_000));
        q.insert(1);
        assert_eq!(q.peek_min(), Some(1));
        assert_eq!(q.pop_min(), Some(1));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn tiny_universes_work() {
        let mut q = RankQueue::with_universe(1);
        q.insert(0);
        assert_eq!(q.pop_min(), Some(0));
        let mut q = RankQueue::with_universe(65);
        q.insert(64);
        q.insert(63);
        assert_eq!(q.pop_min(), Some(63));
        assert_eq!(q.pop_min(), Some(64));
    }

    /// Differential oracle: interleaved inserts/pops match
    /// `BinaryHeap<Reverse<u32>>` exactly — the structure the schedulers
    /// replaced.
    #[test]
    fn matches_binary_heap_under_interleaving() {
        // Deterministic xorshift so the test needs no rng dependency.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let universe = 4096usize;
        let mut q = RankQueue::with_universe(universe);
        let mut h: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        let mut unused: Vec<u32> = (0..universe as u32).collect();
        for _ in 0..20_000 {
            let coin = next();
            if coin % 3 != 0 && !unused.is_empty() {
                // Insert a random not-yet-used rank (each at most once,
                // like the schedulers).
                let k = (next() % unused.len() as u64) as usize;
                let r = unused.swap_remove(k);
                q.insert(r);
                h.push(Reverse(r));
            } else {
                assert_eq!(q.peek_min(), h.peek().map(|&Reverse(r)| r));
                assert_eq!(q.pop_min(), h.pop().map(|Reverse(r)| r));
            }
            assert_eq!(q.len(), h.len());
        }
        while let Some(Reverse(r)) = h.pop() {
            assert_eq!(q.pop_min(), Some(r));
        }
        assert!(q.is_empty());
    }
}
