//! **MemBookingRedTree** — the reduction-tree booking baseline
//! (Section 3.2, reconstructed from Eyraud-Dubois et al., TOPC 2015).
//!
//! The original strategy only applies to *reduction trees* (`n_i = 0`,
//! `f_i ≤ Σ f_children`). General trees are first transformed by adding a
//! fictitious zero-time leaf child per offending node, which inflates the
//! peak memory — the key weakness the paper exploits (Section 3.2: the
//! transform "increases the overall peak memory needed for any traversal",
//! and under tight memory "does not always allow for the completion of
//! those trees").
//!
//! The booking itself is **static subtree escrow**: a bottom-up pass
//! precomputes, for every node, the booking `Δ(i)` it must add at
//! activation so that its subtree's holdings cover its whole processing —
//! assuming each completed child transmits its precomputed holdings
//! `T(c)`:
//!
//! ```text
//! avail(i) = Σ_{c} T(c)
//! Δ(i)     = max(0, MemNeeded(i) − avail(i))
//! T(i)     = avail(i) + Δ(i) − (inputs(i) + n_i)      // held after i completes
//! ```
//!
//! Activation proceeds in `AO` order and books `Δ(i)`; a node runs once
//! activated with all children finished. This matches the two behaviours
//! Section 3.2 documents — "memory booked for the leaves of a subtree
//! suffices for the whole subtree" and "the amount transmitted to the
//! parent is precomputable" — while remaining far more conservative than
//! MemBooking's As-Late-As-Possible dispatch (no recycling across
//! branches).

use crate::activation::check_orders;
use crate::error::SchedError;
use crate::readyset::RankQueue;
use memtree_order::Order;
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskSpec, TaskTree, TreeBuilder};

/// Result of the reduction-tree transform.
#[derive(Clone, Debug)]
pub struct ReductionTransform {
    /// The transformed tree. Original nodes keep their ids (`0..original`);
    /// fictitious leaves are appended after.
    pub tree: TaskTree,
    /// Number of original nodes.
    pub original: usize,
    /// For each original node, the fictitious child added for it (if any).
    pub fictitious_of: Vec<Option<NodeId>>,
}

impl ReductionTransform {
    /// Whether `i` (in the transformed tree) is a fictitious node.
    pub fn is_fictitious(&self, i: NodeId) -> bool {
        i.index() >= self.original
    }
}

/// Transforms `tree` into a reduction tree: every node gets `n'_i = 0`, and
/// a fictitious leaf child of size `max(n_i, f_i − Σ f_children)` absorbs
/// both the execution data and any output excess. Fictitious tasks take
/// zero time, so makespans remain comparable with the original tree.
pub fn to_reduction_tree(tree: &TaskTree) -> ReductionTransform {
    let n = tree.len();
    let mut b = TreeBuilder::with_capacity(n * 2);
    for i in tree.nodes() {
        b.push(
            tree.parent(i),
            TaskSpec::new(0, tree.output(i), tree.time(i)),
        );
    }
    let mut fictitious_of = vec![None; n];
    for i in tree.nodes() {
        let inputs = tree.input_size(i);
        let c = tree.exec(i).max(tree.output(i).saturating_sub(inputs));
        if c > 0 {
            fictitious_of[i.index()] = Some(b.push(Some(i), TaskSpec::new(0, c, 0.0)));
        }
    }
    let out = b.build().expect("transform preserves tree structure");
    debug_assert!(out
        .nodes()
        .all(|i| { out.exec(i) == 0 && (out.is_leaf(i) || out.output(i) <= out.input_size(i)) }));
    ReductionTransform {
        tree: out,
        original: n,
        fictitious_of,
    }
}

/// The static escrow bookings of a tree (usually a transformed one).
#[derive(Clone, Debug)]
struct Escrow {
    /// Booking added when each node is activated.
    delta: Vec<u64>,
    /// Peak booking of the lazy sequential execution in `AO` order — the
    /// minimum feasible memory bound of this policy.
    min_memory: u64,
}

fn compute_escrow(tree: &TaskTree, ao: &Order) -> Escrow {
    let n = tree.len();
    let mut delta = vec![0u64; n];
    let mut transmit = vec![0u64; n];
    for &i in ao.sequence() {
        let ix = i.index();
        let needed = tree.mem_needed(i);
        let avail: u64 = tree.children(i).iter().map(|c| transmit[c.index()]).sum();
        delta[ix] = needed.saturating_sub(avail);
        transmit[ix] = (avail + delta[ix]) - (tree.input_size(i) + tree.exec(i));
        debug_assert!(transmit[ix] >= tree.output(i));
    }
    // Lazy sequential replay: activate right before running.
    let mut booked = 0u64;
    let mut min_memory = 0u64;
    for &i in ao.sequence() {
        booked += delta[i.index()];
        min_memory = min_memory.max(booked);
        booked -= tree.input_size(i) + tree.exec(i);
    }
    Escrow { delta, min_memory }
}

/// The MemBookingRedTree scheduling policy.
///
/// Construct via [`RedTreeBooking::try_new`] with a tree that is already a
/// reduction tree (in practice: [`to_reduction_tree`]'s output, with `AO`
/// and `EO` computed on that transformed tree).
pub struct RedTreeBooking<'a> {
    tree: &'a TaskTree,
    ao: &'a Order,
    eo: &'a Order,
    memory: u64,
    delta: Vec<u64>,
    booked: u64,
    next_ao: usize,
    activated: Vec<bool>,
    ch_not_fin: Vec<u32>,
    /// Runnable pool as EO ranks (ascending pops — see
    /// [`crate::readyset`]).
    ready: RankQueue,
}

impl<'a> RedTreeBooking<'a> {
    /// Builds the policy; fails with [`SchedError::InfeasibleMemory`] when
    /// `M` is below the policy's own sequential booking peak (which is
    /// *larger* than `peak(AO)` — the transform-and-escrow overhead).
    pub fn try_new(
        tree: &'a TaskTree,
        ao: &'a Order,
        eo: &'a Order,
        memory: u64,
    ) -> Result<Self, SchedError> {
        check_orders(tree, ao, eo)?;
        let escrow = compute_escrow(tree, ao);
        if escrow.min_memory > memory {
            return Err(SchedError::InfeasibleMemory {
                required: escrow.min_memory,
                available: memory,
            });
        }
        Ok(RedTreeBooking {
            tree,
            ao,
            eo,
            memory,
            delta: escrow.delta,
            booked: 0,
            next_ao: 0,
            activated: vec![false; tree.len()],
            ch_not_fin: tree.nodes().map(|i| tree.degree(i) as u32).collect(),
            ready: RankQueue::with_universe(tree.len()),
        })
    }

    /// The minimum memory this policy needs on `tree` with `ao` — used by
    /// the harness to report "unable to schedule" statistics without
    /// constructing the scheduler.
    pub fn min_memory(tree: &TaskTree, ao: &Order) -> u64 {
        compute_escrow(tree, ao).min_memory
    }
}

impl Scheduler for RedTreeBooking<'_> {
    fn name(&self) -> &str {
        "MemBookingRedTree"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        for &j in finished {
            // Release inputs and execution data; the subtree's remaining
            // escrow (≥ f_j) stays booked for the ancestors.
            self.booked -= self.tree.input_size(j) + self.tree.exec(j);
            if let Some(p) = self.tree.parent(j) {
                self.ch_not_fin[p.index()] -= 1;
                if self.ch_not_fin[p.index()] == 0 && self.activated[p.index()] {
                    self.ready.insert(self.eo.rank(p));
                }
            }
        }

        while self.next_ao < self.ao.len() {
            let i = self.ao.at(self.next_ao);
            let d = self.delta[i.index()];
            if self.booked + d > self.memory {
                break;
            }
            self.booked += d;
            self.activated[i.index()] = true;
            self.next_ao += 1;
            if self.ch_not_fin[i.index()] == 0 {
                self.ready.insert(self.eo.rank(i));
            }
        }

        while to_start.len() < idle {
            let Some(rank) = self.ready.pop_min() else {
                break;
            };
            to_start.push(self.eo.at(rank as usize));
        }
    }

    fn booked(&self) -> u64 {
        self.booked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_order::mem_postorder;
    use memtree_sim::{simulate, SimConfig};
    use memtree_tree::validate::check_consistency;

    #[test]
    fn transform_produces_reduction_tree() {
        for seed in 0..10 {
            let t = memtree_gen::synthetic::paper_tree(100, seed);
            let tr = to_reduction_tree(&t);
            check_consistency(&tr.tree).unwrap();
            for i in tr.tree.nodes() {
                assert_eq!(tr.tree.exec(i), 0, "execution data folded away");
                if !tr.tree.is_leaf(i) {
                    assert!(
                        tr.tree.output(i) <= tr.tree.input_size(i),
                        "node {i:?} not a reduction"
                    );
                }
            }
            // Fictitious tasks take no time: makespan-relevant work equal.
            assert!((tr.tree.total_time() - t.total_time()).abs() < 1e-9);
        }
    }

    #[test]
    fn transform_preserves_mem_needed_when_exec_dominates() {
        // A node with n_i > 0 gets a fictitious child of exactly n_i, so
        // MemNeeded is preserved.
        let t = memtree_tree::TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(4, 3, 1.0), TaskSpec::new(5, 10, 1.0)],
        )
        .unwrap();
        let tr = to_reduction_tree(&t);
        // Node 1 (leaf, n=5, f=10): fictitious child max(5, 10-0) = 10.
        let f1 = tr.fictitious_of[1].unwrap();
        assert_eq!(tr.tree.output(f1), 10);
        assert!(tr.is_fictitious(f1));
        // Node 0 (n=4, f=3, inputs 10): max(4, 3-10<0 -> 0) = 4.
        let f0 = tr.fictitious_of[0].unwrap();
        assert_eq!(tr.tree.output(f0), 4);
        // MemNeeded(0) in T': inputs (10 + 4) + 0 + 3 = 17 vs original 10+4+3.
        assert_eq!(
            tr.tree.mem_needed(memtree_tree::NodeId(0)),
            t.mem_needed(memtree_tree::NodeId(0))
        );
    }

    #[test]
    fn transform_inflates_peak_memory() {
        // The paper's criticism: the transform increases the sequential
        // peak for trees whose outputs exceed their inputs.
        let mut inflated = 0;
        for seed in 0..10 {
            let t = memtree_gen::synthetic::paper_tree(200, 50 + seed);
            let tr = to_reduction_tree(&t);
            let orig = mem_postorder(&t).sequential_peak(&t);
            let trans = mem_postorder(&tr.tree).sequential_peak(&tr.tree);
            assert!(trans >= orig);
            if trans > orig {
                inflated += 1;
            }
        }
        assert!(
            inflated > 5,
            "inflation should be common on synthetic trees"
        );
    }

    #[test]
    fn schedules_correctly_with_ample_memory() {
        for seed in 0..8 {
            let t = memtree_gen::synthetic::paper_tree(120, seed);
            let tr = to_reduction_tree(&t);
            let ao = mem_postorder(&tr.tree);
            let need = RedTreeBooking::min_memory(&tr.tree, &ao);
            let s = RedTreeBooking::try_new(&tr.tree, &ao, &ao, need).unwrap();
            let trace = simulate(&tr.tree, SimConfig::new(4, need), s).unwrap();
            memtree_sim::validate::validate_trace(&tr.tree, &trace).unwrap();
        }
    }

    #[test]
    fn needs_more_memory_than_membooking() {
        // On general trees the escrow minimum exceeds the sequential peak
        // (the "unable to schedule under tight memory" phenomenon).
        let mut strictly_more = 0;
        for seed in 0..10 {
            let t = memtree_gen::synthetic::paper_tree(150, 10 + seed);
            let tr = to_reduction_tree(&t);
            let ao_t = mem_postorder(&t);
            let ao_tr = mem_postorder(&tr.tree);
            let mb_min = ao_t.sequential_peak(&t);
            let rt_min = RedTreeBooking::min_memory(&tr.tree, &ao_tr);
            assert!(rt_min >= mb_min);
            if rt_min > mb_min {
                strictly_more += 1;
            }
        }
        assert!(strictly_more >= 8, "escrow should usually need more memory");
    }

    #[test]
    fn infeasible_memory_rejected_up_front() {
        let t = memtree_gen::synthetic::paper_tree(60, 2);
        let tr = to_reduction_tree(&t);
        let ao = mem_postorder(&tr.tree);
        let need = RedTreeBooking::min_memory(&tr.tree, &ao);
        assert!(matches!(
            RedTreeBooking::try_new(&tr.tree, &ao, &ao, need - 1),
            Err(SchedError::InfeasibleMemory { .. })
        ));
    }

    #[test]
    fn pure_reduction_tree_untouched_by_transform() {
        let t = memtree_gen::shapes::binary_reduction(8, 16, 1.0);
        let tr = to_reduction_tree(&t);
        // Only the leaves need fictitious children (their output comes from
        // nowhere); internal nodes are already reductions.
        for i in t.nodes() {
            if t.is_leaf(i) {
                assert!(tr.fictitious_of[i.index()].is_some());
            } else {
                assert!(tr.fictitious_of[i.index()].is_none());
            }
        }
    }
}
