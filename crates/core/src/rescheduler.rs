//! Malleable allotments: the r2t2-style proportional feedback policy
//! over the gang driver's [`Rescheduler`] hook (DESIGN.md §6.10).
//!
//! `AllotmentCaps` fixes every allotment at launch from *estimated* work;
//! when the estimates are wrong, processors sit idle next to a gang with
//! a deep backlog. [`ProportionalRescheduler`] closes the loop at run
//! time: once per driver event it reads the [`LiveStats`] snapshot and
//! redistributes processors toward the running gangs with the largest
//! remaining work, in three stages borrowed from the r2t2/pbrt dynamic
//! scheduler lineage:
//!
//! 1. **root-first warm-up** — until the first completion, every idle
//!    processor is pushed into the single largest-backlog gang (there is
//!    no history yet to apportion by);
//! 2. **proportional** — targets are `p · backlog_i / Σ backlog`, floored
//!    at one processor per gang, with a hysteresis threshold so tiny
//!    imbalances don't thrash members across gangs;
//! 3. **static** — after two consecutive quiet ticks the policy stops
//!    issuing actions; any change in the running-gang set re-arms it.
//!
//! Backlog is `weight_i · remaining_fraction_i`: the task's sequential
//! time scaled by the unfinished payload share the backend reports. The
//! policy only ever moves processors — memory booking is untouched, so
//! every booking invariant holds through grow/shrink by construction.

use memtree_sim::{LiveStats, RescheduleAction, Rescheduler};
use memtree_tree::TaskTree;

/// Configuration of [`ProportionalRescheduler`] — a plain `Copy` value so
/// platforms stay `Copy` while carrying one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReschedulePolicy {
    /// Act every `interval` driver events (≥ 1; ticks in between observe
    /// but do not move processors).
    pub interval: u64,
    /// Hysteresis: a gang's allotment only changes by at least this many
    /// processors at once (≥ 1). Larger values trade reaction speed for
    /// fewer member migrations.
    pub min_move: usize,
}

impl Default for ReschedulePolicy {
    fn default() -> Self {
        ReschedulePolicy {
            interval: 1,
            min_move: 1,
        }
    }
}

impl ReschedulePolicy {
    /// The default policy: act every event, move any imbalance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the acting interval (in driver events).
    ///
    /// # Panics
    /// When `interval` is 0.
    pub fn with_interval(mut self, interval: u64) -> Self {
        assert!(interval >= 1, "the policy must act at least sometimes");
        self.interval = interval;
        self
    }

    /// Overrides the hysteresis threshold.
    ///
    /// # Panics
    /// When `min_move` is 0.
    pub fn with_min_move(mut self, min_move: usize) -> Self {
        assert!(min_move >= 1, "a move of zero processors is not a move");
        self.min_move = min_move;
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    RootFirst,
    Proportional,
    Static,
}

/// The staged proportional feedback policy; see the module docs.
pub struct ProportionalRescheduler {
    policy: ReschedulePolicy,
    /// Per-task sequential-work weights (the backlog numerator). Indexed
    /// by node id of the tree the run executes.
    weights: Vec<f64>,
    stage: Stage,
    /// Consecutive acting ticks that moved nothing.
    quiet_ticks: u32,
    /// Node ids of the gangs seen running last tick, for change detection.
    prev_running: Vec<memtree_tree::NodeId>,
}

impl ProportionalRescheduler {
    /// A policy weighing backlog by the tree's own sequential times.
    pub fn new(tree: &TaskTree, policy: ReschedulePolicy) -> Self {
        Self::with_weights(
            tree.nodes().map(|i| tree.time(i).max(0.0)).collect(),
            policy,
        )
    }

    /// A policy with explicit per-task weights — how a caller whose work
    /// estimates differ from the tree's recorded times injects them.
    pub fn with_weights(weights: Vec<f64>, policy: ReschedulePolicy) -> Self {
        ProportionalRescheduler {
            policy,
            weights,
            stage: Stage::RootFirst,
            quiet_ticks: 0,
            prev_running: Vec::new(),
        }
    }

    /// The current stage, for tests and diagnostics.
    pub fn stage_name(&self) -> &'static str {
        match self.stage {
            Stage::RootFirst => "root-first",
            Stage::Proportional => "proportional",
            Stage::Static => "static",
        }
    }

    fn backlog(&self, g: &memtree_sim::GangSnapshot) -> f64 {
        let w = self
            .weights
            .get(g.node.index())
            .copied()
            .unwrap_or(1.0)
            .max(0.0);
        w * g.remaining_fraction()
    }
}

impl Rescheduler for ProportionalRescheduler {
    fn tick(&mut self, stats: &LiveStats, actions: &mut Vec<RescheduleAction>) {
        if stats.gangs.is_empty() {
            return;
        }
        // Re-arm a static policy when the set of running gangs changes —
        // the converged distribution no longer describes the work.
        let changed = stats.gangs.len() != self.prev_running.len()
            || stats
                .gangs
                .iter()
                .zip(&self.prev_running)
                .any(|(g, &prev)| g.node != prev);
        if changed {
            self.prev_running.clear();
            self.prev_running.extend(stats.gangs.iter().map(|g| g.node));
            self.quiet_ticks = 0;
            if self.stage == Stage::Static {
                self.stage = Stage::Proportional;
            }
        }
        if self.stage == Stage::Static {
            return;
        }
        if self.policy.interval > 1 && !stats.event.is_multiple_of(self.policy.interval) {
            return;
        }

        if self.stage == Stage::RootFirst {
            if stats.completed == 0 {
                // No history to apportion by yet: concentrate the idle
                // pool on the single deepest backlog (ties to the lowest
                // node id — deterministic).
                if stats.idle > 0 {
                    let g = stats
                        .gangs
                        .iter()
                        .max_by(|a, b| {
                            self.backlog(a)
                                .partial_cmp(&self.backlog(b))
                                .expect("finite backlog")
                                .then(b.node.cmp(&a.node))
                        })
                        .expect("non-empty gangs");
                    actions.push(RescheduleAction::Grow {
                        node: g.node,
                        extra: stats.idle,
                    });
                }
                return;
            }
            self.stage = Stage::Proportional;
        }

        // Proportional targets: p · backlog / Σ backlog, floored at 1.
        let g = stats.gangs.len();
        let mut backlog: Vec<f64> = stats.gangs.iter().map(|s| self.backlog(s)).collect();
        let mut total: f64 = backlog.iter().sum();
        if total <= 0.0 {
            // All-but-done everywhere: fall back to an even split.
            backlog.iter_mut().for_each(|b| *b = 1.0);
            total = g as f64;
        }
        // Largest backlog first (ties to the lowest node id), so floors
        // and leftovers favour the gangs that gate the makespan.
        let mut order: Vec<usize> = (0..g).collect();
        order.sort_by(|&a, &b| {
            backlog[b]
                .partial_cmp(&backlog[a])
                .expect("finite backlog")
                .then(stats.gangs[a].node.cmp(&stats.gangs[b].node))
        });
        let mut target = vec![0usize; g];
        let mut budget = stats.workers;
        for (k, &gi) in order.iter().enumerate() {
            let behind = order.len() - k - 1; // gangs still owed their floor
            let share = (stats.workers as f64 * backlog[gi] / total).floor() as usize;
            let alloc = share.max(1).min(budget - behind);
            target[gi] = alloc;
            budget -= alloc;
        }
        if budget > 0 {
            target[order[0]] += budget;
        }

        // Shrinks first (they free processors), then grows largest-backlog
        // first, both gated by the hysteresis threshold. Grows never
        // exceed what is actually free: the idle pool plus what the
        // shrinks this tick released.
        let mut moved = false;
        let mut available = stats.idle;
        for (gi, s) in stats.gangs.iter().enumerate() {
            let cur = s.allotment as usize;
            if target[gi] < cur {
                let release = cur - target[gi];
                if release >= self.policy.min_move {
                    actions.push(RescheduleAction::Shrink {
                        node: s.node,
                        release,
                    });
                    available += release;
                    moved = true;
                }
            }
        }
        for &gi in &order {
            let s = &stats.gangs[gi];
            let cur = s.allotment as usize;
            if target[gi] > cur {
                let extra = (target[gi] - cur).min(available);
                if extra >= self.policy.min_move {
                    actions.push(RescheduleAction::Grow {
                        node: s.node,
                        extra,
                    });
                    available -= extra;
                    moved = true;
                }
            }
        }

        if moved {
            self.quiet_ticks = 0;
        } else {
            self.quiet_ticks += 1;
            if self.quiet_ticks >= 2 {
                self.stage = Stage::Static;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_sim::{GangSnapshot, LiveStats};
    use memtree_tree::NodeId;

    fn stats(event: u64, workers: usize, completed: usize, gangs: Vec<GangSnapshot>) -> LiveStats {
        let busy: usize = gangs.iter().map(|g| g.allotment as usize).sum();
        LiveStats {
            event,
            workers,
            busy,
            idle: workers - busy,
            completed,
            total: 100,
            ready_depth: 0,
            booked: 0,
            actual: 0,
            gangs,
        }
    }

    fn gang(node: u32, allotment: u32, done: u32, shards: u32) -> GangSnapshot {
        GangSnapshot {
            node: NodeId(node),
            allotment,
            shards,
            shards_done: done,
        }
    }

    #[test]
    fn root_first_concentrates_the_idle_pool() {
        let mut r = ProportionalRescheduler::with_weights(
            vec![1.0, 10.0, 1.0],
            ReschedulePolicy::default(),
        );
        let mut actions = Vec::new();
        r.tick(
            &stats(1, 8, 0, vec![gang(1, 1, 0, 8), gang(2, 1, 0, 8)]),
            &mut actions,
        );
        assert_eq!(
            actions,
            vec![RescheduleAction::Grow {
                node: NodeId(1),
                extra: 6
            }],
            "all idle processors go to the heaviest gang before any completion"
        );
        assert_eq!(r.stage_name(), "root-first");
    }

    #[test]
    fn proportional_redistributes_toward_backlog() {
        let mut r =
            ProportionalRescheduler::with_weights(vec![0.0, 3.0, 1.0], ReschedulePolicy::default());
        let mut actions = Vec::new();
        // First completion flips the stage; gang 1 has 3× the backlog of
        // gang 2 but the allotments are even.
        r.tick(
            &stats(3, 8, 1, vec![gang(1, 4, 0, 8), gang(2, 4, 0, 8)]),
            &mut actions,
        );
        assert_eq!(r.stage_name(), "proportional");
        assert_eq!(
            actions,
            vec![
                RescheduleAction::Shrink {
                    node: NodeId(2),
                    release: 2
                },
                RescheduleAction::Grow {
                    node: NodeId(1),
                    extra: 2
                },
            ]
        );
    }

    #[test]
    fn progress_discounts_backlog() {
        // Equal weights, but gang 1 is 75% done: gang 2's effective
        // backlog is 4× larger and draws the processors.
        let mut r =
            ProportionalRescheduler::with_weights(vec![0.0, 4.0, 4.0], ReschedulePolicy::default());
        let mut actions = Vec::new();
        r.tick(
            &stats(3, 10, 1, vec![gang(1, 5, 6, 8), gang(2, 5, 0, 8)]),
            &mut actions,
        );
        assert!(
            actions.contains(&RescheduleAction::Grow {
                node: NodeId(2),
                extra: 3
            }),
            "got {actions:?}"
        );
    }

    #[test]
    fn hysteresis_blocks_tiny_moves() {
        let mut r = ProportionalRescheduler::with_weights(
            vec![0.0, 5.0, 4.0],
            ReschedulePolicy::default().with_min_move(2),
        );
        let mut actions = Vec::new();
        // Targets differ from current by one processor — under min_move.
        r.tick(
            &stats(3, 8, 1, vec![gang(1, 4, 0, 8), gang(2, 4, 0, 8)]),
            &mut actions,
        );
        assert!(actions.is_empty(), "got {actions:?}");
    }

    #[test]
    fn converges_to_static_and_rearms_on_gang_change() {
        let mut r =
            ProportionalRescheduler::with_weights(vec![0.0, 1.0, 1.0], ReschedulePolicy::default());
        let balanced = vec![gang(1, 4, 0, 8), gang(2, 4, 0, 8)];
        let mut actions = Vec::new();
        for e in 1..=3 {
            actions.clear();
            r.tick(&stats(e, 8, 1, balanced.clone()), &mut actions);
            assert!(actions.is_empty());
        }
        assert_eq!(r.stage_name(), "static");
        // A new gang set re-arms the policy.
        actions.clear();
        r.tick(
            &stats(4, 8, 2, vec![gang(1, 7, 0, 8), gang(3, 1, 0, 8)]),
            &mut actions,
        );
        assert_eq!(r.stage_name(), "proportional");
    }

    #[test]
    fn sim_malleable_beats_static_caps_on_a_skewed_chain() {
        // The tentpole's win case end to end on the virtual clock: a
        // chain whose caps came from estimates that saw every task as
        // equal and tiny (cap 1 each), so the static moldable run is
        // serial. The rescheduler observes the single running gang and
        // grows it to the whole machine.
        use crate::{AllotmentCaps, MoldableMemBooking};
        use memtree_order::mem_postorder;
        use memtree_sim::{simulate_moldable, simulate_moldable_with, SpeedupModel};
        use memtree_tree::TaskSpec;

        let p = 4;
        let tree = memtree_gen::shapes::chain(20, TaskSpec::new(1, 3, 4.0));
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let caps = AllotmentCaps::uniform(&tree, 1); // skewed estimate: "tiny tasks"

        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps.clone()).unwrap();
        let fixed = simulate_moldable(&tree, p, m, SpeedupModel::Linear, sched).unwrap();

        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let mut resched = ProportionalRescheduler::new(&tree, ReschedulePolicy::default());
        let malleable =
            simulate_moldable_with(&tree, p, m, SpeedupModel::Linear, sched, Some(&mut resched))
                .unwrap();

        malleable.validate(&tree, SpeedupModel::Linear).unwrap();
        assert!(
            !malleable.segments.is_empty(),
            "gangs were actually resized"
        );
        assert!(
            malleable.makespan <= 0.9 * fixed.makespan,
            "malleable {} vs static {}",
            malleable.makespan,
            fixed.makespan
        );
        assert!(malleable.peak_busy <= p);
        // On this well-separated trace the driver's processor ledger is
        // exactly reproducible from the allotment segments.
        assert_eq!(malleable.occupancy_peak(), malleable.peak_busy);
        assert!(malleable.peak_booked <= m);
        assert!(malleable.peak_actual <= malleable.peak_booked);
    }
}
