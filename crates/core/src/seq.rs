//! Sequential baseline: execute the activation order on one processor.

use crate::activation::check_orders;
use crate::error::SchedError;
use memtree_order::Order;
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskTree};

/// Runs the tasks one at a time in `AO` order, booking exactly the resident
/// memory. Uses at most one processor regardless of `p` — the baseline the
/// paper's "minimum memory" normalisation is defined against.
pub struct Sequential<'a> {
    tree: &'a TaskTree,
    order: Vec<NodeId>,
    next: usize,
    running: bool,
    booked: u64,
}

impl<'a> Sequential<'a> {
    /// Builds the policy; requires `M ≥ peak(AO)` like every other policy.
    pub fn try_new(tree: &'a TaskTree, ao: &'a Order, memory: u64) -> Result<Self, SchedError> {
        check_orders(tree, ao, ao)?;
        let required = ao.sequential_peak(tree);
        if required > memory {
            return Err(SchedError::InfeasibleMemory {
                required,
                available: memory,
            });
        }
        Ok(Sequential {
            tree,
            order: ao.sequence().to_vec(),
            next: 0,
            running: false,
            booked: 0,
        })
    }
}

impl Scheduler for Sequential<'_> {
    fn name(&self) -> &str {
        "Sequential"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        // Free inputs and execution data of what just finished; the output
        // stays resident.
        for &j in finished {
            self.booked -= self.tree.exec(j) + self.tree.input_size(j);
            self.running = false;
        }
        if idle > 0 && !self.running && self.next < self.order.len() {
            let i = self.order[self.next];
            self.next += 1;
            self.running = true;
            self.booked += self.tree.exec(i) + self.tree.output(i);
            to_start.push(i);
        }
    }

    fn booked(&self) -> u64 {
        self.booked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_order::mem_postorder;
    use memtree_sim::{simulate, SimConfig};

    #[test]
    fn runs_one_at_a_time_and_matches_peak() {
        for seed in 0..5 {
            let t = memtree_gen::synthetic::paper_tree(80, seed);
            let ao = mem_postorder(&t);
            let m = ao.sequential_peak(&t);
            let s = Sequential::try_new(&t, &ao, m).unwrap();
            let trace = simulate(&t, SimConfig::new(8, m), s).unwrap();
            memtree_sim::validate::validate_trace(&t, &trace).unwrap();
            assert_eq!(trace.max_concurrency(), 1);
            assert!((trace.makespan - t.total_time()).abs() < 1e-6);
            // Sequential booking is exact: peak booked = peak actual = peak(AO).
            assert_eq!(trace.peak_actual, m);
            assert_eq!(trace.peak_booked, m);
        }
    }

    #[test]
    fn infeasible_rejected() {
        let t = memtree_gen::synthetic::paper_tree(40, 1);
        let ao = mem_postorder(&t);
        let m = ao.sequential_peak(&t);
        assert!(Sequential::try_new(&t, &ao, m - 1).is_err());
    }
}
