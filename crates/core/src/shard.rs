//! **`ShardBudget`** — how a global memory bound splits into independent
//! per-shard booking ledgers (DESIGN.md §6.7).
//!
//! A sharded platform runs disjoint subtrees concurrently, each under its
//! own booking ledger; the split policy decides how much of the global
//! bound `M` each ledger gets. Whatever the policy, the contract is:
//!
//! * every shard gets at least its minimum feasible memory (the
//!   sequential peak of its memPO activation order — Theorem 1's
//!   feasibility condition applied shard-locally);
//! * the per-shard budgets **sum to at most `M`**, so the sum of the
//!   shard ledgers' peaks can never exceed the global bound — memory
//!   booking composes across shards exactly as Eyraud-Dubois et al.
//!   (2014) compose it across independent subtrees.
//!
//! When even the minima do not fit, the split refuses with
//! [`SchedError::InfeasibleMemory`] — the sharded analogue of a policy's
//! construction-time feasibility refusal.

use crate::error::SchedError;
use memtree_tree::TaskTree;

/// The minimum memory the default booking policy (MemBooking under the
/// paper's memPO orders) provably needs on `tree` — a thin delegate to
/// [`PolicySpec::min_feasible`](crate::PolicySpec::min_feasible), which is
/// the one feasibility floor in this workspace.
///
/// Convenient when no concrete spec is in hand (tests sizing a "roomy"
/// bound, proportional-split weights). **Admission control must not use
/// this**: a tenant's floor depends on its spec's kind and orders —
/// RedTree's statically-booked subtree requirements raise the bar well
/// past the memPO sequential peak — so admitting against this function
/// would admit sessions whose policies then refuse to construct. Always
/// ask the session's own spec via `PolicySpec::min_feasible`.
pub fn min_feasible_memory(tree: &TaskTree) -> u64 {
    // The memory field is irrelevant to the floor; 0 keeps the delegate
    // honest about not depending on it.
    crate::PolicySpec::new(crate::HeuristicKind::MemBooking, 0).min_feasible(tree)
}

/// How a global memory bound splits across per-shard booking ledgers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardBudget {
    /// Each shard gets its minimum plus a share of the headroom
    /// proportional to that minimum — big shards get big ledgers.
    #[default]
    Proportional,
    /// Each shard gets its minimum plus an equal share of the headroom.
    Even,
    /// Each shard gets exactly its minimum; all headroom stays with the
    /// parent ledger (maximal budget left for the residual phase).
    Minimum,
}

impl ShardBudget {
    /// Stable label for reports and cache keys.
    pub fn label(&self) -> &'static str {
        match self {
            ShardBudget::Proportional => "proportional",
            ShardBudget::Even => "even",
            ShardBudget::Minimum => "minimum",
        }
    }

    /// Splits `memory` over shards whose minimum feasible memories are
    /// `mins`. On success every budget is ≥ its min and the budgets sum
    /// to at most `memory`.
    ///
    /// # Errors
    /// [`SchedError::InfeasibleMemory`] when `Σ mins > memory` — the
    /// shards cannot all be granted a feasible ledger at once.
    pub fn split(&self, memory: u64, mins: &[u64]) -> Result<Vec<u64>, SchedError> {
        if mins.is_empty() {
            return Ok(Vec::new());
        }
        let total_min: u64 = mins.iter().sum();
        if total_min > memory {
            return Err(SchedError::InfeasibleMemory {
                required: total_min,
                available: memory,
            });
        }
        let headroom = memory - total_min;
        let budgets = match self {
            ShardBudget::Minimum => mins.to_vec(),
            ShardBudget::Even => {
                let share = headroom / mins.len() as u64;
                mins.iter().map(|&m| m + share).collect()
            }
            ShardBudget::Proportional => mins
                .iter()
                .map(|&m| {
                    // u128 intermediate: headroom · min can overflow u64.
                    let share = (headroom as u128 * m as u128 / total_min as u128) as u64;
                    m + share
                })
                .collect(),
        };
        debug_assert!(budgets.iter().sum::<u64>() <= memory);
        debug_assert!(budgets.iter().zip(mins).all(|(b, m)| b >= m));
        Ok(budgets)
    }
}

impl std::fmt::Display for ShardBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_keeps_all_headroom() {
        let b = ShardBudget::Minimum.split(100, &[10, 20, 30]).unwrap();
        assert_eq!(b, vec![10, 20, 30]);
    }

    #[test]
    fn even_spreads_headroom_equally() {
        let b = ShardBudget::Even.split(100, &[10, 20, 30]).unwrap();
        assert_eq!(b, vec![23, 33, 43]);
        assert!(b.iter().sum::<u64>() <= 100);
    }

    #[test]
    fn proportional_spreads_by_min() {
        let b = ShardBudget::Proportional.split(120, &[10, 20, 30]).unwrap();
        // headroom 60 split 1:2:3.
        assert_eq!(b, vec![20, 40, 60]);
        assert_eq!(b.iter().sum::<u64>(), 120);
    }

    #[test]
    fn split_is_exhaustive_over_policies_and_never_overcommits() {
        let mins = [7, 13, 1, 64];
        for policy in [
            ShardBudget::Proportional,
            ShardBudget::Even,
            ShardBudget::Minimum,
        ] {
            for memory in [85u64, 86, 100, 1_000, u64::MAX / 2] {
                let b = policy.split(memory, &mins).unwrap();
                assert!(b.iter().sum::<u64>() <= memory, "{policy} at {memory}");
                assert!(
                    b.iter().zip(&mins).all(|(b, m)| b >= m),
                    "{policy} at {memory}"
                );
            }
        }
    }

    #[test]
    fn infeasible_split_refused() {
        let err = ShardBudget::Proportional
            .split(84, &[7, 13, 1, 64])
            .unwrap_err();
        assert!(matches!(
            err,
            SchedError::InfeasibleMemory {
                required: 85,
                available: 84
            }
        ));
    }

    #[test]
    fn empty_split_is_empty() {
        assert!(ShardBudget::Even.split(10, &[]).unwrap().is_empty());
    }

    #[test]
    fn min_feasible_memory_is_positive_and_feasible() {
        let tree = memtree_gen::synthetic::paper_tree(80, 3);
        let m = min_feasible_memory(&tree);
        assert!(m >= 1);
        // A MemBooking policy constructs at exactly this bound.
        let spec = crate::PolicySpec::new(crate::HeuristicKind::MemBooking, m);
        let inst = spec.instantiate(&tree).unwrap();
        assert!(inst.scheduler(&tree).is_ok());
    }

    #[test]
    fn min_feasible_memory_delegates_to_the_spec_level_floor() {
        // One implementation of the floor: the free function is the
        // default spec's answer, bit for bit, and the spec-level method is
        // the one admission must consult (RedTree's floor is higher).
        let tree = memtree_gen::synthetic::paper_tree(120, 7);
        let default_spec = crate::PolicySpec::new(crate::HeuristicKind::MemBooking, 0);
        assert_eq!(min_feasible_memory(&tree), default_spec.min_feasible(&tree));
        let redtree = crate::PolicySpec::new(crate::HeuristicKind::MemBookingRedTree, 0);
        assert!(
            redtree.min_feasible(&tree) > min_feasible_memory(&tree),
            "RedTree's floor exceeds the memPO sequential peak — admitting \
             against the free function would under-provision it"
        );
    }
}
