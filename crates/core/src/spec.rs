//! **`PolicySpec`** — the single, declarative entry point for constructing
//! any of the paper's scheduling policies (DESIGN.md §6.2).
//!
//! A spec is a plain value: policy kind, activation/execution order kinds,
//! memory bound, optional moldable allotment caps. [`PolicySpec::instantiate`]
//! turns it into a [`PolicyInstance`] against a concrete tree, **owning any
//! tree transformation the policy needs**. That absorbs the old
//! `MemBookingRedTree` special case — the reduction-tree transform
//! (Section 3.2) happens inside `instantiate`, so the red-tree baseline is
//! constructible through exactly the same call as every other policy and
//! the old `SchedError::NeedsTransformedTree` escape hatch is gone.
//!
//! A [`PolicyInstance`] is cheap to clone (`Arc`-shared tree and orders)
//! and can mint any number of independent scheduler states via
//! [`PolicyInstance::scheduler`] — one per run, so the same instance can be
//! executed on a simulator, on real threads, or fanned out across a
//! parallel sweep.

use crate::error::SchedError;
use crate::moldable::{AllotmentCaps, MoldableMemBooking};
use crate::redtree::to_reduction_tree;
use crate::{Activation, HeuristicKind, MemBooking, MemBookingRef, RedTreeBooking, Sequential};
use memtree_order::{make_order, Order, OrderKind};
use memtree_sim::Scheduler;
use memtree_tree::TaskTree;
use std::sync::Arc;

/// A declarative description of a scheduling policy: everything needed to
/// construct it against any tree.
#[derive(Clone, Debug)]
pub struct PolicySpec {
    /// Which heuristic to run.
    pub kind: HeuristicKind,
    /// Activation-order strategy (`AO`).
    pub ao: OrderKind,
    /// Execution-priority strategy (`EO`).
    pub eo: OrderKind,
    /// Memory bound `M` (model units).
    pub memory: u64,
    /// Optional moldable-task allotment caps; only meaningful for
    /// [`HeuristicKind::MemBooking`] (the moldable adaptation wraps it).
    pub caps: Option<AllotmentCaps>,
}

impl PolicySpec {
    /// A spec with the paper's default orders (memPO for both).
    pub fn new(kind: HeuristicKind, memory: u64) -> Self {
        PolicySpec {
            kind,
            ao: OrderKind::MemPostorder,
            eo: OrderKind::MemPostorder,
            memory,
            caps: None,
        }
    }

    /// Overrides the order pair.
    pub fn with_orders(mut self, ao: OrderKind, eo: OrderKind) -> Self {
        self.ao = ao;
        self.eo = eo;
        self
    }

    /// Overrides the memory bound (e.g. per sweep cell).
    pub fn with_memory(mut self, memory: u64) -> Self {
        self.memory = memory;
        self
    }

    /// Adds moldable allotment caps (MemBooking only).
    pub fn with_caps(mut self, caps: AllotmentCaps) -> Self {
        self.caps = Some(caps);
        self
    }

    /// A stable content fingerprint of the spec: every field that changes
    /// scheduling behaviour — kind, both order strategies, the memory
    /// bound, allotment caps — feeds a pinned FNV-1a digest
    /// ([`memtree_tree::Fnv64`]). Combined with a tree's
    /// [`content_hash`](memtree_tree::hash::content_hash) it addresses
    /// persisted experiment results: change any policy knob and exactly
    /// the cells run under that spec are invalidated, nothing else.
    pub fn fingerprint(&self) -> u64 {
        let mut h = memtree_tree::Fnv64::with_tag("memtree-policy-spec-v1");
        h.write_str(self.kind.label());
        h.write_str(self.ao.label());
        h.write_str(self.eo.label());
        h.write_u64(self.memory);
        match &self.caps {
            None => h.write_u64(0),
            Some(caps) => {
                h.write_u64(1 + caps.as_slice().len() as u64);
                for &c in caps.as_slice() {
                    h.write_u32(c);
                }
            }
        }
        h.finish()
    }

    /// The smallest memory bound at which this spec constructs against
    /// `tree` — the policy's feasibility threshold: the sequential peak
    /// of the spec's activation order, computed on the tree the policy
    /// actually schedules (the reduction-tree transform for RedTree,
    /// whose statically-booked subtree requirements raise the bar).
    ///
    /// Sharded platforms size per-shard ledger budgets with this, so a
    /// split that succeeds grants every shard a constructible policy.
    pub fn min_feasible(&self, tree: &TaskTree) -> u64 {
        match self.kind {
            HeuristicKind::MemBookingRedTree => {
                let tr = to_reduction_tree(tree);
                let ao = make_order(&tr.tree, self.ao);
                RedTreeBooking::min_memory(&tr.tree, &ao).max(1)
            }
            _ => {
                let ao = make_order(tree, self.ao);
                ao.sequential_peak(tree).max(1)
            }
        }
    }

    /// The per-shard specs of a sharded execution: one spec per shard,
    /// same kind and orders, with the global bound split by `budget` over
    /// the shards' minimum feasible memories (`mins`). Allotment caps are
    /// cleared — they index the original tree's nodes, so a sharded
    /// platform projects them onto each shard's id space itself.
    ///
    /// # Errors
    /// [`SchedError::InfeasibleMemory`] when the minima alone exceed the
    /// global bound (see [`crate::ShardBudget::split`]).
    pub fn shard_specs(
        &self,
        budget: crate::ShardBudget,
        mins: &[u64],
    ) -> Result<Vec<PolicySpec>, SchedError> {
        Ok(budget
            .split(self.memory, mins)?
            .into_iter()
            .map(|memory| PolicySpec {
                kind: self.kind,
                ao: self.ao,
                eo: self.eo,
                memory,
                caps: None,
            })
            .collect())
    }

    /// Serialises the spec in the `memtree-spec v1` wire format — the
    /// policy half of the shard-worker handshake (the subtree travels as
    /// `memtree_tree::io`'s v1 text format alongside it).
    ///
    /// One `key value` line per field, kinds and orders spelled as their
    /// [`label`](HeuristicKind::label)s, `caps` (present only when the
    /// spec is moldable) as space-separated per-node caps. The format is
    /// pinned to [`PolicySpec::fingerprint`]: a round trip through
    /// [`spec_from_str`](PolicySpec::spec_from_str) is fingerprint-equal,
    /// so a serialized spec addresses exactly the cached cells its sender
    /// would.
    pub fn spec_to_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# memtree-spec v1\n");
        let _ = writeln!(out, "kind {}", self.kind.label());
        let _ = writeln!(out, "ao {}", self.ao.label());
        let _ = writeln!(out, "eo {}", self.eo.label());
        let _ = writeln!(out, "memory {}", self.memory);
        if let Some(caps) = &self.caps {
            out.push_str("caps");
            for &c in caps.as_slice() {
                let _ = write!(out, " {c}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses the `memtree-spec v1` wire format written by
    /// [`PolicySpec::spec_to_string`].
    ///
    /// Strict, like the tree parser on the other half of the handshake:
    /// unknown keys, duplicate keys, missing required keys, malformed
    /// values and trailing data are all [`SchedError::InvalidSpec`] —
    /// across a process boundary a lenient parser turns corruption into
    /// a silently different policy.
    pub fn spec_from_str(s: &str) -> Result<PolicySpec, SchedError> {
        let bad = |msg: String| SchedError::InvalidSpec(format!("spec wire format: {msg}"));
        let mut kind: Option<HeuristicKind> = None;
        let mut ao: Option<OrderKind> = None;
        let mut eo: Option<OrderKind> = None;
        let mut memory: Option<u64> = None;
        let mut caps: Option<AllotmentCaps> = None;
        for (no, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("line {}: missing value in {line:?}", no + 1)))?;
            let value = value.trim();
            let dup = |k: &str| bad(format!("line {}: duplicate key {k:?}", no + 1));
            match key {
                "kind" => {
                    if kind
                        .replace(
                            HeuristicKind::from_label(value)
                                .ok_or_else(|| bad(format!("unknown kind {value:?}")))?,
                        )
                        .is_some()
                    {
                        return Err(dup("kind"));
                    }
                }
                "ao" | "eo" => {
                    let parsed = OrderKind::from_label(value)
                        .ok_or_else(|| bad(format!("unknown order {value:?}")))?;
                    let slot = if key == "ao" { &mut ao } else { &mut eo };
                    if slot.replace(parsed).is_some() {
                        return Err(dup(key));
                    }
                }
                "memory" => {
                    let parsed = value
                        .parse::<u64>()
                        .map_err(|_| bad(format!("bad memory {value:?}")))?;
                    if memory.replace(parsed).is_some() {
                        return Err(dup("memory"));
                    }
                }
                "caps" => {
                    let parsed: Result<Vec<u32>, _> =
                        value.split_whitespace().map(str::parse::<u32>).collect();
                    let parsed =
                        parsed.map_err(|_| bad(format!("bad caps list on line {}", no + 1)))?;
                    if parsed.is_empty() {
                        return Err(bad("empty caps list".into()));
                    }
                    if caps.replace(AllotmentCaps::from_caps(parsed)).is_some() {
                        return Err(dup("caps"));
                    }
                }
                other => return Err(bad(format!("line {}: unknown key {other:?}", no + 1))),
            }
        }
        Ok(PolicySpec {
            kind: kind.ok_or_else(|| bad("missing kind".into()))?,
            ao: ao.ok_or_else(|| bad("missing ao".into()))?,
            eo: eo.ok_or_else(|| bad("missing eo".into()))?,
            memory: memory.ok_or_else(|| bad("missing memory".into()))?,
            caps,
        })
    }

    /// Resolves the spec against `tree`: applies any tree transformation
    /// the policy needs and computes its orders on the tree the policy
    /// will actually schedule.
    ///
    /// Feasibility (`M ≥` the policy's sequential booking peak) is checked
    /// when a scheduler state is minted, not here — an instance is pure
    /// preprocessed data.
    pub fn instantiate(&self, tree: &TaskTree) -> Result<PolicyInstance, SchedError> {
        let transformed = match self.kind {
            HeuristicKind::MemBookingRedTree => Some(Arc::new(to_reduction_tree(tree).tree)),
            _ => None,
        };
        let exec = transformed.as_deref().unwrap_or(tree);
        let ao = Arc::new(make_order(exec, self.ao));
        let eo = if self.eo == self.ao {
            ao.clone()
        } else {
            Arc::new(make_order(exec, self.eo))
        };
        PolicyInstance::from_parts(
            self.kind,
            self.memory,
            transformed,
            ao,
            eo,
            self.caps.clone(),
        )
    }
}

/// Free-function spelling of [`PolicySpec::spec_to_string`].
pub fn spec_to_string(spec: &PolicySpec) -> String {
    spec.spec_to_string()
}

/// Free-function spelling of [`PolicySpec::spec_from_str`].
///
/// # Errors
/// [`SchedError::InvalidSpec`] on any malformed, missing, duplicate or
/// trailing input — see [`PolicySpec::spec_from_str`].
pub fn spec_from_str(s: &str) -> Result<PolicySpec, SchedError> {
    PolicySpec::spec_from_str(s)
}

/// A [`PolicySpec`] resolved against a concrete tree: the (possibly
/// transformed) tree the policy schedules plus its precomputed orders.
///
/// Cheap to clone; mint fresh scheduler state per run with
/// [`PolicyInstance::scheduler`].
#[derive(Clone, Debug)]
pub struct PolicyInstance {
    kind: HeuristicKind,
    memory: u64,
    /// `Some` when the policy schedules a transformed tree (RedTree).
    transformed: Option<Arc<TaskTree>>,
    ao: Arc<Order>,
    eo: Arc<Order>,
    caps: Option<AllotmentCaps>,
}

impl PolicyInstance {
    /// Assembles an instance from preprocessed parts — the cache-friendly
    /// construction path used by sweep harnesses that share orders and
    /// transformed trees across many cells.
    ///
    /// `transformed` must be `Some` exactly for
    /// [`HeuristicKind::MemBookingRedTree`], and `ao`/`eo` must be orders
    /// *of the tree the policy schedules* (the transformed tree for
    /// RedTree, the original otherwise).
    pub fn from_parts(
        kind: HeuristicKind,
        memory: u64,
        transformed: Option<Arc<TaskTree>>,
        ao: Arc<Order>,
        eo: Arc<Order>,
        caps: Option<AllotmentCaps>,
    ) -> Result<Self, SchedError> {
        if transformed.is_some() != (kind == HeuristicKind::MemBookingRedTree) {
            return Err(SchedError::InvalidSpec(format!(
                "a transformed tree is required exactly for MemBookingRedTree, not {kind}"
            )));
        }
        if caps.is_some() && kind != HeuristicKind::MemBooking {
            return Err(SchedError::InvalidSpec(format!(
                "moldable allotment caps only apply to MemBooking, not {kind}"
            )));
        }
        Ok(PolicyInstance {
            kind,
            memory,
            transformed,
            ao,
            eo,
            caps,
        })
    }

    /// Which heuristic this instance runs.
    pub fn kind(&self) -> HeuristicKind {
        self.kind
    }

    /// The memory bound `M`.
    pub fn memory(&self) -> u64 {
        self.memory
    }

    /// Whether this instance carries moldable allotment caps.
    pub fn is_moldable(&self) -> bool {
        self.caps.is_some()
    }

    /// The moldable allotment caps, when the instance carries any —
    /// lets a platform reconstruct the spec it was built from (sharded
    /// execution re-derives per-shard specs this way).
    pub fn caps(&self) -> Option<&AllotmentCaps> {
        self.caps.as_ref()
    }

    /// The activation order (on [`PolicyInstance::exec_tree`]).
    pub fn ao(&self) -> &Order {
        &self.ao
    }

    /// The execution priority (on [`PolicyInstance::exec_tree`]).
    pub fn eo(&self) -> &Order {
        &self.eo
    }

    /// The tree the policy actually schedules: the reduction-tree
    /// transform for RedTree, `original` otherwise.
    ///
    /// Platforms must simulate/execute *this* tree, not `original`.
    pub fn exec_tree<'t>(&'t self, original: &'t TaskTree) -> &'t TaskTree {
        self.transformed.as_deref().unwrap_or(original)
    }

    /// Mints a fresh scheduler state for one run over `original`.
    ///
    /// Fails with [`SchedError::InfeasibleMemory`] when the bound is below
    /// the policy's sequential booking peak (Theorem 1's feasibility
    /// condition), and [`SchedError::OrderMismatch`] when the instance's
    /// orders do not belong to the tree.
    pub fn scheduler<'t>(
        &'t self,
        original: &'t TaskTree,
    ) -> Result<Box<dyn Scheduler + 't>, SchedError> {
        let tree = self.exec_tree(original);
        let (ao, eo, m) = (&*self.ao, &*self.eo, self.memory);
        Ok(match self.kind {
            HeuristicKind::Activation => Box::new(Activation::try_new(tree, ao, eo, m)?),
            HeuristicKind::MemBooking => Box::new(MemBooking::try_new(tree, ao, eo, m)?),
            HeuristicKind::MemBookingRef => Box::new(MemBookingRef::try_new(tree, ao, eo, m)?),
            HeuristicKind::MemBookingRedTree => Box::new(RedTreeBooking::try_new(tree, ao, eo, m)?),
            HeuristicKind::Sequential => Box::new(Sequential::try_new(tree, ao, m)?),
        })
    }

    /// Mints a fresh *moldable* scheduler state (requires caps; MemBooking
    /// only). Drive it with `memtree_sim::simulate_moldable` (virtual
    /// time) or `memtree_runtime::execute_moldable` (gang-scheduled real
    /// threads).
    pub fn moldable<'t>(
        &'t self,
        original: &'t TaskTree,
    ) -> Result<MoldableMemBooking<'t>, SchedError> {
        let caps = self.caps.clone().ok_or_else(|| {
            SchedError::InvalidSpec("moldable() requires a spec with allotment caps".into())
        })?;
        MoldableMemBooking::try_new(
            self.exec_tree(original),
            &self.ao,
            &self.eo,
            self.memory,
            caps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_sim::{simulate, SimConfig};

    #[test]
    fn every_kind_instantiates_and_runs() {
        let tree = memtree_gen::synthetic::paper_tree(150, 11);
        let ao = memtree_order::mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 30; // roomy: RedTree needs slack
        for kind in [
            HeuristicKind::Activation,
            HeuristicKind::MemBooking,
            HeuristicKind::MemBookingRef,
            HeuristicKind::MemBookingRedTree,
            HeuristicKind::Sequential,
        ] {
            let inst = PolicySpec::new(kind, m).instantiate(&tree).unwrap();
            let sched = inst
                .scheduler(&tree)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let exec = inst.exec_tree(&tree);
            let trace = simulate(exec, SimConfig::new(4, m), sched)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(trace.records.len(), exec.len(), "{kind}");
            memtree_sim::validate::validate_trace(exec, &trace).unwrap();
        }
    }

    #[test]
    fn redtree_instance_schedules_the_transformed_tree() {
        let tree = memtree_gen::synthetic::paper_tree(80, 3);
        let inst = PolicySpec::new(HeuristicKind::MemBookingRedTree, u64::MAX / 4)
            .instantiate(&tree)
            .unwrap();
        let exec = inst.exec_tree(&tree);
        assert!(exec.len() > tree.len(), "transform adds fictitious leaves");
        assert!(exec.nodes().all(|i| exec.exec(i) == 0));
        // Non-transforming kinds pass the original through.
        let plain = PolicySpec::new(HeuristicKind::MemBooking, 100)
            .instantiate(&tree)
            .unwrap();
        assert!(std::ptr::eq(plain.exec_tree(&tree), &tree));
    }

    #[test]
    fn infeasible_memory_surfaces_at_scheduler_minting() {
        let tree = memtree_gen::synthetic::paper_tree(60, 9);
        let ao = memtree_order::mem_postorder(&tree);
        let min = ao.sequential_peak(&tree);
        let inst = PolicySpec::new(HeuristicKind::MemBooking, min - 1)
            .instantiate(&tree)
            .unwrap();
        assert!(matches!(
            inst.scheduler(&tree),
            Err(SchedError::InfeasibleMemory { .. })
        ));
    }

    #[test]
    fn one_instance_mints_many_independent_schedulers() {
        let tree = memtree_gen::synthetic::paper_tree(100, 21);
        let ao = memtree_order::mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let inst = PolicySpec::new(HeuristicKind::MemBooking, m)
            .instantiate(&tree)
            .unwrap();
        let a = simulate(&tree, SimConfig::new(4, m), inst.scheduler(&tree).unwrap()).unwrap();
        let b = simulate(&tree, SimConfig::new(4, m), inst.scheduler(&tree).unwrap()).unwrap();
        assert_eq!(
            a.makespan, b.makespan,
            "runs are independent and deterministic"
        );
    }

    #[test]
    fn moldable_spec_builds() {
        let tree = memtree_gen::synthetic::paper_tree(60, 5);
        let ao = memtree_order::mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let caps = AllotmentCaps::uniform(&tree, 4);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
        let inst = spec.instantiate(&tree).unwrap();
        assert!(inst.is_moldable());
        let sched = inst.moldable(&tree).unwrap();
        let trace =
            memtree_sim::simulate_moldable(&tree, 4, m, memtree_sim::SpeedupModel::Linear, sched)
                .unwrap();
        trace
            .validate(&tree, memtree_sim::SpeedupModel::Linear)
            .unwrap();
    }

    #[test]
    fn invalid_spec_combinations_error_instead_of_panicking() {
        let tree = memtree_gen::synthetic::paper_tree(40, 1);
        let caps = AllotmentCaps::uniform(&tree, 2);
        // Caps on a non-MemBooking kind: a clean error through the
        // fallible path, not an abort.
        let err = PolicySpec::new(HeuristicKind::Activation, 1_000)
            .with_caps(caps)
            .instantiate(&tree)
            .unwrap_err();
        assert!(matches!(err, SchedError::InvalidSpec(_)), "got {err}");
        // moldable() without caps errors likewise.
        let inst = PolicySpec::new(HeuristicKind::MemBooking, 1_000)
            .instantiate(&tree)
            .unwrap();
        assert!(matches!(
            inst.moldable(&tree),
            Err(SchedError::InvalidSpec(_))
        ));
    }

    #[test]
    fn fingerprint_tracks_every_behavioural_field() {
        let base = PolicySpec::new(HeuristicKind::MemBooking, 1_000);
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let variants = [
            PolicySpec::new(HeuristicKind::Activation, 1_000),
            base.clone().with_memory(1_001),
            base.clone()
                .with_orders(OrderKind::CriticalPath, OrderKind::MemPostorder),
            base.clone()
                .with_orders(OrderKind::MemPostorder, OrderKind::CriticalPath),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
        // Caps change the fingerprint too.
        let tree = memtree_gen::synthetic::paper_tree(30, 2);
        let capped = base.clone().with_caps(AllotmentCaps::uniform(&tree, 2));
        assert_ne!(base.fingerprint(), capped.fingerprint());
    }

    #[test]
    fn spec_wire_roundtrip_is_fingerprint_equal() {
        let tree = memtree_gen::synthetic::paper_tree(30, 2);
        let specs = [
            PolicySpec::new(HeuristicKind::MemBooking, 12_345),
            PolicySpec::new(HeuristicKind::Activation, 1)
                .with_orders(OrderKind::OptSeq, OrderKind::CriticalPath),
            PolicySpec::new(HeuristicKind::MemBookingRedTree, u64::MAX),
            PolicySpec::new(HeuristicKind::Sequential, 7)
                .with_orders(OrderKind::PerfPostorder, OrderKind::AvgMemPostorder),
            PolicySpec::new(HeuristicKind::MemBooking, 999)
                .with_caps(AllotmentCaps::uniform(&tree, 4)),
        ];
        for spec in &specs {
            let text = spec.spec_to_string();
            let back = PolicySpec::spec_from_str(&text)
                .unwrap_or_else(|e| panic!("reparse of {text:?}: {e}"));
            assert_eq!(spec.fingerprint(), back.fingerprint(), "{text}");
            // The free-function spellings agree with the methods.
            assert_eq!(super::spec_to_string(spec), text);
            assert_eq!(
                super::spec_from_str(&text).unwrap().fingerprint(),
                spec.fingerprint()
            );
        }
    }

    #[test]
    fn spec_wire_parser_is_strict() {
        let good = PolicySpec::new(HeuristicKind::MemBooking, 42).spec_to_string();
        PolicySpec::spec_from_str(&good).unwrap();
        let reject = |text: String, why: &str| {
            let err = PolicySpec::spec_from_str(&text)
                .err()
                .unwrap_or_else(|| panic!("{why}: accepted {text:?}"));
            assert!(matches!(err, SchedError::InvalidSpec(_)), "{why}: {err}");
        };
        reject(format!("{good}kind MemBooking\n"), "duplicate key");
        reject(format!("{good}bogus 1\n"), "unknown key");
        reject(good.replace("kind MemBooking\n", ""), "missing kind");
        reject(good.replace("memory 42", "memory forty-two"), "bad memory");
        reject(good.replace("ao memPO", "ao nosuchorder"), "unknown order");
        reject("kind\n".into(), "key without value");
        reject(format!("{good}caps 1 2 x\n"), "bad caps entry");
        reject(format!("{good}caps\n"), "caps without value");
        // Comments and blank lines remain legal anywhere.
        PolicySpec::spec_from_str(&format!("# c\n\n{good}# tail\n")).unwrap();
    }

    #[test]
    fn order_kinds_are_respected() {
        let tree = memtree_gen::synthetic::paper_tree(90, 8);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, u64::MAX / 4)
            .with_orders(OrderKind::OptSeq, OrderKind::CriticalPath);
        let inst = spec.instantiate(&tree).unwrap();
        assert_eq!(inst.ao().kind(), OrderKind::OptSeq);
        assert_eq!(inst.eo().kind(), OrderKind::CriticalPath);
    }
}
