//! MemBooking optimised vs reference: bit-identical schedules, plus the
//! Theorem-1 termination guarantee and global memory invariants for every
//! policy.

use memtree_order::{cp_order, mem_postorder, OrderKind};
use memtree_sched::{Activation, MemBooking, MemBookingRef, SchedError};
use memtree_sim::{simulate, validate::validate_trace, SimConfig};
use memtree_tree::{TaskSpec, TaskTree};
use proptest::prelude::*;

fn arb_tree(max_n: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_n)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            let specs = proptest::collection::vec((0u64..30, 0u64..30, 0u32..6), n);
            (parents, specs)
        })
        .prop_map(|(parents, specs)| {
            let mut full: Vec<Option<usize>> = vec![None];
            full.extend(parents.into_iter().map(Some));
            let specs: Vec<TaskSpec> = specs
                .into_iter()
                .map(|(e, f, t)| TaskSpec::new(e, f, t as f64))
                .collect();
            TaskTree::from_parents(&full, &specs).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Algorithms 2–4 and Algorithms 5–6 produce the same schedule,
    /// event for event, across processor counts and memory pressures.
    #[test]
    fn optimized_matches_reference(
        tree in arb_tree(40),
        p in 1usize..6,
        factor_pct in 100u64..300,
    ) {
        let ao = mem_postorder(&tree);
        let min_m = ao.sequential_peak(&tree);
        let m = (min_m * factor_pct).div_ceil(100).max(1);

        let fast = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        let slow = MemBookingRef::try_new(&tree, &ao, &ao, m).unwrap();
        let cfg = SimConfig::new(p, m);
        let tf = simulate(&tree, cfg, fast).unwrap();
        let ts = simulate(&tree, cfg, slow).unwrap();

        prop_assert_eq!(tf.makespan, ts.makespan);
        prop_assert_eq!(tf.peak_booked, ts.peak_booked);
        for i in tree.nodes() {
            prop_assert_eq!(tf.record(i).start, ts.record(i).start, "node {:?}", i);
            prop_assert_eq!(tf.record(i).finish, ts.record(i).finish, "node {:?}", i);
        }
    }

    /// Theorem 1: with M exactly the sequential peak of AO, MemBooking
    /// completes the tree — on any number of processors.
    #[test]
    fn terminates_at_exactly_minimum_memory(tree in arb_tree(60), p in 1usize..9) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree).max(1);
        let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        let trace = simulate(&tree, SimConfig::new(p, m), s).unwrap();
        validate_trace(&tree, &trace).unwrap();
    }

    /// Below the guarantee, construction must refuse (never deadlock).
    #[test]
    fn below_minimum_is_rejected(tree in arb_tree(40)) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        prop_assume!(m > 0);
        for sched in [
            MemBooking::try_new(&tree, &ao, &ao, m - 1).err().map(|_| ()),
            MemBookingRef::try_new(&tree, &ao, &ao, m - 1).err().map(|_| ()),
            Activation::try_new(&tree, &ao, &ao, m - 1).err().map(|_| ()),
        ] {
            prop_assert_eq!(sched, Some(()));
        }
    }

    /// Both policies produce valid traces under every memory pressure and
    /// the booked memory never exceeds M (checked inside the engine) while
    /// actual stays under booked.
    #[test]
    fn traces_validate_across_pressures(
        tree in arb_tree(50),
        p in 1usize..5,
        factor_pct in 100u64..500,
    ) {
        let ao = mem_postorder(&tree);
        let eo = cp_order(&tree);
        let min_m = ao.sequential_peak(&tree);
        let m = (min_m * factor_pct).div_ceil(100).max(1);
        let cfg = SimConfig::new(p, m);

        let mb = simulate(&tree, cfg, MemBooking::try_new(&tree, &ao, &eo, m).unwrap()).unwrap();
        validate_trace(&tree, &mb).unwrap();
        let ac = simulate(&tree, cfg, Activation::try_new(&tree, &ao, &eo, m).unwrap()).unwrap();
        validate_trace(&tree, &ac).unwrap();

        // MemBooking books no more than it needs: peak booked ≤ M always
        // (engine-checked) and never exceeds the total footprint.
        prop_assert!(mb.peak_booked <= m);
    }

    /// MemBooking with one processor takes exactly the serial time.
    #[test]
    fn single_processor_serialises(tree in arb_tree(40)) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree).max(1);
        let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        let trace = simulate(&tree, SimConfig::new(1, m), s).unwrap();
        prop_assert!((trace.makespan - tree.total_time()).abs() < 1e-9);
    }

    /// More memory never slows MemBooking down (monotonicity smoke check —
    /// not a theorem of the paper, but a strong regression signal for the
    /// booking logic on identical EO tie-breaking).
    #[test]
    fn huge_memory_reaches_greedy_parallelism(tree in arb_tree(40), p in 2usize..5) {
        // With unbounded memory every policy degenerates to plain list
        // scheduling by EO; MemBooking must reach it.
        let ao = mem_postorder(&tree);
        let total: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let s = MemBooking::try_new(&tree, &ao, &ao, total).unwrap();
        let a = simulate(&tree, SimConfig::new(p, total), s).unwrap();
        let s2 = Activation::try_new(&tree, &ao, &ao, total).unwrap();
        let b = simulate(&tree, SimConfig::new(p, total), s2).unwrap();
        // With memory a non-constraint the two heuristics coincide.
        prop_assert_eq!(a.makespan, b.makespan);
    }
}

#[test]
fn infeasible_error_carries_requirements() {
    let tree = memtree_gen::shapes::chain(4, TaskSpec::new(2, 10, 1.0));
    let ao = mem_postorder(&tree);
    let need = ao.sequential_peak(&tree);
    match MemBooking::try_new(&tree, &ao, &ao, need - 1).err() {
        Some(SchedError::InfeasibleMemory {
            required,
            available,
        }) => {
            assert_eq!(required, need);
            assert_eq!(available, need - 1);
        }
        other => panic!("expected InfeasibleMemory, got {other:?}"),
    }
}

#[test]
fn order_kinds_all_work_as_ao_eo() {
    let tree = memtree_gen::synthetic::paper_tree(80, 9);
    for ao_kind in [
        OrderKind::MemPostorder,
        OrderKind::OptSeq,
        OrderKind::PerfPostorder,
    ] {
        for eo_kind in [OrderKind::CriticalPath, OrderKind::MemPostorder] {
            let ao = memtree_order::make_order(&tree, ao_kind);
            let eo = memtree_order::make_order(&tree, eo_kind);
            let m = ao.sequential_peak(&tree) * 2;
            let s = MemBooking::try_new(&tree, &ao, &eo, m).unwrap();
            let trace = simulate(&tree, SimConfig::new(4, m), s).unwrap();
            validate_trace(&tree, &trace).unwrap();
        }
    }
}
