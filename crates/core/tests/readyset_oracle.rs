//! Differential proptest: [`memtree_sched::RankQueue`] vs a
//! `BinaryHeap<Reverse<u32>>` oracle (DESIGN.md §6.11).
//!
//! The queue's contract is a min-priority set over a fixed rank
//! universe, with each rank present at most once. The oracle is the
//! obviously-correct heap; the properties drive both through the same
//! operation sequences — interleaved insert/pop, full drains followed
//! by dense re-insertion (which exercises the monotone `cursor` reset
//! path), and the max-rank / word-boundary edges of the three-level
//! bitmap.

use memtree_sched::RankQueue;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Oracle wrapper keeping the "each rank present at most once"
/// precondition the queue documents.
struct Oracle {
    heap: BinaryHeap<Reverse<u32>>,
    present: HashSet<u32>,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            heap: BinaryHeap::new(),
            present: HashSet::new(),
        }
    }
    fn insert(&mut self, rank: u32) -> bool {
        if self.present.insert(rank) {
            self.heap.push(Reverse(rank));
            true
        } else {
            false
        }
    }
    fn pop_min(&mut self) -> Option<u32> {
        let Reverse(rank) = self.heap.pop()?;
        self.present.remove(&rank);
        Some(rank)
    }
    fn peek_min(&self) -> Option<u32> {
        self.heap.peek().map(|&Reverse(rank)| rank)
    }
    fn len(&self) -> usize {
        self.present.len()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    PopMin,
    /// Pop everything, checking order, then re-insert `k` dense ranks
    /// starting at 0 — the pattern the schedulers produce between
    /// frontier waves, and the one that must reset the pop cursor.
    DrainThenDense(u16),
}

fn op_strategy(universe: u32) -> impl Strategy<Value = Op> {
    // Weighted choice by discriminant range: 4/8 insert, 3/8 pop, 1/8
    // drain-then-dense (the vendored proptest has no `prop_oneof!`).
    (0u8..8, 0..universe, 0u16..64).prop_map(|(d, rank, k)| match d {
        0..=3 => Op::Insert(rank),
        4..=6 => Op::PopMin,
        _ => Op::DrainThenDense(k),
    })
}

fn check_agree(queue: &RankQueue, oracle: &Oracle) {
    assert_eq!(queue.len(), oracle.len(), "len diverged");
    assert_eq!(queue.is_empty(), oracle.len() == 0, "is_empty diverged");
    assert_eq!(queue.peek_min(), oracle.peek_min(), "peek_min diverged");
}

fn run_ops(universe: u32, ops: &[Op]) {
    let mut queue = RankQueue::with_universe(universe as usize);
    let mut oracle = Oracle::new();
    for op in ops {
        match op {
            Op::Insert(rank) => {
                // The queue forbids double-insertion of a present rank;
                // the oracle tracks presence so we only mirror fresh ones.
                if oracle.insert(*rank) {
                    queue.insert(*rank);
                }
            }
            Op::PopMin => {
                assert_eq!(queue.pop_min(), oracle.pop_min(), "pop_min diverged");
            }
            Op::DrainThenDense(k) => {
                loop {
                    let (a, b) = (queue.pop_min(), oracle.pop_min());
                    assert_eq!(a, b, "drain order diverged");
                    if a.is_none() {
                        break;
                    }
                }
                assert!(queue.is_empty());
                let dense = u32::from(*k).min(universe);
                for rank in 0..dense {
                    if oracle.insert(rank) {
                        queue.insert(rank);
                    }
                }
            }
        }
        check_agree(&queue, &oracle);
    }
    // Final full drain must agree to the end.
    loop {
        let (a, b) = (queue.pop_min(), oracle.pop_min());
        assert_eq!(a, b, "final drain diverged");
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    /// Arbitrary interleavings over a universe spanning several level-0
    /// words and at least one level-1 word boundary.
    #[test]
    fn matches_heap_oracle(ops in proptest::collection::vec(op_strategy(300), 150)) {
        run_ops(300, &ops);
    }

    /// A one-word universe: every rank shares words[0], so all the
    /// bit-level edge cases (first/last bit, single survivor) recur.
    #[test]
    fn matches_heap_oracle_tiny_universe(ops in proptest::collection::vec(op_strategy(7), 80)) {
        run_ops(7, &ops);
    }
}

/// Max-rank boundary: the highest representable rank in universes sized
/// exactly at and just past the 64-bit word edges.
#[test]
fn max_rank_at_word_boundaries() {
    for universe in [1usize, 63, 64, 65, 4095, 4096, 4097] {
        let mut queue = RankQueue::with_universe(universe);
        let max = (universe - 1) as u32;
        queue.insert(max);
        assert_eq!(queue.peek_min(), Some(max));
        if max > 0 {
            queue.insert(0);
            assert_eq!(queue.pop_min(), Some(0));
        }
        assert_eq!(queue.pop_min(), Some(max));
        assert_eq!(queue.pop_min(), None);
        assert!(queue.is_empty());
    }
}

/// Dense re-insertion after a full drain: pops advance the internal
/// cursor monotonically; re-inserting low ranks afterwards must reset
/// it, or the minimum silently disappears.
#[test]
fn dense_reinsert_after_full_drain() {
    let universe = 4096;
    let mut queue = RankQueue::with_universe(universe);
    // Drain from the high end so the cursor walks all the way up.
    for rank in (universe as u32 - 64)..universe as u32 {
        queue.insert(rank);
    }
    while queue.pop_min().is_some() {}
    // Now the low end must still work.
    for rank in 0..128u32 {
        queue.insert(rank);
    }
    for rank in 0..128u32 {
        assert_eq!(queue.pop_min(), Some(rank));
    }
    assert_eq!(queue.pop_min(), None);
}
