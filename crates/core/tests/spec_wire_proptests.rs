//! Property-based tests of the `memtree-spec v1` wire format: any spec,
//! any order pair, any caps vector — the round trip through text is
//! fingerprint-equal, so a serialized spec addresses exactly the policy
//! its sender meant.

use memtree_order::OrderKind;
use memtree_sched::{spec_from_str, spec_to_string, AllotmentCaps, HeuristicKind, PolicySpec};
use proptest::prelude::*;

const ORDERS: [OrderKind; 6] = [
    OrderKind::MemPostorder,
    OrderKind::OptSeq,
    OrderKind::CriticalPath,
    OrderKind::PerfPostorder,
    OrderKind::AvgMemPostorder,
    OrderKind::NaturalPostorder,
];

fn arb_kind() -> impl Strategy<Value = HeuristicKind> {
    (0usize..HeuristicKind::all().len()).prop_map(|i| HeuristicKind::all()[i])
}

fn arb_order() -> impl Strategy<Value = OrderKind> {
    (0usize..ORDERS.len()).prop_map(|i| ORDERS[i])
}

fn arb_caps() -> impl Strategy<Value = Option<Vec<u32>>> {
    (0u8..2, 1usize..40)
        .prop_flat_map(|(some, len)| (Just(some), proptest::collection::vec(1u32..64, len)))
        .prop_map(|(some, caps)| (some == 1).then_some(caps))
}

/// Short garbage from a charset that cannot spell a legal spec key.
fn arb_garbage() -> impl Strategy<Value = String> {
    (1usize..11)
        .prop_flat_map(|len| proptest::collection::vec(0usize..3, len))
        .prop_map(|ixs| ixs.into_iter().map(|i| ['x', 'q', 'z'][i]).collect())
}

fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    (
        arb_kind(),
        arb_order(),
        arb_order(),
        0u64..=u64::MAX,
        arb_caps(),
    )
        .prop_map(|(kind, ao, eo, memory, caps)| PolicySpec {
            kind,
            ao,
            eo,
            memory,
            caps: caps.map(AllotmentCaps::from_caps),
        })
}

proptest! {
    #[test]
    fn spec_wire_roundtrip_is_fingerprint_equal(spec in arb_spec()) {
        let text = spec_to_string(&spec);
        let back = spec_from_str(&text).unwrap();
        prop_assert_eq!(back.fingerprint(), spec.fingerprint());
        // And the round trip is textually stable (a fixpoint): the
        // re-serialisation is byte-identical.
        prop_assert_eq!(spec_to_string(&back), text);
    }

    #[test]
    fn spec_wire_rejects_trailing_garbage(spec in arb_spec(), garbage in arb_garbage()) {
        // Any non-comment trailing line is an unknown key or a missing
        // value — strictly rejected either way (the charset cannot spell
        // a legal key, which would be a *duplicate*-key rejection or, for
        // caps on a caps-less spec, a silent acceptance).
        let text = format!("{}{garbage} 1\n", spec_to_string(&spec));
        prop_assert!(spec_from_str(&text).is_err());
    }

    #[test]
    fn spec_wire_rejects_duplicated_documents(spec in arb_spec()) {
        let text = spec_to_string(&spec);
        prop_assert!(spec_from_str(&format!("{text}{text}")).is_err());
    }
}
