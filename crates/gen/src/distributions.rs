//! Small probability distributions used by the generators.
//!
//! Implemented by hand (inverse-CDF sampling) so the workspace does not need
//! `rand_distr`.

use rand::Rng;

/// A scaled, truncated exponential distribution.
///
/// Samples `scale · X` with `X ~ Exp(rate)`, clamped into `[lo, hi]`. The
/// paper's synthetic edge weights use `rate = 1`, `scale = 100`,
/// `[lo, hi] = [10, 10000]` (Section 7.1: "a truncated exponential
/// distribution of parameter 1 … multiplied by 100 and then truncated to
/// fit in the interval [10; 10.000]").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TruncatedExp {
    /// Rate λ of the exponential.
    pub rate: f64,
    /// Multiplier applied to the raw sample.
    pub scale: f64,
    /// Lower clamp.
    pub lo: f64,
    /// Upper clamp.
    pub hi: f64,
}

impl TruncatedExp {
    /// The paper's edge-weight distribution.
    pub fn paper_edge_weights() -> Self {
        TruncatedExp {
            rate: 1.0,
            scale: 100.0,
            lo: 10.0,
            hi: 10_000.0,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF of Exp(rate): -ln(1 - U) / rate, with U in [0, 1).
        let u: f64 = rng.random();
        let x = -(1.0 - u).ln() / self.rate;
        (self.scale * x).clamp(self.lo, self.hi)
    }
}

/// A discrete distribution over `1..=probs.len()` given by cumulative
/// weights. Used for the node-degree distribution of Section 7.1.
#[derive(Clone, Debug)]
pub struct DegreeDistribution {
    cumulative: Vec<f64>,
}

impl DegreeDistribution {
    /// Builds the distribution from per-degree weights for degrees
    /// `1, 2, …, probs.len()`. Weights are normalised to sum to 1 — the
    /// paper's own table sums to 0.99, so exact unity cannot be required.
    pub fn new(probs: &[f64]) -> Self {
        assert!(!probs.is_empty(), "need at least one degree");
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
        let total: f64 = probs.iter().sum();
        assert!(total > 0.0, "degree probabilities must have a positive sum");
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in probs {
            acc += p / total;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        *cumulative.last_mut().unwrap() = 1.0;
        DegreeDistribution { cumulative }
    }

    /// The paper's degree distribution: Pr(1) = 0.58, Pr(2) = 0.17,
    /// Pr(3) = Pr(4) = Pr(5) = 0.08 (the table in Section 7.1; favouring
    /// small degrees "to avoid very large and short trees"). The published
    /// numbers sum to 0.99; they are normalised here.
    pub fn paper() -> Self {
        Self::new(&[0.58, 0.17, 0.08, 0.08, 0.08])
    }

    /// Draws a degree in `1..=max_degree`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // Linear scan: the support has ≤ 5 entries in practice.
        for (k, &c) in self.cumulative.iter().enumerate() {
            if u < c {
                return k + 1;
            }
        }
        self.cumulative.len()
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (k, &c) in self.cumulative.iter().enumerate() {
            mean += (k + 1) as f64 * (c - prev);
            prev = c;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truncated_exp_respects_bounds() {
        let d = TruncatedExp::paper_edge_weights();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=10_000.0).contains(&x), "sample {x} out of range");
        }
    }

    #[test]
    fn truncated_exp_mean_close_to_scale() {
        // E[100·Exp(1)] = 100; truncation at 10 raises it slightly, the cap
        // at 10000 is negligible. Expect a mean around 103–106.
        let d = TruncatedExp::paper_edge_weights();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((100.0..112.0).contains(&mean), "mean {mean} looks wrong");
    }

    #[test]
    fn degree_distribution_frequencies_match() {
        let d = DegreeDistribution::paper();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[d.sample(&mut rng) - 1] += 1;
        }
        let expected = [0.58, 0.17, 0.08, 0.08, 0.08].map(|p| p / 0.99);
        for (k, &e) in expected.iter().enumerate() {
            let freq = counts[k] as f64 / n as f64;
            assert!(
                (freq - e).abs() < 0.01,
                "degree {} frequency {freq} vs expected {e}",
                k + 1
            );
        }
    }

    #[test]
    fn degree_mean() {
        let d = DegreeDistribution::paper();
        assert!((d.mean() - 1.88 / 0.99).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn bad_probabilities_rejected() {
        DegreeDistribution::new(&[0.0, 0.0]);
    }
}
