//! **Streaming million-node generators** for the hot-path benchmarks
//! (DESIGN.md §6.11).
//!
//! The named [`crate::shapes`] builders are fine at test scale but the
//! hot-path sweep builds 10⁵–10⁶-node trees per cell; this module
//! streams `(parent, spec)` pairs straight into a pre-sized
//! [`TreeBuilder`] — the parent of node `i` is computed, not stored, so
//! generation costs **no per-node `Vec` churn**: the only allocations
//! are the builder's SoA arrays (sized up front) and the CSR arrays
//! `build()` assembles, a constant number of allocations regardless of
//! `n`.
//!
//! Specs follow a reduction-style pattern (modest execution data, output
//! no larger than the combined inputs) so the sequential peak — and with
//! it the memory bound of a bench cell — stays `O(height + degree)`
//! rather than `O(n)`: the interesting regime, where the scheduler's
//! ready set and booking ledger actually cycle.

use memtree_tree::{TaskSpec, TaskTree, TreeBuilder};
use rand::Rng;
use rand::SeedableRng;

/// The tree families the hot-path sweep exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LargeShape {
    /// A single dependency chain: serial pops, height `n` — the
    /// worst case for position-shifting running sets.
    Chain,
    /// A caterpillar with `legs` leaves per spine node: bursts of
    /// parallel leaves feeding a serial spine.
    Caterpillar {
        /// Leaves per spine node.
        legs: u32,
    },
    /// A random recursive tree (parent of `i` uniform over `0..i`):
    /// logarithmic expected height, high-degree hubs.
    Random,
}

impl LargeShape {
    /// Stable label for bench output.
    pub fn label(&self) -> &'static str {
        match self {
            LargeShape::Chain => "chain",
            LargeShape::Caterpillar { .. } => "caterpillar",
            LargeShape::Random => "random",
        }
    }
}

/// Builds an `n`-node tree of the given shape, deterministic in `seed`
/// (the seed only matters for [`LargeShape::Random`]).
///
/// Single streaming pass, O(1) allocations beyond the tree's own arrays.
pub fn build(shape: LargeShape, n: usize, seed: u64) -> TaskTree {
    assert!(n > 0);
    let mut b = TreeBuilder::with_capacity(n);
    match shape {
        LargeShape::Chain => {
            // Root first (node 0), each node the parent of the next —
            // node i's only child is i + 1; leaf last. Uniform
            // reduction-ish specs keep the chain's sequential peak tiny.
            let spec = TaskSpec::new(2, 8, 1.0);
            b.push(None, spec);
            for i in 1..n {
                b.push_with_parent_index(Some(i - 1), spec);
            }
        }
        LargeShape::Caterpillar { legs } => {
            let legs = legs.max(1) as usize;
            let spine_spec = TaskSpec::new(2, 6, 1.0);
            let leg_spec = TaskSpec::new(1, 3, 1.0);
            // Stream blocks of `1 + legs`: each block pushes the next
            // spine node first, then the current spine node's legs. The
            // spine child therefore precedes the legs in child order, so
            // a plain postorder descends the spine before holding any
            // leg outputs — the sequential peak stays O(legs), not O(n).
            let mut spine = 0usize;
            let mut emitted = 1usize;
            b.push(None, spine_spec);
            while emitted < n {
                let new_spine = emitted;
                b.push_with_parent_index(Some(spine), spine_spec);
                emitted += 1;
                let block_legs = legs.min(n - emitted);
                for _ in 0..block_legs {
                    b.push_with_parent_index(Some(spine), leg_spec);
                }
                emitted += block_legs;
                spine = new_spine;
            }
        }
        LargeShape::Random => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let spec = TaskSpec::new(1, 4, 1.0);
            b.push(None, spec);
            for i in 1..n {
                let p = rng.random_range(0..i);
                b.push_with_parent_index(Some(p), spec);
            }
        }
    }
    debug_assert_eq!(b.len(), n);
    b.build().expect("streamed shapes are valid trees")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_matches_named_shape() {
        let spec = TaskSpec::new(2, 8, 1.0);
        let named = crate::shapes::chain(100, spec);
        let streamed = build(LargeShape::Chain, 100, 0);
        assert_eq!(streamed.len(), named.len());
        for i in streamed.nodes() {
            assert_eq!(streamed.parent(i), named.parent(i));
            assert_eq!(streamed.exec(i), named.exec(i));
            assert_eq!(streamed.output(i), named.output(i));
        }
    }

    #[test]
    fn random_matches_named_shape() {
        // Same parent stream as shapes::random_recursive for the same
        // seed (both draw uniform over 0..i from StdRng).
        let spec = TaskSpec::new(1, 4, 1.0);
        let named = crate::shapes::random_recursive(500, spec, 42);
        let streamed = build(LargeShape::Random, 500, 42);
        for i in streamed.nodes() {
            assert_eq!(streamed.parent(i), named.parent(i));
        }
    }

    #[test]
    fn caterpillar_shape_is_sound() {
        let t = build(LargeShape::Caterpillar { legs: 3 }, 1000, 0);
        assert_eq!(t.len(), 1000);
        memtree_tree::validate::check_consistency(&t).unwrap();
        // Roughly 3 leaves per spine node.
        let leaves = t.leaves().count();
        assert!(leaves > 700, "caterpillar is leaf-dominated: {leaves}");
    }

    #[test]
    fn sequential_peak_stays_flat() {
        // The bench regime: the memory bound of a 10×-larger tree must
        // not grow 10× (else big cells book everything up front and the
        // ready set never cycles).
        for shape in [
            LargeShape::Chain,
            LargeShape::Caterpillar { legs: 4 },
            LargeShape::Random,
        ] {
            let small = build(shape, 1_000, 7);
            let big = build(shape, 10_000, 7);
            let peak = |t: &TaskTree| {
                let po = memtree_tree::traverse::postorder(t);
                memtree_tree::memory::sequential_peak(t, &po).unwrap()
            };
            let (ps, pb) = (peak(&small), peak(&big));
            assert!(
                pb < ps.saturating_mul(4),
                "{}: peak grew {ps} -> {pb}",
                shape.label()
            );
        }
    }

    #[test]
    fn exact_block_boundaries() {
        // n that lands mid-block must still produce a valid tree.
        for n in [1usize, 2, 5, 6, 7, 23] {
            let t = build(LargeShape::Caterpillar { legs: 4 }, n, 0);
            assert_eq!(t.len(), n);
            memtree_tree::validate::check_consistency(&t).unwrap();
        }
    }
}
