#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Synthetic task-tree generators.
//!
//! [`synthetic`] reproduces the random-tree family of Section 7.1 of the
//! paper (degree distribution over `[1, 5]`, truncated-exponential edge
//! weights, execution data at 10 % of the output size). [`shapes`] provides
//! deterministic families — chains, stars, k-ary trees, caterpillars,
//! spindles — used by unit tests, adversarial cases and ablations.
//!
//! All generators are deterministic given a seed.

pub mod distributions;
pub mod large;
pub mod shapes;
pub mod synthetic;

pub use distributions::TruncatedExp;
pub use large::LargeShape;
pub use synthetic::{FrontierDiscipline, SyntheticConfig, TimeMode};
