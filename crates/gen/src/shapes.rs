//! Deterministic tree families for tests, adversarial cases and ablations.

use memtree_tree::{NodeId, TaskSpec, TaskTree, TreeBuilder};

/// A chain of `n` nodes: node 0 is the root, node `n-1` the single leaf.
/// Every node gets `spec`.
pub fn chain(n: usize, spec: TaskSpec) -> TaskTree {
    assert!(n > 0);
    let mut b = TreeBuilder::with_capacity(n);
    b.push(None, spec);
    for i in 1..n {
        b.push_with_parent_index(Some(i - 1), spec);
    }
    b.build().expect("chain is a valid tree")
}

/// A star: one root with `n - 1` leaf children.
pub fn star(n: usize, root_spec: TaskSpec, leaf_spec: TaskSpec) -> TaskTree {
    assert!(n > 0);
    let mut b = TreeBuilder::with_capacity(n);
    let r = b.push(None, root_spec);
    for _ in 1..n {
        b.push(Some(r), leaf_spec);
    }
    b.build().expect("star is a valid tree")
}

/// A complete `k`-ary tree of the given `depth` (depth 0 = single node).
/// Every node gets `spec`.
pub fn complete_kary(k: usize, depth: usize, spec: TaskSpec) -> TaskTree {
    assert!(k >= 1);
    let mut b = TreeBuilder::new();
    let root = b.push(None, spec);
    let mut frontier = vec![(root, 0usize)];
    let mut next = Vec::new();
    for _ in 0..depth {
        for &(node, _) in &frontier {
            for _ in 0..k {
                next.push((b.push(Some(node), spec), 0));
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    b.build().expect("k-ary tree is valid")
}

/// A caterpillar: a spine chain of `spine` nodes, each spine node carrying
/// `legs` leaf children. Spine nodes get `spine_spec`, legs `leg_spec`.
pub fn caterpillar(
    spine: usize,
    legs: usize,
    spine_spec: TaskSpec,
    leg_spec: TaskSpec,
) -> TaskTree {
    assert!(spine > 0);
    let mut b = TreeBuilder::new();
    let mut prev = b.push(None, spine_spec);
    for _ in 0..legs {
        b.push(Some(prev), leg_spec);
    }
    for _ in 1..spine {
        let cur = b.push(Some(prev), spine_spec);
        for _ in 0..legs {
            b.push(Some(cur), leg_spec);
        }
        prev = cur;
    }
    b.build().expect("caterpillar is valid")
}

/// A "spindle": `width` parallel chains of length `depth` merging into one
/// root — maximal independent parallelism with deep branches.
pub fn spindle(width: usize, depth: usize, spec: TaskSpec) -> TaskTree {
    assert!(width > 0 && depth > 0);
    let mut b = TreeBuilder::new();
    let root = b.push(None, spec);
    for _ in 0..width {
        let mut prev = b.push(Some(root), spec);
        for _ in 1..depth {
            prev = b.push(Some(prev), spec);
        }
    }
    b.build().expect("spindle is valid")
}

/// A random recursive tree: node `i`'s parent is uniform over `0..i`.
/// Shapes only; all nodes get `spec`. Deterministic in `seed`.
pub fn random_recursive(n: usize, spec: TaskSpec, seed: u64) -> TaskTree {
    use rand::Rng;
    use rand::SeedableRng;
    assert!(n > 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::with_capacity(n);
    b.push(None, spec);
    for i in 1..n {
        let p = rng.random_range(0..i);
        b.push_with_parent_index(Some(p), spec);
    }
    b.build().expect("random recursive tree is valid")
}

/// A balanced binary **reduction tree**: `n_i = 0` and
/// `f_i = Σ f_children` exactly (every merge preserves data volume), with
/// `leaves` leaf tasks of output size `leaf_output`. The classic shape of
/// the trees the MemBookingRedTree baseline was designed for.
pub fn binary_reduction(leaves: usize, leaf_output: u64, time: f64) -> TaskTree {
    assert!(leaves > 0);
    // Build bottom-up level by level; parents created after children via
    // forward references is awkward, so construct top-down instead: a
    // complete binary tree with `leaves` leaves (last level possibly
    // partial), then size outputs bottom-up.
    // Simpler: build the structure with parents known (heap layout).
    // Heap layout works when leaves is a power of two; for generality use
    // pairwise merging bottom-up with explicit parent patching.
    let mut parents: Vec<Option<usize>> = Vec::new();
    let mut level: Vec<usize> = Vec::new();
    for _ in 0..leaves {
        parents.push(None);
        level.push(parents.len() - 1);
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                parents.push(None);
                let p = parents.len() - 1;
                parents[pair[0]] = Some(p);
                parents[pair[1]] = Some(p);
                next.push(p);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    // Outputs: leaves get leaf_output, internal nodes the sum of children.
    let n = parents.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &p) in parents.iter().enumerate() {
        if let Some(p) = p {
            children[p].push(i);
        }
    }
    let mut output = vec![0u64; n];
    // Nodes were created children-before-parents, so a forward scan works.
    for i in 0..n {
        output[i] = if children[i].is_empty() {
            leaf_output
        } else {
            children[i].iter().map(|&c| output[c]).sum()
        };
    }
    let specs: Vec<TaskSpec> = output
        .iter()
        .map(|&f| TaskSpec::reduction(f, time))
        .collect();
    TaskTree::from_parents(&parents, &specs).expect("reduction tree is valid")
}

/// Id of the deepest leaf of `tree` (ties broken by smallest id).
pub fn deepest_leaf(tree: &TaskTree) -> NodeId {
    let depth = memtree_tree::traverse::depths(tree);
    tree.leaves()
        .max_by_key(|l| (depth[l.index()], std::cmp::Reverse(l.index())))
        .expect("trees always have a leaf")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::validate::check_consistency;
    use memtree_tree::TreeStats;

    fn spec() -> TaskSpec {
        TaskSpec::new(1, 2, 1.0)
    }

    #[test]
    fn chain_shape() {
        let t = chain(5, spec());
        check_consistency(&t).unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.height, 4);
        assert_eq!(s.max_degree, 1);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn star_shape() {
        let t = star(6, spec(), spec());
        let s = TreeStats::compute(&t);
        assert_eq!(s.height, 1);
        assert_eq!(s.max_degree, 5);
        assert_eq!(t.leaf_count(), 5);
    }

    #[test]
    fn kary_shape() {
        let t = complete_kary(2, 3, spec());
        assert_eq!(t.len(), 15);
        let s = TreeStats::compute(&t);
        assert_eq!(s.height, 3);
        assert_eq!(t.leaf_count(), 8);
        check_consistency(&t).unwrap();
    }

    #[test]
    fn kary_degenerate_is_chain() {
        let t = complete_kary(1, 4, spec());
        assert_eq!(t.len(), 5);
        assert_eq!(TreeStats::compute(&t).max_degree, 1);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(4, 3, spec(), spec());
        assert_eq!(t.len(), 4 + 12);
        let s = TreeStats::compute(&t);
        assert_eq!(s.height, 4);
        // Spine nodes have legs + 1 children except the last (legs).
        assert_eq!(s.max_degree, 4);
        check_consistency(&t).unwrap();
    }

    #[test]
    fn spindle_shape() {
        let t = spindle(3, 4, spec());
        assert_eq!(t.len(), 1 + 12);
        let s = TreeStats::compute(&t);
        assert_eq!(s.height, 4);
        assert_eq!(t.leaf_count(), 3);
        check_consistency(&t).unwrap();
    }

    #[test]
    fn random_recursive_deterministic() {
        let a = random_recursive(50, spec(), 7);
        let b = random_recursive(50, spec(), 7);
        assert_eq!(a, b);
        let c = random_recursive(50, spec(), 8);
        assert_ne!(a, c, "different seeds should differ");
        check_consistency(&a).unwrap();
    }

    #[test]
    fn binary_reduction_is_a_reduction_tree() {
        for leaves in [1usize, 2, 3, 5, 8, 13] {
            let t = binary_reduction(leaves, 4, 1.0);
            check_consistency(&t).unwrap();
            assert_eq!(t.leaf_count(), leaves);
            for i in t.nodes() {
                assert_eq!(t.exec(i), 0);
                if !t.is_leaf(i) {
                    assert_eq!(t.output(i), t.input_size(i), "node {i:?} not a reduction");
                }
            }
            assert_eq!(t.output(t.root()), 4 * leaves as u64);
        }
    }

    #[test]
    fn deepest_leaf_found() {
        let t = caterpillar(3, 1, spec(), spec());
        let l = deepest_leaf(&t);
        let s = TreeStats::compute(&t);
        let maxd = t.leaves().map(|x| s.depth[x.index()]).max().unwrap();
        assert_eq!(s.depth[l.index()], maxd);
    }
}
