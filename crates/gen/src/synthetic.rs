//! The paper's synthetic tree generator (Section 7.1).
//!
//! Trees are grown from the root by sampling a child count for every node
//! from the degree distribution `Pr(δ = 1) = 0.58`, `Pr(2) = 0.17`,
//! `Pr(3) = Pr(4) = Pr(5) = 0.08`, stopping once the requested node count is
//! reached (the unexpanded frontier becomes leaves). Edge weights follow a
//! truncated exponential (`100·Exp(1)` clamped to `[10, 10000]`); the
//! execution data of a node is 10 % of its outgoing edge weight.
//!
//! The paper says processing time is "proportional to its outgoing edge
//! degree" — given the sentence reads like a slip for *weight* (a node's
//! outgoing edge has no degree) we default to time ∝ output size and expose
//! [`TimeMode`] for the other readings.
//!
//! The expansion discipline changes the tree's aspect ratio: FIFO expansion
//! yields shallow bushy trees, LIFO yields deep ones. The paper reports
//! average heights of 63 / 95 / 131 for 1k / 10k / 100k nodes; a random
//! frontier discipline reproduces that intermediate regime best and is the
//! default (see EXPERIMENTS.md for the calibration).

use crate::distributions::{DegreeDistribution, TruncatedExp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use memtree_tree::{TaskSpec, TaskTree, TreeBuilder};

/// Calibrated bias toward depth-first expansion used by
/// [`SyntheticConfig::paper`]; see EXPERIMENTS.md for the measured heights.
pub const PAPER_Q: f64 = 0.8;

/// How the generator picks the next frontier node to expand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FrontierDiscipline {
    /// Expand the oldest frontier node (BFS): shallow, bushy trees.
    Fifo,
    /// Expand the newest frontier node (DFS): deep, narrow trees.
    Lifo,
    /// Expand a uniformly random frontier node: heights ≈ e·ln n.
    Random,
    /// With probability `q` expand the newest frontier node, otherwise a
    /// uniformly random one. Interpolates between `Random` (q = 0) and
    /// `Lifo` (q = 1); the default `q` is calibrated so average heights
    /// land near the paper's reported 63 / 95 / 131 for 1k / 10k / 100k
    /// nodes (see EXPERIMENTS.md).
    BiasedNewest {
        /// Probability of continuing from the newest frontier node.
        q: f64,
    },
}

/// How processing times are derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeMode {
    /// `t_i = time_factor · f_i` (default; see module docs).
    ProportionalToOutput,
    /// `t_i = time_factor · degree(i)` (literal reading of the paper).
    ProportionalToDegree,
    /// `t_i = time_factor` for every node.
    Unit,
}

/// Configuration of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of nodes to generate.
    pub n: usize,
    /// Degree probabilities for degrees `1..=probs.len()`.
    pub degree_probs: Vec<f64>,
    /// Edge-weight distribution (defines `f_i`).
    pub weights: TruncatedExp,
    /// `n_i = exec_fraction · f_i` (paper: 0.1).
    pub exec_fraction: f64,
    /// Processing-time derivation.
    pub time_mode: TimeMode,
    /// Multiplier applied by [`TimeMode`].
    pub time_factor: f64,
    /// Frontier expansion discipline.
    pub discipline: FrontierDiscipline,
}

impl SyntheticConfig {
    /// The paper's configuration for a tree of `n` nodes.
    pub fn paper(n: usize) -> Self {
        SyntheticConfig {
            n,
            degree_probs: vec![0.58, 0.17, 0.08, 0.08, 0.08],
            weights: TruncatedExp::paper_edge_weights(),
            exec_fraction: 0.1,
            time_mode: TimeMode::ProportionalToOutput,
            time_factor: 1.0,
            discipline: FrontierDiscipline::BiasedNewest { q: PAPER_Q },
        }
    }

    /// Generates a tree with this configuration, deterministically in
    /// `seed`.
    pub fn generate(&self, seed: u64) -> TaskTree {
        assert!(self.n > 0, "cannot generate an empty tree");
        let mut rng = StdRng::seed_from_u64(seed);
        let degrees = DegreeDistribution::new(&self.degree_probs);

        // Grow the structure: parents[i] for node i, nodes created in
        // discovery order (root = 0).
        let mut parents: Vec<Option<usize>> = Vec::with_capacity(self.n);
        parents.push(None);
        let mut frontier: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        frontier.push_back(0);
        while parents.len() < self.n && !frontier.is_empty() {
            let node = match self.discipline {
                FrontierDiscipline::Fifo => frontier.pop_front().unwrap(),
                FrontierDiscipline::Lifo => frontier.pop_back().unwrap(),
                FrontierDiscipline::Random => {
                    let slot = rng.random_range(0..frontier.len());
                    frontier.swap_remove_back(slot).unwrap()
                }
                FrontierDiscipline::BiasedNewest { q } => {
                    if rng.random::<f64>() < q {
                        frontier.pop_back().unwrap()
                    } else {
                        let slot = rng.random_range(0..frontier.len());
                        frontier.swap_remove_back(slot).unwrap()
                    }
                }
            };
            let d = degrees.sample(&mut rng).min(self.n - parents.len());
            for _ in 0..d {
                let id = parents.len();
                parents.push(Some(node));
                frontier.push_back(id);
            }
        }
        // If the frontier died out early (possible with FIFO/LIFO swaps and
        // tiny degree draws capped by the budget), graft remaining nodes as
        // children of the last node — in practice the degree distribution
        // has no zero, so the frontier only empties when n is reached.
        while parents.len() < self.n {
            parents.push(Some(parents.len() - 1));
        }

        // Sample sizes and times.
        let mut b = TreeBuilder::with_capacity(self.n);
        let mut child_count = vec![0u32; self.n];
        for p in parents.iter().flatten() {
            child_count[*p] += 1;
        }
        for (i, &p) in parents.iter().enumerate() {
            let f = self.weights.sample(&mut rng).round().max(1.0);
            let exec = (self.exec_fraction * f).round() as u64;
            let time = match self.time_mode {
                TimeMode::ProportionalToOutput => self.time_factor * f,
                TimeMode::ProportionalToDegree => self.time_factor * (child_count[i].max(1) as f64),
                TimeMode::Unit => self.time_factor,
            };
            b.push_with_parent_index(p, TaskSpec::new(exec, f as u64, time));
        }
        b.build().expect("synthetic tree is structurally valid")
    }
}

/// Convenience: one paper-configured tree of `n` nodes.
pub fn paper_tree(n: usize, seed: u64) -> TaskTree {
    SyntheticConfig::paper(n).generate(seed)
}

/// Streaming equivalent of [`paper_batch`]: trees are generated one at a
/// time as the iterator is pulled, so a sweep over a large corpus never
/// holds more trees in memory than its in-flight window.
pub fn paper_batch_iter(
    n: usize,
    count: usize,
    base_seed: u64,
) -> impl ExactSizeIterator<Item = TaskTree> {
    (0..count).map(move |k| paper_tree(n, base_seed.wrapping_add(k as u64)))
}

/// Convenience: the paper's batch of `count` trees of `n` nodes with
/// consecutive seeds derived from `base_seed`.
pub fn paper_batch(n: usize, count: usize, base_seed: u64) -> Vec<TaskTree> {
    paper_batch_iter(n, count, base_seed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::validate::check_consistency;
    use memtree_tree::TreeStats;

    #[test]
    fn generates_exactly_n_nodes() {
        for n in [1usize, 2, 10, 1000] {
            let t = paper_tree(n, 42);
            assert_eq!(t.len(), n);
            check_consistency(&t).unwrap();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = paper_tree(500, 1);
        let b = paper_tree(500, 1);
        assert_eq!(a, b);
        assert_ne!(a, paper_tree(500, 2));
    }

    #[test]
    fn weights_in_bounds_and_exec_is_tenth() {
        let t = paper_tree(2000, 7);
        for i in t.nodes() {
            let f = t.output(i);
            assert!((10..=10_000).contains(&f), "f {f} out of bounds");
            let expected = (0.1 * f as f64).round() as u64;
            assert_eq!(t.exec(i), expected);
            assert_eq!(t.time(i), f as f64);
        }
    }

    #[test]
    fn degree_never_exceeds_five() {
        let t = paper_tree(5000, 11);
        let s = TreeStats::compute(&t);
        assert!(s.max_degree <= 5);
    }

    #[test]
    fn disciplines_change_height() {
        let mk = |d| {
            let mut c = SyntheticConfig::paper(4000);
            c.discipline = d;
            // Average over a few seeds to avoid flaky ordering.
            (0..5)
                .map(|s| TreeStats::compute(&c.generate(3 + s)).height)
                .sum::<u32>()
                / 5
        };
        let fifo = mk(FrontierDiscipline::Fifo);
        let lifo = mk(FrontierDiscipline::Lifo);
        let random = mk(FrontierDiscipline::Random);
        let biased = mk(FrontierDiscipline::BiasedNewest { q: PAPER_Q });
        assert!(
            fifo < random,
            "fifo {fifo} should be shallower than random {random}"
        );
        assert!(
            random < biased,
            "random {random} should be shallower than biased {biased}"
        );
        assert!(
            biased < lifo,
            "biased {biased} should be shallower than lifo {lifo}"
        );
    }

    #[test]
    #[ignore = "calibration helper; run with --ignored --nocapture"]
    fn calibrate_height_bias() {
        for q in [0.5, 0.7, 0.8, 0.85, 0.9, 0.95] {
            for n in [1000usize, 10_000, 100_000] {
                let mut c = SyntheticConfig::paper(n);
                c.discipline = FrontierDiscipline::BiasedNewest { q };
                let reps = if n == 100_000 { 3 } else { 10 };
                let avg: f64 = (0..reps)
                    .map(|s| TreeStats::compute(&c.generate(900 + s)).height as f64)
                    .sum::<f64>()
                    / reps as f64;
                println!("q={q} n={n} avg_height={avg:.1}");
            }
        }
    }

    #[test]
    fn random_discipline_heights_are_in_paper_ballpark() {
        // Paper: average heights 63 (1k), 95 (10k), 131 (100k). Accept a
        // generous band — the aspect ratio matters, not the digit.
        let avg = |n: usize| {
            let hs: Vec<u32> = (0..10)
                .map(|s| TreeStats::compute(&paper_tree(n, 100 + s)).height)
                .collect();
            hs.iter().sum::<u32>() as f64 / hs.len() as f64
        };
        let h1k = avg(1000);
        assert!(
            (20.0..200.0).contains(&h1k),
            "height {h1k} for 1k nodes far from the paper's 63"
        );
    }

    #[test]
    fn time_modes() {
        let mut c = SyntheticConfig::paper(200);
        c.time_mode = TimeMode::Unit;
        c.time_factor = 2.5;
        let t = c.generate(5);
        assert!(t.nodes().all(|i| t.time(i) == 2.5));

        c.time_mode = TimeMode::ProportionalToDegree;
        c.time_factor = 1.0;
        let t = c.generate(5);
        for i in t.nodes() {
            assert_eq!(t.time(i), t.degree(i).max(1) as f64);
        }
    }

    #[test]
    fn batch_has_distinct_trees() {
        let batch = paper_batch(300, 5, 1000);
        assert_eq!(batch.len(), 5);
        for w in batch.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn batch_iter_streams_the_same_trees() {
        let eager = paper_batch(200, 4, 77);
        let mut it = paper_batch_iter(200, 4, 77);
        assert_eq!(it.len(), 4);
        // Pulling one at a time yields exactly the materialised batch.
        for want in &eager {
            assert_eq!(&it.next().unwrap(), want);
        }
        assert!(it.next().is_none());
    }
}
