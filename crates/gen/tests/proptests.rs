//! Property tests of the generators.

use memtree_gen::synthetic::{FrontierDiscipline, SyntheticConfig, TimeMode};
use memtree_gen::{shapes, TruncatedExp};
use memtree_tree::validate::check_consistency;
use memtree_tree::{TaskSpec, TreeStats};
use proptest::prelude::*;

proptest! {
    /// Every configuration of the synthetic generator yields exactly `n`
    /// structurally valid nodes with sizes in spec.
    #[test]
    fn synthetic_always_valid(
        n in 1usize..400,
        seed in 0u64..1000,
        discipline in 0u8..4,
        time_mode in 0u8..3,
    ) {
        let mut c = SyntheticConfig::paper(n);
        c.discipline = match discipline {
            0 => FrontierDiscipline::Fifo,
            1 => FrontierDiscipline::Lifo,
            2 => FrontierDiscipline::Random,
            _ => FrontierDiscipline::BiasedNewest { q: 0.8 },
        };
        c.time_mode = match time_mode {
            0 => TimeMode::ProportionalToOutput,
            1 => TimeMode::ProportionalToDegree,
            _ => TimeMode::Unit,
        };
        let t = c.generate(seed);
        prop_assert_eq!(t.len(), n);
        check_consistency(&t).unwrap();
        for i in t.nodes() {
            prop_assert!((10..=10_000).contains(&t.output(i)));
            prop_assert!(t.time(i) > 0.0);
        }
        let s = TreeStats::compute(&t);
        prop_assert!(s.max_degree <= 5);
    }

    /// The truncated exponential never leaves its interval, for arbitrary
    /// parameters.
    #[test]
    fn truncated_exp_in_bounds(
        rate in 0.1f64..5.0,
        scale in 1.0f64..500.0,
        lo in 0.0f64..50.0,
        width in 1.0f64..1000.0,
        seed in 0u64..100,
    ) {
        use rand::SeedableRng;
        let d = TruncatedExp { rate, scale, lo, hi: lo + width };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= lo + width, "{x} outside [{lo}, {}]", lo + width);
        }
    }

    /// Shape generators produce the advertised node counts and stay valid.
    #[test]
    fn shapes_are_valid(n in 1usize..60, k in 1usize..6, seed in 0u64..50) {
        let spec = TaskSpec::new(1, 2, 1.0);
        for t in [
            shapes::chain(n, spec),
            shapes::star(n, spec, spec),
            shapes::caterpillar(n, k, spec, spec),
            shapes::spindle(k, n, spec),
            shapes::random_recursive(n, spec, seed),
            shapes::binary_reduction(n, 4, 1.0),
        ] {
            check_consistency(&t).unwrap();
        }
    }
}

/// The paper's corpus contains trees with maximum degree up to 175 000 —
/// exercise the huge-star regime end to end.
#[test]
fn huge_star_smoke() {
    let t = shapes::star(50_001, TaskSpec::new(0, 1, 1.0), TaskSpec::new(0, 2, 1.0));
    assert_eq!(TreeStats::compute(&t).max_degree, 50_000);
    let po = memtree_tree::traverse::postorder(&t);
    let peak = memtree_tree::memory::sequential_peak(&t, &po).unwrap();
    // All leaf outputs live when the root runs.
    assert_eq!(peak, 50_000 * 2 + 1);
}
