#![forbid(unsafe_code)]
//! `memtree_lint` — text-based repo lints, run from the workspace root
//! (CI's `lint-repo` job; locally `cargo run -p memtree_lint`).
//!
//! Three rules, all enforced as plain line scans (no parsing, no deps —
//! the point is a fast, dependency-free gate that cannot rot):
//!
//! 1. **ordering-justification** — every `Ordering::Relaxed` /
//!    `Ordering::SeqCst` site in library code must carry a
//!    `// ordering:` justification comment within the preceding
//!    [`ORDERING_LOOKBACK`] lines (one comment may cover a short run of
//!    sites, e.g. a pair of `fetch_add`s), or be covered by
//!    [`ALLOWLIST`]. Acquire/Release/AcqRel sites are encouraged but not
//!    forced: the two extremes are where reviewers most need the "why"
//!    (Relaxed because a proof says so, SeqCst because it costs).
//! 2. **no-unwrap** — `.unwrap()` / `.expect(` are banned in
//!    `memtree_runtime` and `memtree_service` library code (panicking
//!    in the scheduling substrate kills a worker silently; errors must
//!    flow through `PlatformError`). Tests, benches, bins, and other
//!    crates are out of scope.
//! 3. **design-sections** — every `§N[.M]` reference in sources and
//!    root-level docs must name a section heading that actually exists
//!    in DESIGN.md (stale refs are how design docs die).
//!
//! Scope conventions the scans rely on (checked by rule violations, not
//! by magic): unit-test modules sit at the end of a file behind a
//! `mod tests` line — both code rules stop scanning there.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Lines to look back from an atomic-ordering site for a `// ordering:`
/// justification. Generous enough for a doc-style block comment plus a
/// couple of cfg/attribute lines and a short run of related sites.
const ORDERING_LOOKBACK: usize = 14;

/// `(path-prefix, reason)` pairs exempt from the ordering rule.
const ALLOWLIST: &[(&str, &str)] = &[
    (
        "vendor/minloom/",
        "the model checker implements the memory model; its internal \
         std atomics are scheduler bookkeeping, not protocol sites",
    ),
    (
        "vendor/proptest/",
        "offline stand-in mirroring upstream proptest internals",
    ),
    (
        "vendor/criterion/",
        "offline stand-in mirroring upstream criterion internals",
    ),
    (
        "crates/lint/",
        "the linter itself: its needle string literals are not atomic sites",
    ),
];

/// `(path, reason)` pairs exempt from the no-unwrap rule.
const UNWRAP_ALLOWLIST: &[(&str, &str)] = &[(
    "crates/runtime/src/conformance.rs",
    "macro-generated test-harness support; its expansions live inside \
     #[test] functions where panicking on a failed run is the point",
)];

/// Roots scanned for `.rs` library code (ordering rule).
const RS_ROOTS: &[&str] = &["crates", "vendor", "src"];

/// Root-level docs scanned for `§` references, besides every `.rs` file.
/// Paper/corpus notes (PAPERS.md, SNIPPETS.md, …) quote external text
/// and are deliberately out of scope.
const DOC_FILES: &[&str] = &["DESIGN.md", "README.md", "ROADMAP.md"];

fn main() {
    let root = std::env::current_dir().expect("cwd");
    if !root.join("DESIGN.md").is_file() {
        eprintln!("memtree_lint: run from the workspace root (DESIGN.md not found)");
        std::process::exit(2);
    }

    let mut violations: Vec<String> = Vec::new();
    let rs_files = collect_rs_files(&root);

    let sections = design_sections(&root);
    for file in &rs_files {
        let rel = rel_path(&root, file);
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        if (rel.starts_with("crates/") || rel.starts_with("vendor/")) && rel.contains("/src/") {
            check_ordering(&rel, &text, &mut violations);
        }
        if is_no_unwrap_scope(&rel) {
            check_unwrap(&rel, &text, &mut violations);
        }
        check_sections(&rel, &text, &sections, &mut violations);
    }
    for doc in DOC_FILES {
        if let Ok(text) = std::fs::read_to_string(root.join(doc)) {
            check_sections(doc, &text, &sections, &mut violations);
        }
    }

    if violations.is_empty() {
        println!(
            "memtree_lint: OK ({} .rs files, {} DESIGN.md sections)",
            rs_files.len(),
            sections.len()
        );
        return;
    }
    eprintln!("memtree_lint: {} violation(s)\n", violations.len());
    for v in &violations {
        eprintln!("  {v}");
    }
    std::process::exit(1);
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in RS_ROOTS {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Build artifacts only ever appear under target/.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn allowlisted(rel: &str) -> bool {
    ALLOWLIST.iter().any(|(prefix, _)| rel.starts_with(prefix))
}

/// Index of the line holding `mod tests` (the end-of-file unit-test
/// convention): scanning stops there for the code rules.
fn tests_mod_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("mod tests") || t.starts_with("pub mod tests")
        })
        .unwrap_or(lines.len())
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//")
}

fn check_ordering(rel: &str, text: &str, violations: &mut Vec<String>) {
    if allowlisted(rel) {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    let end = tests_mod_start(&lines);
    for (i, line) in lines[..end].iter().enumerate() {
        if is_comment(line) {
            continue;
        }
        if !(line.contains("Ordering::Relaxed") || line.contains("Ordering::SeqCst")) {
            continue;
        }
        let start = i.saturating_sub(ORDERING_LOOKBACK);
        let justified = lines[start..=i].iter().any(|l| l.contains("// ordering:"));
        if !justified {
            let mut v = String::new();
            let _ = write!(
                v,
                "{rel}:{}: Relaxed/SeqCst atomic site without a `// ordering:` \
                 justification within {ORDERING_LOOKBACK} lines",
                i + 1
            );
            violations.push(v);
        }
    }
}

fn is_no_unwrap_scope(rel: &str) -> bool {
    (rel.starts_with("crates/runtime/src/") || rel.starts_with("crates/service/src/"))
        && !rel.contains("/bin/")
        && !UNWRAP_ALLOWLIST.iter().any(|(path, _)| rel == *path)
}

fn check_unwrap(rel: &str, text: &str, violations: &mut Vec<String>) {
    let lines: Vec<&str> = text.lines().collect();
    let end = tests_mod_start(&lines);
    for (i, line) in lines[..end].iter().enumerate() {
        if is_comment(line) {
            continue;
        }
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                let mut v = String::new();
                let _ = write!(
                    v,
                    "{rel}:{}: `{needle}` in runtime/service library code — \
                     route the error through PlatformError instead",
                    i + 1
                );
                violations.push(v);
            }
        }
    }
}

/// Section numbers with headings in DESIGN.md (`## 6. …`, `### 6.12 …`).
fn design_sections(root: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(root.join("DESIGN.md")) else {
        return Vec::new();
    };
    let mut sections = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("#") else {
            continue;
        };
        let rest = rest.trim_start_matches('#').trim_start();
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        let num = num.trim_end_matches('.').to_string();
        if !num.is_empty() {
            sections.push(num);
        }
    }
    sections
}

fn check_sections(rel: &str, text: &str, sections: &[String], violations: &mut Vec<String>) {
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find('§') {
            rest = &rest[pos + '§'.len_utf8()..];
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            let num = num.trim_end_matches('.').to_string();
            if num.is_empty() {
                continue;
            }
            if !sections.contains(&num) {
                let mut v = String::new();
                let _ = write!(
                    v,
                    "{rel}:{}: reference to DESIGN.md §{num}, which has no such section",
                    i + 1
                );
                violations.push(v);
            }
        }
    }
}
