//! From supernodes to an assembly task tree.
//!
//! Each supernodal front of order `d` with `w` pivots becomes one task of
//! the tree-scheduling model:
//!
//! * output `f = (d − w)²` — the contribution block passed to the parent
//!   front (scaled by `entry_size`);
//! * execution data `n = d² − (d − w)²` — the factor columns held while
//!   the front is processed and written out at completion;
//! * time = dense partial-factorization flops
//!   `Σ_{k=1..w} (d − k + 1)²`, scaled by `time_scale`.
//!
//! This is exactly how multifrontal codes map onto the paper's model: the
//! elimination tree of fronts is the task tree, contribution blocks are
//! the edge data.

use crate::supernodes::Supernode;
use memtree_tree::{TaskSpec, TaskTree, TreeBuilder};

/// Scaling knobs for task sizes and times.
#[derive(Clone, Copy, Debug)]
pub struct AssemblyParams {
    /// Memory units per factor entry (1 = count entries).
    pub entry_size: u64,
    /// Time units per flop.
    pub time_scale: f64,
}

impl Default for AssemblyParams {
    fn default() -> Self {
        AssemblyParams {
            entry_size: 1,
            time_scale: 1e-6,
        }
    }
}

/// Flops of a dense partial factorization: eliminate `w` pivots from a
/// front of order `d`.
pub fn partial_factorization_flops(d: u64, w: u64) -> f64 {
    debug_assert!(w <= d);
    // Σ_{k=1..w} (d - k + 1)² — one rank-1 update per pivot.
    let mut flops = 0f64;
    for k in 1..=w {
        let s = (d - k + 1) as f64;
        flops += s * s;
    }
    flops
}

/// Builds the assembly task tree from a supernode partition and its parent
/// map (children-before-parents order, as produced by
/// [`crate::supernodes::supernode_parents`]).
pub fn assembly_tree(
    snodes: &[Supernode],
    sn_parent: &[Option<usize>],
    params: AssemblyParams,
) -> TaskTree {
    assert_eq!(snodes.len(), sn_parent.len());
    let mut b = TreeBuilder::with_capacity(snodes.len());
    for (s, sn) in snodes.iter().enumerate() {
        let d = sn.front;
        let w = sn.width as u64;
        assert!(w <= d, "supernode {s} wider than its front");
        let cb = d - w;
        let output = cb * cb * params.entry_size;
        let exec = (d * d - cb * cb) * params.entry_size;
        let time = partial_factorization_flops(d, w) * params.time_scale;
        b.push_with_parent_index(sn_parent[s], TaskSpec::new(exec, output, time));
    }
    b.build()
        .expect("supernode forest with one root is a valid tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colcount::column_counts;
    use crate::etree::elimination_tree;
    use crate::pattern::SparsePattern;
    use crate::supernodes::{fundamental_supernodes, supernode_parents};
    use memtree_tree::validate::check_consistency;

    fn pipeline(p: &SparsePattern) -> TaskTree {
        let et = elimination_tree(p);
        let po = crate::etree::etree_postorder(&et);
        let q = p.permute(&po);
        let et = elimination_tree(&q);
        let cc = column_counts(&q, &et);
        let sn = fundamental_supernodes(&et, &cc);
        let par = supernode_parents(&sn, &et);
        assembly_tree(&sn, &par, AssemblyParams::default())
    }

    #[test]
    fn flops_formula() {
        // d = 3, w = 3: 9 + 4 + 1 = 14.
        assert_eq!(partial_factorization_flops(3, 3), 14.0);
        // w = 0: no work.
        assert_eq!(partial_factorization_flops(5, 0), 0.0);
    }

    #[test]
    fn dense_matrix_is_single_task() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let t = pipeline(&p);
        assert_eq!(t.len(), 1);
        let root = t.root();
        assert_eq!(t.output(root), 0, "root has no contribution block");
        assert_eq!(t.exec(root), 16, "whole 4x4 front is factor data");
    }

    #[test]
    fn grid_assembly_tree_is_consistent() {
        let p = SparsePattern::grid2d(8);
        let t = pipeline(&p);
        check_consistency(&t).unwrap();
        // The root front has no contribution block.
        assert_eq!(t.output(t.root()), 0);
        // Total pivots = matrix order (each column eliminated once) —
        // reconstruct from exec+output = d².
        assert!(t.len() > 1);
    }

    #[test]
    fn band_matrix_gives_deep_tree() {
        let p = SparsePattern::band(200, 1);
        let t = pipeline(&p);
        let stats = memtree_tree::TreeStats::compute(&t);
        assert!(
            stats.height as usize >= t.len() - 2,
            "tridiagonal assembly tree must be (nearly) a chain: height {} for {} nodes",
            stats.height,
            t.len()
        );
    }

    #[test]
    fn mem_needed_matches_front_size() {
        // For every front: MemNeeded = children CBs + n + f. The front
        // itself (d²) must be ≤ n + f (factors + own CB).
        let p = SparsePattern::grid2d(7);
        let t = pipeline(&p);
        for i in t.nodes() {
            let d2 = t.exec(i) + t.output(i);
            assert!(d2 > 0);
            assert!(t.mem_needed(i) >= d2);
        }
    }
}
