//! Column counts of the Cholesky factor.
//!
//! `cc[j] = |struct(L(:,j))|` (diagonal included). Uses the row-subtree
//! characterisation: `l_ij ≠ 0` exactly when `j` lies on the elimination-
//! tree path from some `k` with `a_ik ≠ 0, k < i` up to `i`. Walking each
//! row's paths with per-row marks costs `O(nnz(L))` — the symbolic
//! factorization cost, fine at this corpus scale and simpler than the
//! skeleton-based `O(nnz(A) α(n))` algorithm of Gilbert–Ng–Peyton.

use crate::pattern::SparsePattern;

/// Column counts of `L` for `pattern` with the given elimination tree.
pub fn column_counts(pattern: &SparsePattern, parent: &[Option<usize>]) -> Vec<u64> {
    let n = pattern.order();
    assert_eq!(parent.len(), n);
    let mut cc = vec![1u64; n]; // diagonal
    let mut mark = vec![usize::MAX; n];
    for i in 0..n {
        mark[i] = i;
        for &k in pattern.column(i) {
            let mut j = k as usize;
            if j >= i {
                continue;
            }
            while mark[j] != i {
                mark[j] = i;
                cc[j] += 1;
                j = parent[j].expect("path below i must continue upward");
            }
        }
    }
    cc
}

/// Total factor size `nnz(L) = Σ cc[j]`.
pub fn factor_nnz(cc: &[u64]) -> u64 {
    cc.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::elimination_tree;

    /// O(n²) reference symbolic factorization.
    fn brute_force_counts(pattern: &SparsePattern) -> Vec<u64> {
        let n = pattern.order();
        let mut l_cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            let mut s: Vec<usize> = pattern
                .column(j)
                .iter()
                .map(|&i| i as usize)
                .filter(|&i| i > j)
                .collect();
            for col in l_cols.iter().take(j) {
                if col.first() == Some(&j) {
                    s.extend(col.iter().copied().filter(|&i| i > j));
                }
            }
            s.sort_unstable();
            s.dedup();
            l_cols[j] = s;
        }
        (0..n).map(|j| 1 + l_cols[j].len() as u64).collect()
    }

    #[test]
    fn tridiagonal_counts() {
        // Tridiagonal: no fill; cc[j] = 2 except the last column.
        let p = SparsePattern::band(6, 1);
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        assert_eq!(cc, vec![2, 2, 2, 2, 2, 1]);
        assert_eq!(factor_nnz(&cc), 11);
    }

    #[test]
    fn dense_counts() {
        // Fully dense 4×4: cc = 4, 3, 2, 1.
        let p = SparsePattern::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let et = elimination_tree(&p);
        assert_eq!(column_counts(&p, &et), vec![4, 3, 2, 1]);
    }

    #[test]
    fn fill_in_counted() {
        // Star centered at 0: eliminating 0 fills in the rest densely.
        let p = SparsePattern::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let et = elimination_tree(&p);
        assert_eq!(column_counts(&p, &et), vec![4, 3, 2, 1]);
    }

    #[test]
    fn matches_brute_force_on_random_patterns() {
        for seed in 0..15 {
            let p = SparsePattern::random_connected(35, 50, seed);
            let et = elimination_tree(&p);
            assert_eq!(
                column_counts(&p, &et),
                brute_force_counts(&p),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let p = SparsePattern::grid2d(5);
        let et = elimination_tree(&p);
        assert_eq!(column_counts(&p, &et), brute_force_counts(&p));
    }
}
