//! The assembly-tree corpus standing in for the paper's 608 UFL trees.
//!
//! Mixes three matrix families to cover the paper's structural spectrum:
//!
//! * **grid Laplacians** (2-D and 3-D) with nested dissection — bushy,
//!   balanced trees with heavy fronts near the root (the typical PDE
//!   matrices of the UFL collection);
//! * **random connected patterns** with minimum degree — irregular trees;
//! * **band matrices** — chain-like elimination trees of extreme height
//!   (the `H ≈ n` regime of Figure 6).
//!
//! Every tree is produced by the full symbolic pipeline:
//! order → permute → elimination tree → postorder → column counts →
//! fundamental supernodes (→ optional amalgamation) → assembly tree.

use crate::assembly::{assembly_tree, AssemblyParams};
use crate::colcount::column_counts;
use crate::etree::{elimination_tree, etree_postorder};
use crate::ordering;
use crate::pattern::SparsePattern;
use crate::supernodes::{amalgamate, fundamental_supernodes, supernode_parents};
use memtree_tree::TaskTree;

/// A corpus configuration.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// 2-D grid sides (each becomes one ND-ordered Laplacian tree).
    pub grids2d: Vec<usize>,
    /// 3-D grid sides.
    pub grids3d: Vec<usize>,
    /// `(order, half_bandwidth)` band matrices (natural order).
    pub bands: Vec<(usize, usize)>,
    /// `(order, extra_edges, seed)` random patterns with minimum degree.
    pub randoms: Vec<(usize, usize, u64)>,
    /// Amalgamation threshold (0 = fundamental supernodes only).
    pub amalgamate_below: usize,
    /// Task sizing knobs.
    pub params: AssemblyParams,
}

impl CorpusSpec {
    /// A small corpus for unit and integration tests (trees of tens to a
    /// few hundreds of nodes).
    pub fn small() -> Self {
        CorpusSpec {
            grids2d: vec![8, 12, 16],
            grids3d: vec![4, 5],
            bands: vec![(300, 1), (200, 3)],
            randoms: vec![(300, 300, 1), (500, 600, 2)],
            amalgamate_below: 0,
            params: AssemblyParams::default(),
        }
    }

    /// The evaluation corpus used by the figure binaries: tree sizes from
    /// roughly a thousand to tens of thousands of nodes, heights from tens
    /// to 10⁵ — matching the paper's spread at laptop scale.
    pub fn evaluation() -> Self {
        CorpusSpec {
            grids2d: vec![40, 60, 80, 100, 120, 150],
            grids3d: vec![10, 14, 18],
            bands: vec![(20_000, 1), (50_000, 1), (100_000, 1), (10_000, 4)],
            randoms: vec![
                (4_000, 6_000, 11),
                (8_000, 12_000, 12),
                (16_000, 24_000, 13),
                (16_000, 8_000, 14),
            ],
            amalgamate_below: 0,
            params: AssemblyParams::default(),
        }
    }

    /// Builds one assembly tree through the full symbolic pipeline.
    pub fn analyze(&self, pattern: &SparsePattern, perm: &[usize]) -> TaskTree {
        let permuted = pattern.permute(perm);
        // Postorder the elimination tree so supernodes are contiguous.
        let et = elimination_tree(&permuted);
        let po = etree_postorder(&et);
        let q = permuted.permute(&po);
        let et = elimination_tree(&q);
        let cc = column_counts(&q, &et);
        let sn = fundamental_supernodes(&et, &cc);
        let par = supernode_parents(&sn, &et);
        let (sn, par) = if self.amalgamate_below > 0 {
            amalgamate(&sn, &par, self.amalgamate_below)
        } else {
            (sn, par)
        };
        assembly_tree(&sn, &par, self.params)
    }

    /// The identities of every tree this corpus contains, in corpus order,
    /// without building anything. Each id can be realised independently
    /// through [`CorpusSpec::build_case`] — the streaming constructor a
    /// windowed sweep uses to keep at most a handful of assembly trees
    /// alive at a time.
    pub fn case_ids(&self) -> Vec<CaseId> {
        let mut out = Vec::new();
        out.extend(self.grids2d.iter().map(|&k| CaseId::Grid2d(k)));
        out.extend(self.grids3d.iter().map(|&k| CaseId::Grid3d(k)));
        out.extend(self.bands.iter().map(|&(n, bw)| CaseId::Band(n, bw)));
        out.extend(
            self.randoms
                .iter()
                .map(|&(n, extra, seed)| CaseId::Random(n, extra, seed)),
        );
        out
    }

    /// Builds the single tree identified by `id` through the full symbolic
    /// pipeline. Deterministic: the same `(spec, id)` always produces the
    /// same `(name, tree)`.
    pub fn build_case(&self, id: &CaseId) -> (String, TaskTree) {
        match *id {
            CaseId::Grid2d(k) => {
                let p = SparsePattern::grid2d(k);
                let perm = ordering::nested_dissection_grid2d(k);
                (format!("grid2d-{k}"), self.analyze(&p, &perm))
            }
            CaseId::Grid3d(k) => {
                let p = SparsePattern::grid3d(k);
                let perm = ordering::nested_dissection_grid3d(k);
                (format!("grid3d-{k}"), self.analyze(&p, &perm))
            }
            CaseId::Band(n, bw) => {
                let p = SparsePattern::band(n, bw);
                let perm = ordering::identity(n);
                (format!("band-{n}-{bw}"), self.analyze(&p, &perm))
            }
            CaseId::Random(n, extra, seed) => {
                let p = SparsePattern::random_connected(n, extra, seed);
                let perm = ordering::minimum_degree(&p);
                (
                    format!("random-{n}-{extra}-{seed}"),
                    self.analyze(&p, &perm),
                )
            }
        }
    }

    /// Generates the whole corpus as `(name, tree)` pairs.
    pub fn build(&self) -> Vec<(String, TaskTree)> {
        self.case_ids()
            .iter()
            .map(|id| self.build_case(id))
            .collect()
    }
}

/// The identity of one corpus tree: which matrix family and which
/// parameters. Realise it with [`CorpusSpec::build_case`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseId {
    /// 2-D grid Laplacian of the given side, nested dissection.
    Grid2d(usize),
    /// 3-D grid Laplacian of the given side, nested dissection.
    Grid3d(usize),
    /// Band matrix `(order, half_bandwidth)`, natural order.
    Band(usize, usize),
    /// Random connected pattern `(order, extra_edges, seed)`, minimum
    /// degree.
    Random(usize, usize, u64),
}

/// Builds the corpus described by `spec`.
pub fn assembly_corpus(spec: &CorpusSpec) -> Vec<(String, TaskTree)> {
    spec.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::validate::check_consistency;
    use memtree_tree::TreeStats;

    #[test]
    fn small_corpus_builds_valid_trees() {
        let corpus = assembly_corpus(&CorpusSpec::small());
        assert_eq!(corpus.len(), 9);
        for (name, tree) in &corpus {
            check_consistency(tree).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(tree.len() > 1, "{name} degenerate");
            let root = tree.root();
            assert_eq!(
                tree.output(root),
                0,
                "{name}: root has a contribution block"
            );
        }
    }

    #[test]
    fn corpus_spans_shapes() {
        let corpus = assembly_corpus(&CorpusSpec::small());
        let stats: Vec<(String, u32, usize)> = corpus
            .iter()
            .map(|(n, t)| (n.clone(), TreeStats::compute(t).height, t.len()))
            .collect();
        // Band trees must be the extreme-aspect ones.
        let band = stats
            .iter()
            .find(|(n, _, _)| n.starts_with("band-300"))
            .unwrap();
        assert!(
            band.1 as usize >= band.2 - 2,
            "band tree should be a chain: {band:?}"
        );
        // Grid trees must be much shallower than their size.
        let grid = stats
            .iter()
            .find(|(n, _, _)| n.starts_with("grid2d-16"))
            .unwrap();
        assert!(
            (grid.1 as usize) < grid.2 / 2,
            "ND tree should be shallow: {grid:?}"
        );
    }

    #[test]
    fn case_ids_stream_the_same_corpus() {
        let spec = CorpusSpec::small();
        let eager = spec.build();
        let ids = spec.case_ids();
        assert_eq!(ids.len(), eager.len());
        // Building one id at a time (any order) matches the eager corpus.
        for (id, (want_name, want_tree)) in ids.iter().zip(&eager).rev() {
            let (name, tree) = spec.build_case(id);
            assert_eq!(&name, want_name);
            assert_eq!(&tree, want_tree);
        }
    }

    #[test]
    fn amalgamation_shrinks_trees() {
        let mut spec = CorpusSpec::small();
        let base: usize = assembly_corpus(&spec).iter().map(|(_, t)| t.len()).sum();
        spec.amalgamate_below = 4;
        let merged: usize = assembly_corpus(&spec).iter().map(|(_, t)| t.len()).sum();
        assert!(merged < base, "amalgamation should reduce node count");
    }

    #[test]
    fn trees_are_schedulable() {
        // End-to-end: every corpus tree runs under MemBooking-style
        // sequential memory (peak of the natural postorder) — structural
        // sanity that sizes are consistent.
        for (name, tree) in assembly_corpus(&CorpusSpec::small()) {
            let po = memtree_tree::traverse::postorder(&tree);
            let peak = memtree_tree::memory::sequential_peak(&tree, &po).unwrap();
            assert!(peak > 0, "{name}: zero peak");
        }
    }
}
