//! Elimination trees (Liu 1986/1990).
//!
//! The elimination tree of a symmetric matrix `A` has
//! `parent(j) = min { i > j : l_ij ≠ 0 }` — the first off-diagonal nonzero
//! in column `j` of the Cholesky factor. Liu's algorithm computes it in
//! nearly linear time by walking up partially-built trees with ancestor
//! path compression.

use crate::pattern::SparsePattern;

/// Computes the elimination-tree parent of every column
/// (`None` for roots). For a connected (irreducible) pattern there is a
/// single root: column `n − 1`.
pub fn elimination_tree(pattern: &SparsePattern) -> Vec<Option<usize>> {
    let n = pattern.order();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    // Path-compressed ancestors for the traversal.
    let mut ancestor: Vec<usize> = vec![usize::MAX; n];

    for j in 0..n {
        for &i in pattern.column(j) {
            let mut i = i as usize;
            if i >= j {
                continue; // use the lower triangle of row j
            }
            // Walk from i up to the current root, compressing the path,
            // and attach the root under j.
            while ancestor[i] != usize::MAX && ancestor[i] != j {
                let next = ancestor[i];
                ancestor[i] = j;
                i = next;
            }
            if ancestor[i] == usize::MAX {
                ancestor[i] = j;
                parent[i] = j;
            }
        }
    }

    parent
        .into_iter()
        .map(|p| (p != usize::MAX).then_some(p))
        .collect()
}

/// A postorder of the elimination tree (children before parents), with
/// children visited in ascending index. Iterative; handles forests.
pub fn etree_postorder(parent: &[Option<usize>]) -> Vec<usize> {
    let n = parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (j, &p) in parent.iter().enumerate() {
        match p {
            Some(p) => children[p].push(j),
            None => roots.push(j),
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &r in &roots {
        stack.push((r, 0));
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < children[node].len() {
                let c = children[node][*next];
                *next += 1;
                stack.push((c, 0));
            } else {
                out.push(node);
                stack.pop();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tridiagonal_gives_a_chain() {
        // Band(n,1): parent(j) = j+1 — the chain elimination tree.
        let p = SparsePattern::band(6, 1);
        let et = elimination_tree(&p);
        for (j, &p) in et.iter().enumerate().take(5) {
            assert_eq!(p, Some(j + 1));
        }
        assert_eq!(et[5], None);
    }

    #[test]
    fn arrow_matrix_gives_a_star() {
        // Arrow: column n-1 connected to everyone; others independent.
        // parent(j) = n-1 for all j < n-1.
        let edges: Vec<(usize, usize)> = (0..5).map(|j| (j, 5)).collect();
        let p = SparsePattern::from_edges(6, &edges);
        let et = elimination_tree(&p);
        for &p in et.iter().take(5) {
            assert_eq!(p, Some(5));
        }
        assert_eq!(et[5], None);
    }

    #[test]
    fn textbook_example() {
        // Classic example (Davis, "Direct Methods", fig. 4.2-style):
        // verify against a brute-force symbolic factorization.
        let p = SparsePattern::from_edges(
            8,
            &[
                (0, 3),
                (0, 5),
                (1, 4),
                (1, 7),
                (2, 3),
                (2, 6),
                (3, 7),
                (4, 6),
                (5, 6),
                (6, 7),
            ],
        );
        let fast = elimination_tree(&p);
        let slow = brute_force_etree(&p);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matches_brute_force_on_random_patterns() {
        for seed in 0..20 {
            let p = SparsePattern::random_connected(40, 60, seed);
            assert_eq!(elimination_tree(&p), brute_force_etree(&p), "seed {seed}");
        }
    }

    #[test]
    fn connected_pattern_has_single_root() {
        let p = SparsePattern::grid2d(5);
        let et = elimination_tree(&p);
        let roots = et.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 1);
        assert_eq!(et[24], None, "last column is the root");
    }

    #[test]
    fn postorder_is_topological() {
        let p = SparsePattern::grid2d(4);
        let et = elimination_tree(&p);
        let po = etree_postorder(&et);
        assert_eq!(po.len(), 16);
        let mut seen = [false; 16];
        for &j in &po {
            if let Some(pj) = et[j] {
                assert!(!seen[pj], "parent {pj} before child {j}");
            }
            seen[j] = true;
        }
    }

    /// O(n²) reference: simulate symbolic Cholesky row structures.
    fn brute_force_etree(pattern: &SparsePattern) -> Vec<Option<usize>> {
        let n = pattern.order();
        // Column structures of L, built column by column.
        let mut l_cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            // struct(L(:,j)) = pattern(A(j:n, j)) ∪ union of struct(L(:,c))
            // for children c (columns whose first below-diag nonzero is j).
            let mut s: Vec<usize> = pattern
                .column(j)
                .iter()
                .map(|&i| i as usize)
                .filter(|&i| i > j)
                .collect();
            for col in l_cols.iter().take(j) {
                if col.first() == Some(&j) {
                    s.extend(col.iter().copied().filter(|&i| i > j));
                }
            }
            s.sort_unstable();
            s.dedup();
            l_cols[j] = s;
        }
        (0..n).map(|j| l_cols[j].first().copied()).collect()
    }
}
