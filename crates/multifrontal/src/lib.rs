#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Symbolic multifrontal analysis: from a sparse symmetric matrix pattern
//! to an assembly task tree.
//!
//! The paper evaluates its schedulers on 608 *assembly trees* obtained by
//! symbolic analysis of sparse matrices from the University of Florida
//! collection. That collection is an online dataset; this crate rebuilds
//! the **pipeline that produces such trees** so the evaluation exercises
//! the same code paths on structurally equivalent inputs:
//!
//! 1. [`pattern`] — symmetric sparse patterns (CSC), with generators for
//!    2-D/3-D grid Laplacians, banded matrices and random patterns;
//! 2. [`ordering`] — fill-reducing permutations: nested dissection for
//!    grids, minimum degree for general patterns;
//! 3. [`etree`] — the elimination tree (Liu's ancestor path-compression
//!    algorithm) and its postordering;
//! 4. [`colcount`] — column counts of the Cholesky factor via symbolic
//!    up-traversal of row subtrees;
//! 5. [`supernodes`] — fundamental supernodes with optional relaxed
//!    amalgamation;
//! 6. [`assembly`] — frontal-matrix sizing: each supernodal front of order
//!    `d` with `w` pivots becomes a task with output (contribution block)
//!    `f = (d−w)²`, execution data `n = d² − (d−w)²` (the factor entries,
//!    released at completion) and time = partial-factorization flops.
//!
//! The result is a [`memtree_tree::TaskTree`] with the heavy-tailed front
//! sizes, irregular degrees and extreme heights (band matrices give
//! chain-like trees) the paper's corpus exhibits.

pub mod assembly;
pub mod colcount;
pub mod corpus;
pub mod etree;
pub mod ordering;
pub mod pattern;
pub mod supernodes;

pub use assembly::{assembly_tree, AssemblyParams};
pub use corpus::{assembly_corpus, CaseId, CorpusSpec};
pub use etree::{elimination_tree, etree_postorder};
pub use pattern::SparsePattern;
