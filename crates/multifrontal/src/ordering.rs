//! Fill-reducing orderings.
//!
//! `perm[k]` is the original index eliminated at step `k` — the pattern is
//! then relabelled with [`crate::pattern::SparsePattern::permute`].

use crate::pattern::SparsePattern;
use std::collections::HashSet;

/// The identity ordering.
pub fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Nested dissection for a `k × k` grid: recursively split the wider axis
/// by a one-node-thick separator, ordering the two halves first and the
/// separator last. Produces the bushy, well-balanced elimination trees
/// typical of ND-ordered matrices.
pub fn nested_dissection_grid2d(k: usize) -> Vec<usize> {
    let idx = move |x: usize, y: usize| x * k + y;
    let mut perm = Vec::with_capacity(k * k);
    // Explicit work stack: regions in "post-order" with separator last.
    // Each frame: (x0, x1, y0, y1) half-open.
    enum Work {
        Region(usize, usize, usize, usize),
        Emit(Vec<usize>),
    }
    let mut stack = vec![Work::Region(0, k, 0, k)];
    while let Some(w) = stack.pop() {
        match w {
            Work::Emit(sep) => perm.extend(sep),
            Work::Region(x0, x1, y0, y1) => {
                let (dx, dy) = (x1 - x0, y1 - y0);
                if dx == 0 || dy == 0 {
                    continue;
                }
                if dx * dy <= 4 {
                    // Small base case: natural order.
                    for x in x0..x1 {
                        for y in y0..y1 {
                            perm.push(idx(x, y));
                        }
                    }
                    continue;
                }
                if dx >= dy {
                    let xm = x0 + dx / 2;
                    let sep: Vec<usize> = (y0..y1).map(|y| idx(xm, y)).collect();
                    stack.push(Work::Emit(sep));
                    stack.push(Work::Region(xm + 1, x1, y0, y1));
                    stack.push(Work::Region(x0, xm, y0, y1));
                } else {
                    let ym = y0 + dy / 2;
                    let sep: Vec<usize> = (x0..x1).map(|x| idx(x, ym)).collect();
                    stack.push(Work::Emit(sep));
                    stack.push(Work::Region(x0, x1, ym + 1, y1));
                    stack.push(Work::Region(x0, x1, y0, ym));
                }
            }
        }
    }
    perm
}

/// Nested dissection for a `k × k × k` grid (planar separators).
pub fn nested_dissection_grid3d(k: usize) -> Vec<usize> {
    let idx = move |x: usize, y: usize, z: usize| (x * k + y) * k + z;
    let mut perm = Vec::with_capacity(k * k * k);
    enum Work {
        Region([usize; 6]),
        Emit(Vec<usize>),
    }
    let mut stack = vec![Work::Region([0, k, 0, k, 0, k])];
    while let Some(w) = stack.pop() {
        match w {
            Work::Emit(sep) => perm.extend(sep),
            Work::Region([x0, x1, y0, y1, z0, z1]) => {
                let (dx, dy, dz) = (x1 - x0, y1 - y0, z1 - z0);
                if dx == 0 || dy == 0 || dz == 0 {
                    continue;
                }
                if dx * dy * dz <= 8 {
                    for x in x0..x1 {
                        for y in y0..y1 {
                            for z in z0..z1 {
                                perm.push(idx(x, y, z));
                            }
                        }
                    }
                    continue;
                }
                let dmax = dx.max(dy).max(dz);
                if dmax == dx {
                    let xm = x0 + dx / 2;
                    let sep = (y0..y1)
                        .flat_map(|y| (z0..z1).map(move |z| (y, z)))
                        .map(|(y, z)| idx(xm, y, z))
                        .collect();
                    stack.push(Work::Emit(sep));
                    stack.push(Work::Region([xm + 1, x1, y0, y1, z0, z1]));
                    stack.push(Work::Region([x0, xm, y0, y1, z0, z1]));
                } else if dmax == dy {
                    let ym = y0 + dy / 2;
                    let sep = (x0..x1)
                        .flat_map(|x| (z0..z1).map(move |z| (x, z)))
                        .map(|(x, z)| idx(x, ym, z))
                        .collect();
                    stack.push(Work::Emit(sep));
                    stack.push(Work::Region([x0, x1, ym + 1, y1, z0, z1]));
                    stack.push(Work::Region([x0, x1, y0, ym, z0, z1]));
                } else {
                    let zm = z0 + dz / 2;
                    let sep = (x0..x1)
                        .flat_map(|x| (y0..y1).map(move |y| (x, y)))
                        .map(|(x, y)| idx(x, y, zm))
                        .collect();
                    stack.push(Work::Emit(sep));
                    stack.push(Work::Region([x0, x1, y0, y1, zm + 1, z1]));
                    stack.push(Work::Region([x0, x1, y0, y1, z0, zm]));
                }
            }
        }
    }
    perm
}

/// Greedy minimum-degree ordering with clique elimination.
///
/// At each step the vertex of minimum current degree is eliminated and its
/// neighbourhood turned into a clique. This is the textbook algorithm
/// (no supervariables or element absorption) — `O(n · fill)` — adequate
/// for the corpus sizes used here.
pub fn minimum_degree(pattern: &SparsePattern) -> Vec<usize> {
    let n = pattern.order();
    let mut adj: Vec<HashSet<u32>> = (0..n)
        .map(|j| pattern.column(j).iter().copied().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);

    // Bucket queue keyed by degree; lazily revalidated.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n.max(1)];
    for (j, a) in adj.iter().enumerate() {
        let d = a.len().min(n - 1);
        buckets[d].push(j as u32);
    }
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the true minimum-degree vertex (lazy deletion).
        let v = loop {
            while cursor < buckets.len() && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let cand = buckets[cursor].pop().expect("bucket nonempty") as usize;
            if eliminated[cand] {
                continue;
            }
            let d = adj[cand].len().min(n - 1);
            if d != cursor {
                buckets[d].push(cand as u32);
                cursor = cursor.min(d);
                continue;
            }
            break cand;
        };

        eliminated[v] = true;
        perm.push(v);
        let mut neigh: Vec<u32> = adj[v].iter().copied().collect();
        // Sorted so the whole ordering is a pure function of the pattern:
        // `HashSet` iteration order varies per instance, and downstream
        // re-push order (hence tie-breaking) follows this loop. Corpus
        // builders must be deterministic — the sweep cache addresses cells
        // by tree content, so rebuilding a tree must reproduce it exactly.
        neigh.sort_unstable();
        // Clique the neighbourhood.
        for (ai, &a) in neigh.iter().enumerate() {
            let a = a as usize;
            adj[a].remove(&(v as u32));
            for &b in &neigh[ai + 1..] {
                if adj[a].insert(b) {
                    adj[b as usize].insert(a as u32);
                }
            }
            let d = adj[a].len().min(n - 1);
            buckets[d].push(a as u32);
            cursor = cursor.min(d);
        }
        adj[v].clear();
    }
    perm
}

/// Checks `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colcount::{column_counts, factor_nnz};
    use crate::etree::elimination_tree;

    #[test]
    fn nd2d_is_a_permutation() {
        for k in [2usize, 3, 5, 8, 13] {
            assert!(
                is_permutation(&nested_dissection_grid2d(k), k * k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn nd3d_is_a_permutation() {
        for k in [2usize, 3, 4, 6] {
            assert!(
                is_permutation(&nested_dissection_grid3d(k), k * k * k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn minimum_degree_is_a_permutation() {
        let p = SparsePattern::random_connected(60, 80, 3);
        assert!(is_permutation(&minimum_degree(&p), 60));
    }

    #[test]
    fn minimum_degree_is_deterministic() {
        // Two runs over the same pattern must tie-break identically —
        // corpus trees are rebuilt on demand by the streaming sweep and
        // addressed by content hash, so any run-to-run wobble here would
        // orphan every cached cell of the random-pattern corpus.
        let p = SparsePattern::random_connected(200, 300, 7);
        assert_eq!(minimum_degree(&p), minimum_degree(&p));
    }

    #[test]
    fn nd_reduces_fill_versus_natural_order() {
        let k = 12;
        let p = SparsePattern::grid2d(k);
        let natural = {
            let et = elimination_tree(&p);
            factor_nnz(&column_counts(&p, &et))
        };
        let nd = {
            let q = p.permute(&nested_dissection_grid2d(k));
            let et = elimination_tree(&q);
            factor_nnz(&column_counts(&q, &et))
        };
        assert!(
            nd < natural,
            "ND fill {nd} should beat natural-order fill {natural}"
        );
    }

    #[test]
    fn minimum_degree_reduces_fill_on_grid() {
        let p = SparsePattern::grid2d(10);
        let natural = {
            let et = elimination_tree(&p);
            factor_nnz(&column_counts(&p, &et))
        };
        let md = {
            let q = p.permute(&minimum_degree(&p));
            let et = elimination_tree(&q);
            factor_nnz(&column_counts(&q, &et))
        };
        assert!(md < natural, "MD fill {md} vs natural {natural}");
    }

    #[test]
    fn minimum_degree_on_tridiagonal_is_fill_free() {
        // A tridiagonal matrix has a perfect elimination order; MD must
        // find a no-fill ordering (factor nnz = 2n - 1).
        let n = 40;
        let p = SparsePattern::band(n, 1);
        let q = p.permute(&minimum_degree(&p));
        let et = elimination_tree(&q);
        assert_eq!(factor_nnz(&column_counts(&q, &et)), 2 * n as u64 - 1);
    }
}
