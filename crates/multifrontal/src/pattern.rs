//! Symmetric sparse matrix patterns in compressed sparse column form.
//!
//! Only the pattern (structure) matters for symbolic analysis — no values
//! are stored. Patterns are symmetric; we store, for every column `j`, the
//! full set of row indices `i ≠ j` with `a_ij ≠ 0` (both triangles), plus
//! an implicit diagonal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A symmetric sparse pattern of order `n` (CSC, both triangles, implicit
/// diagonal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsePattern {
    /// Matrix order.
    n: usize,
    /// CSC column pointers, length `n + 1`.
    col_ptr: Vec<usize>,
    /// Row indices per column, each strictly sorted, excluding the
    /// diagonal.
    rows: Vec<u32>,
}

impl SparsePattern {
    /// Builds a pattern from off-diagonal coordinate pairs; symmetrises
    /// and deduplicates automatically.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n > 0, "empty matrix");
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            if a == b {
                continue; // diagonal implicit
            }
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut rows = Vec::new();
        col_ptr.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            rows.extend_from_slice(list);
            col_ptr.push(rows.len());
        }
        SparsePattern { n, col_ptr, rows }
    }

    /// Matrix order.
    #[inline]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of stored off-diagonal entries (both triangles).
    #[inline]
    pub fn nnz_off_diagonal(&self) -> usize {
        self.rows.len()
    }

    /// Off-diagonal row indices of column `j`, strictly sorted.
    #[inline]
    pub fn column(&self, j: usize) -> &[u32] {
        &self.rows[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Applies a permutation: entry `(i, j)` moves to
    /// `(perm_inv[i], perm_inv[j])`, i.e. `perm[k]` is the original index
    /// eliminated at step `k`.
    pub fn permute(&self, perm: &[usize]) -> SparsePattern {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut inv = vec![usize::MAX; self.n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(inv[old] == usize::MAX, "permutation repeats index {old}");
            inv[old] = new;
        }
        let mut edges = Vec::with_capacity(self.rows.len() / 2);
        for j in 0..self.n {
            for &i in self.column(j) {
                let (a, b) = (inv[i as usize], inv[j]);
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        SparsePattern::from_edges(self.n, &edges)
    }

    /// The 5-point-stencil Laplacian of a `k × k` grid (order `k²`).
    pub fn grid2d(k: usize) -> SparsePattern {
        assert!(k > 0);
        let idx = |x: usize, y: usize| x * k + y;
        let mut edges = Vec::with_capacity(2 * k * k);
        for x in 0..k {
            for y in 0..k {
                if x + 1 < k {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < k {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        SparsePattern::from_edges(k * k, &edges)
    }

    /// The 7-point-stencil Laplacian of a `k × k × k` grid (order `k³`).
    pub fn grid3d(k: usize) -> SparsePattern {
        assert!(k > 0);
        let idx = |x: usize, y: usize, z: usize| (x * k + y) * k + z;
        let mut edges = Vec::new();
        for x in 0..k {
            for y in 0..k {
                for z in 0..k {
                    if x + 1 < k {
                        edges.push((idx(x, y, z), idx(x + 1, y, z)));
                    }
                    if y + 1 < k {
                        edges.push((idx(x, y, z), idx(x, y + 1, z)));
                    }
                    if z + 1 < k {
                        edges.push((idx(x, y, z), idx(x, y, z + 1)));
                    }
                }
            }
        }
        SparsePattern::from_edges(k * k * k, &edges)
    }

    /// A banded matrix of the given half-bandwidth (order `n`). Bandwidth 1
    /// is tridiagonal, whose elimination tree is a chain — the extreme
    /// heights of Figure 6.
    pub fn band(n: usize, half_bandwidth: usize) -> SparsePattern {
        assert!(n > 0 && half_bandwidth > 0);
        let mut edges = Vec::new();
        for i in 0..n {
            for d in 1..=half_bandwidth {
                if i + d < n {
                    edges.push((i, i + d));
                }
            }
        }
        SparsePattern::from_edges(n, &edges)
    }

    /// A connected random pattern: a random spanning tree plus `extra`
    /// random off-diagonal entries. Deterministic in `seed`.
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> SparsePattern {
        assert!(n > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(n - 1 + extra);
        for i in 1..n {
            edges.push((rng.random_range(0..i), i));
        }
        for _ in 0..extra {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        SparsePattern::from_edges(n, &edges)
    }

    /// Vertex degrees (off-diagonal entries per column).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n).map(|j| self.column(j).len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetrises_and_dedups() {
        let p = SparsePattern::from_edges(3, &[(0, 1), (1, 0), (1, 2), (1, 1)]);
        assert_eq!(p.column(0), &[1]);
        assert_eq!(p.column(1), &[0, 2]);
        assert_eq!(p.column(2), &[1]);
        assert_eq!(p.nnz_off_diagonal(), 4);
    }

    #[test]
    fn grid2d_structure() {
        let p = SparsePattern::grid2d(3);
        assert_eq!(p.order(), 9);
        // Corner has 2 neighbours, centre 4.
        assert_eq!(p.column(0).len(), 2);
        assert_eq!(p.column(4).len(), 4);
        // Laplacian of k×k grid has 2·k·(k−1) undirected edges.
        assert_eq!(p.nnz_off_diagonal(), 2 * 2 * 3 * 2);
    }

    #[test]
    fn grid3d_structure() {
        let p = SparsePattern::grid3d(2);
        assert_eq!(p.order(), 8);
        assert!(p.degrees().iter().all(|&d| d == 3));
    }

    #[test]
    fn band_structure() {
        let p = SparsePattern::band(5, 1);
        assert_eq!(p.column(2), &[1, 3]);
        let p = SparsePattern::band(5, 2);
        assert_eq!(p.column(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn permute_identity_is_noop() {
        let p = SparsePattern::grid2d(3);
        let id: Vec<usize> = (0..9).collect();
        assert_eq!(p.permute(&id), p);
    }

    #[test]
    fn permute_preserves_edge_count() {
        let p = SparsePattern::grid2d(4);
        let perm: Vec<usize> = (0..16).rev().collect();
        let q = p.permute(&perm);
        assert_eq!(q.nnz_off_diagonal(), p.nnz_off_diagonal());
        // Entry (0,1) of the original appears as (15,14).
        assert!(q.column(15).contains(&14));
    }

    #[test]
    fn random_connected_is_deterministic() {
        let a = SparsePattern::random_connected(50, 30, 1);
        let b = SparsePattern::random_connected(50, 30, 1);
        assert_eq!(a, b);
        assert!(a.nnz_off_diagonal() >= 2 * 49);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        SparsePattern::from_edges(2, &[(0, 5)]);
    }
}
