//! Fundamental supernodes and relaxed amalgamation.
//!
//! A fundamental supernode is a maximal run of consecutive columns
//! `{s, s+1, …, e}` (in a postordered matrix) where each column is the
//! only child of the next and the factor structures nest
//! (`cc[j+1] = cc[j] − 1`). Fronts are built per supernode; small
//! supernodes can optionally be amalgamated into their parent to fatten
//! fronts, as multifrontal codes do (at the price of logical fill).

/// A supernode: columns `first..first + width`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Supernode {
    /// First column of the supernode.
    pub first: usize,
    /// Number of columns (pivots).
    pub width: usize,
    /// Front order: pivots plus contribution-block rows
    /// (`= cc[first]` for fundamental supernodes).
    pub front: u64,
}

impl Supernode {
    /// Rows of the contribution block (`front − width`).
    pub fn cb_rows(&self) -> u64 {
        self.front - self.width as u64
    }
}

/// Partitions a postordered matrix into fundamental supernodes.
///
/// `parent` and `cc` must come from the **postordered** pattern (columns of
/// a supernode must be consecutive).
pub fn fundamental_supernodes(parent: &[Option<usize>], cc: &[u64]) -> Vec<Supernode> {
    let n = parent.len();
    assert_eq!(cc.len(), n);
    let mut n_children = vec![0u32; n];
    for &p in parent.iter().flatten() {
        n_children[p] += 1;
    }
    let mut out = Vec::new();
    let mut start = 0usize;
    for j in 1..=n {
        let extends =
            j < n && parent[j - 1] == Some(j) && n_children[j] == 1 && cc[j] + 1 == cc[j - 1];
        if !extends {
            out.push(Supernode {
                first: start,
                width: j - start,
                front: cc[start],
            });
            start = j;
        }
    }
    out
}

/// Parent supernode of each supernode (`None` for roots): the supernode
/// containing the elimination-tree parent of the supernode's last column.
pub fn supernode_parents(snodes: &[Supernode], parent: &[Option<usize>]) -> Vec<Option<usize>> {
    let n = parent.len();
    // Column -> supernode index.
    let mut of_col = vec![usize::MAX; n];
    for (s, sn) in snodes.iter().enumerate() {
        of_col[sn.first..sn.first + sn.width].fill(s);
    }
    snodes
        .iter()
        .map(|sn| {
            let last = sn.first + sn.width - 1;
            parent[last].map(|p| of_col[p])
        })
        .collect()
}

/// Relaxed amalgamation: absorb supernodes narrower than `min_width` into
/// their parent. The merged front is approximated as
/// `parent.front + child.width` (the child's pivots join the parent's
/// front; its contribution rows are assumed to nest in the parent's
/// structure — exact for fundamental chains, an upper-bounding
/// approximation otherwise). Returns new supernode list and parent map.
pub fn amalgamate(
    snodes: &[Supernode],
    sn_parent: &[Option<usize>],
    min_width: usize,
) -> (Vec<Supernode>, Vec<Option<usize>>) {
    let m = snodes.len();
    let mut absorbed_into: Vec<usize> = (0..m).collect();
    let mut width: Vec<usize> = snodes.iter().map(|s| s.width).collect();
    let mut front: Vec<u64> = snodes.iter().map(|s| s.front).collect();

    let find = |mut x: usize, map: &[usize]| {
        while map[x] != x {
            x = map[x];
        }
        x
    };

    // Children-before-parents: supernodes are postordered because columns
    // are, so a forward scan visits children first.
    for s in 0..m {
        let Some(p) = sn_parent[s] else { continue };
        if width[find(s, &absorbed_into)] >= min_width {
            continue;
        }
        let rs = find(s, &absorbed_into);
        let rp = find(p, &absorbed_into);
        if rs == rp {
            continue;
        }
        front[rp] += width[rs] as u64;
        width[rp] += width[rs];
        absorbed_into[rs] = rp;
    }

    // Rebuild compacted lists.
    let mut new_index = vec![usize::MAX; m];
    let mut out = Vec::new();
    for s in 0..m {
        if find(s, &absorbed_into) == s {
            new_index[s] = out.len();
            out.push(Supernode {
                first: snodes[s].first,
                width: width[s],
                front: front[s],
            });
        }
    }
    let mut parents = Vec::with_capacity(out.len());
    for s in 0..m {
        if new_index[s] != usize::MAX {
            let p = sn_parent[s].map(|p| find(p, &absorbed_into));
            parents.push(p.map(|p| new_index[p]));
        }
    }
    (out, parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colcount::column_counts;
    use crate::etree::elimination_tree;
    use crate::pattern::SparsePattern;

    #[test]
    fn dense_matrix_is_one_supernode() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        let sn = fundamental_supernodes(&et, &cc);
        assert_eq!(
            sn,
            vec![Supernode {
                first: 0,
                width: 4,
                front: 4
            }]
        );
        assert_eq!(sn[0].cb_rows(), 0);
    }

    #[test]
    fn tridiagonal_merges_into_one_chain_supernode() {
        // Tridiagonal: parent(j)=j+1, single children, cc = n-j+1? No:
        // cc = [2,2,...,2,1] so cc[j+1] = cc[j]-1 fails except at the end —
        // every column is its own supernode except the last pair.
        let p = SparsePattern::band(5, 1);
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        let sn = fundamental_supernodes(&et, &cc);
        assert_eq!(sn.len(), 4);
        assert_eq!(
            sn[3],
            Supernode {
                first: 3,
                width: 2,
                front: 2
            }
        );
    }

    #[test]
    fn supernode_parents_follow_etree() {
        let p = SparsePattern::band(5, 1);
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        let sn = fundamental_supernodes(&et, &cc);
        let par = supernode_parents(&sn, &et);
        assert_eq!(par, vec![Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn supernodes_partition_all_columns() {
        let p = SparsePattern::grid2d(6);
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        let sn = fundamental_supernodes(&et, &cc);
        let total: usize = sn.iter().map(|s| s.width).sum();
        assert_eq!(total, 36);
        // Contiguous and ordered.
        let mut next = 0;
        for s in &sn {
            assert_eq!(s.first, next);
            next += s.width;
        }
    }

    #[test]
    fn amalgamation_reduces_supernode_count() {
        let p = SparsePattern::band(20, 1);
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        let sn = fundamental_supernodes(&et, &cc);
        let par = supernode_parents(&sn, &et);
        let (merged, mpar) = amalgamate(&sn, &par, 4);
        assert!(merged.len() < sn.len());
        assert_eq!(mpar.len(), merged.len());
        let total: usize = merged.iter().map(|s| s.width).sum();
        assert_eq!(total, 20, "amalgamation must preserve the pivot count");
        // Root count preserved.
        assert_eq!(mpar.iter().filter(|p| p.is_none()).count(), 1);
    }

    #[test]
    fn amalgamate_with_zero_threshold_is_identity() {
        let p = SparsePattern::grid2d(5);
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        let sn = fundamental_supernodes(&et, &cc);
        let par = supernode_parents(&sn, &et);
        let (merged, mpar) = amalgamate(&sn, &par, 0);
        assert_eq!(merged, sn);
        assert_eq!(mpar, par);
    }
}
