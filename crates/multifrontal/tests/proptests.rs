//! Property tests of the symbolic-analysis pipeline.

use memtree_multifrontal::colcount::{column_counts, factor_nnz};
use memtree_multifrontal::ordering::{is_permutation, minimum_degree};
use memtree_multifrontal::{elimination_tree, etree_postorder, CorpusSpec, SparsePattern};
use memtree_tree::validate::check_consistency;
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = SparsePattern> {
    (2usize..40, 0usize..80, 0u64..1000)
        .prop_map(|(n, extra, seed)| SparsePattern::random_connected(n, extra, seed))
}

proptest! {
    /// The elimination tree of a connected pattern is a tree rooted at the
    /// last column, with parents strictly above children.
    #[test]
    fn etree_structure(p in arb_pattern()) {
        let et = elimination_tree(&p);
        let n = p.order();
        prop_assert_eq!(et.len(), n);
        prop_assert_eq!(et[n - 1], None, "last column is the root");
        for (j, &par) in et.iter().enumerate().take(n - 1) {
            let par = par.expect("connected pattern: every column has a parent");
            prop_assert!(par > j, "parent {par} not above column {j}");
        }
        // Postorder covers everything exactly once.
        let po = etree_postorder(&et);
        let mut seen = vec![false; n];
        for &x in &po {
            prop_assert!(!seen[x]);
            seen[x] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Column counts are consistent: within bounds, and the factor never
    /// has fewer nonzeros than the original lower triangle.
    #[test]
    fn colcount_bounds(p in arb_pattern()) {
        let n = p.order();
        let et = elimination_tree(&p);
        let cc = column_counts(&p, &et);
        for (j, &c) in cc.iter().enumerate() {
            prop_assert!(c >= 1, "column {j} lost its diagonal");
            prop_assert!(c <= (n - j) as u64, "column {j} count {c} exceeds n - j");
        }
        let lower_nnz = n as u64 + (p.nnz_off_diagonal() / 2) as u64;
        prop_assert!(factor_nnz(&cc) >= lower_nnz, "factor lost entries of A");
    }

    /// Minimum degree always emits a permutation, and the permuted pattern
    /// factors with no more fill than the identity order... is NOT a
    /// theorem (MD is a heuristic), so only validity is asserted here.
    #[test]
    fn minimum_degree_validity(p in arb_pattern()) {
        let perm = minimum_degree(&p);
        prop_assert!(is_permutation(&perm, p.order()));
        let q = p.permute(&perm);
        prop_assert_eq!(q.nnz_off_diagonal(), p.nnz_off_diagonal());
    }

    /// The full pipeline yields a valid assembly tree whose pivots cover
    /// the matrix exactly once (Σ width = n) and whose root front has no
    /// contribution block.
    #[test]
    fn pipeline_yields_valid_assembly_tree(p in arb_pattern()) {
        let spec = CorpusSpec::small();
        let perm = minimum_degree(&p);
        let tree = spec.analyze(&p, &perm);
        check_consistency(&tree).unwrap();
        prop_assert_eq!(tree.output(tree.root()), 0);
        // Every front is structurally sane: d² = exec + output > 0.
        for i in tree.nodes() {
            prop_assert!(tree.exec(i) + tree.output(i) > 0);
        }
    }

    /// Permuting by a postorder of the elimination tree preserves the
    /// factor size (symmetric permutations never change fill of the tree
    /// they were derived from).
    #[test]
    fn postordering_preserves_fill(p in arb_pattern()) {
        let et = elimination_tree(&p);
        let before = factor_nnz(&column_counts(&p, &et));
        let po = etree_postorder(&et);
        let q = p.permute(&po);
        let et_q = elimination_tree(&q);
        let after = factor_nnz(&column_counts(&q, &et_q));
        prop_assert_eq!(before, after);
    }
}
