//! `CP` — the critical-path order: nodes by non-increasing bottom level.
//!
//! The bottom level of a node in an in-tree is the total processing time on
//! its unique path to the root (both endpoints included) — the remaining
//! work that must serialise after the node starts. Ordering by
//! non-increasing bottom level is the classical list-scheduling priority;
//! the paper reports it as the best execution order (Figures 8 and 14).

use crate::order::{Order, OrderKind};
use memtree_tree::{NodeId, TaskTree, TreeStats};

/// Builds the `CP` order.
///
/// Ties are broken by depth (deeper first) and then id, which keeps the
/// order topological even when processing times are zero: on a root-to-leaf
/// path, bottom levels are non-decreasing with depth, so the deeper node
/// sorts first.
pub fn cp_order(tree: &TaskTree) -> Order {
    let stats = TreeStats::compute(tree);
    cp_order_with_stats(tree, &stats)
}

/// As [`cp_order`] but reusing precomputed statistics.
pub fn cp_order_with_stats(tree: &TaskTree, stats: &TreeStats) -> Order {
    let mut seq: Vec<NodeId> = tree.nodes().collect();
    seq.sort_by(|&a, &b| stats.cp_before(a, b));
    Order::new(tree, seq, OrderKind::CriticalPath).expect("CP order is topological")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{TaskSpec, TaskTree};

    #[test]
    fn orders_by_remaining_path_work() {
        // Root 0 (t=1); children: 1 (t=5), 2 (t=1); 2 has child 3 (t=10).
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(2)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 1, 5.0),
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 1, 10.0),
            ],
        )
        .unwrap();
        // Bottom levels: 3 -> 12, 1 -> 6, 2 -> 2, 0 -> 1.
        let o = cp_order(&t);
        assert_eq!(o.sequence(), &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]);
    }

    #[test]
    fn stays_topological_with_zero_times() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(1), Some(1)],
            &[TaskSpec::new(0, 1, 0.0); 4],
        )
        .unwrap();
        let o = cp_order(&t);
        t.check_topological(o.sequence()).unwrap();
    }

    #[test]
    fn random_trees_topological() {
        for seed in 0..10 {
            let t = memtree_gen::shapes::random_recursive(64, TaskSpec::new(1, 2, 1.0), seed)
                .map_specs(|i, mut s| {
                    s.time = ((i.index() * 17) % 4) as f64; // include zeros
                    s
                });
            let o = cp_order(&t);
            t.check_topological(o.sequence()).unwrap();
        }
    }
}
