//! Brute-force oracles for small trees, used by tests.
//!
//! These enumerate schedules exhaustively and are exponential; they guard
//! the clever algorithms (`memPO`, `OptSeq`, Appendix A) against subtle
//! mistakes. All functions assert a size cap rather than silently crawling.

use memtree_tree::memory::sequential_peak;
use memtree_tree::{NodeId, TaskTree};
use std::collections::HashMap;

/// Minimum peak memory over **all** topological traversals, by dynamic
/// programming over completed-task subsets.
///
/// The resident memory between steps depends only on the *set* of completed
/// tasks (outputs whose parent is incomplete), so states are subsets and
/// the DP is exact. Panics if `tree.len() > 22`.
pub fn min_topological_peak(tree: &TaskTree) -> u64 {
    let n = tree.len();
    assert!(n <= 22, "exhaustive search capped at 22 nodes, got {n}");
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // live(mask): outputs of completed nodes whose parent is incomplete
    // (the root's output counts once completed).
    let live = |mask: u32| -> u64 {
        let mut sum = 0u64;
        let mut m = mask;
        while m != 0 {
            let ix = m.trailing_zeros() as usize;
            m &= m - 1;
            let id = NodeId::from_index(ix);
            let parent_done = tree
                .parent(id)
                .is_some_and(|p| mask & (1 << p.index()) != 0);
            if !parent_done {
                sum += tree.output(id);
            }
        }
        sum
    };

    let mut memo: HashMap<u32, u64> = HashMap::new();

    // Iterative DFS over the state graph with an explicit stack; states are
    // processed after their successors.
    let mut stack: Vec<(u32, bool)> = vec![(0, false)];
    while let Some((mask, expanded)) = stack.pop() {
        if memo.contains_key(&mask) {
            continue;
        }
        if mask == full {
            memo.insert(mask, 0);
            continue;
        }
        let available: Vec<usize> = (0..n)
            .filter(|&v| {
                mask & (1 << v) == 0
                    && tree
                        .children(NodeId::from_index(v))
                        .iter()
                        .all(|c| mask & (1 << c.index()) != 0)
            })
            .collect();
        if expanded {
            let base = live(mask);
            let mut best = u64::MAX;
            for v in available {
                let id = NodeId::from_index(v);
                let during = base + tree.exec(id) + tree.output(id);
                let rest = memo[&(mask | (1 << v))];
                best = best.min(during.max(rest));
            }
            memo.insert(mask, best);
        } else {
            stack.push((mask, true));
            for v in available {
                stack.push((mask | (1 << v), false));
            }
        }
    }
    memo[&0]
}

/// All postorder traversals of the subtree rooted at `node`: the full
/// cross product of child permutations and child sub-enumerations, capped
/// at `limit` results. Recursion is acceptable — this is test-only code on
/// tiny trees.
fn enumerate_postorders(tree: &TaskTree, node: NodeId, limit: usize) -> Vec<Vec<NodeId>> {
    let children = tree.children(node);
    if children.is_empty() {
        return vec![vec![node]];
    }
    let per_child: Vec<Vec<Vec<NodeId>>> = children
        .iter()
        .map(|&c| enumerate_postorders(tree, c, limit))
        .collect();

    let mut out: Vec<Vec<NodeId>> = Vec::new();
    let k = children.len();
    let mut perm: Vec<usize> = (0..k).collect();
    // Heap's-algorithm-free plain enumeration via next_permutation-style
    // recursion on index selection.
    fn visit(
        perm: &mut Vec<usize>,
        depth: usize,
        per_child: &[Vec<Vec<NodeId>>],
        node: NodeId,
        out: &mut Vec<Vec<NodeId>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if depth == perm.len() {
            // Cross product of the chosen permutation's sub-orders.
            let mut partials: Vec<Vec<NodeId>> = vec![Vec::new()];
            for &ci in perm.iter() {
                let mut next = Vec::new();
                for base in &partials {
                    for sub in &per_child[ci] {
                        let mut seq = base.clone();
                        seq.extend_from_slice(sub);
                        next.push(seq);
                        if next.len() + out.len() > limit.saturating_mul(2) {
                            break;
                        }
                    }
                }
                partials = next;
            }
            for mut seq in partials {
                if out.len() >= limit {
                    return;
                }
                seq.push(node);
                out.push(seq);
            }
            return;
        }
        for i in depth..perm.len() {
            perm.swap(depth, i);
            visit(perm, depth + 1, per_child, node, out, limit);
            perm.swap(depth, i);
        }
    }
    visit(&mut perm, 0, &per_child, node, &mut out, limit);
    out
}

/// All postorder traversals of `tree` (every permutation of children at
/// every node, full cross product), stopping after `limit` orders. Panics
/// if the tree has more than 12 nodes — factorial blowup.
pub fn all_postorders(tree: &TaskTree, limit: usize) -> Vec<Vec<NodeId>> {
    assert!(tree.len() <= 12, "postorder enumeration capped at 12 nodes");
    enumerate_postorders(tree, tree.root(), limit)
}

/// Minimum peak over the enumerated postorders (see [`all_postorders`] for
/// the enumeration scope).
pub fn min_enumerated_postorder_peak(tree: &TaskTree, limit: usize) -> u64 {
    all_postorders(tree, limit)
        .into_iter()
        .map(|po| sequential_peak(tree, &po).expect("enumerated orders are topological"))
        .min()
        .expect("at least one postorder exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::TaskSpec;

    #[test]
    fn dp_matches_hand_computation_on_fork() {
        // Root + two leaves, f = 5 and 7, root f = 1.
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 5, 1.0),
                TaskSpec::new(0, 7, 1.0),
            ],
        )
        .unwrap();
        // Any order peaks at 5 + 7 + 1 = 13 during the root.
        assert_eq!(min_topological_peak(&t), 13);
    }

    #[test]
    fn dp_beats_or_equals_any_sampled_order() {
        for seed in 0..10 {
            let t = memtree_gen::shapes::random_recursive(9, TaskSpec::default(), seed).map_specs(
                |i, mut s| {
                    s.exec = (i.index() as u64 * 7) % 6;
                    s.output = 1 + (i.index() as u64 * 3) % 9;
                    s
                },
            );
            let best = min_topological_peak(&t);
            let po = memtree_tree::traverse::postorder(&t);
            let peak = sequential_peak(&t, &po).unwrap();
            assert!(best <= peak, "seed {seed}");
        }
    }

    #[test]
    fn postorder_enumeration_counts() {
        // Root with 3 leaf children: 3! = 6 postorders.
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(0)],
            &[TaskSpec::default(); 4],
        )
        .unwrap();
        let orders = all_postorders(&t, 1000);
        assert_eq!(orders.len(), 6);
        for o in &orders {
            t.check_topological(o).unwrap();
        }
    }
}
