#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Sequential traversals and priority orders for task trees.
//!
//! The scheduling heuristics of the paper are parameterised by two orders:
//! an **activation order** `AO` (a topological order used to admit nodes
//! into memory) and an **execution order** `EO` (a priority used to pick
//! among runnable nodes). Section 7 evaluates six combinations built from
//! four orders, all implemented here:
//!
//! * [`po_mem`] — `memPO`, the postorder minimising peak memory among all
//!   postorders (Liu 1986). This is the paper's default AO and EO, and the
//!   yardstick memory bounds are normalised by.
//! * [`optseq`] — `OptSeq`, the optimal sequential traversal (not
//!   necessarily a postorder) minimising peak memory (Liu 1987, generalized
//!   pebble game).
//! * [`cp`] — `CP`, nodes by non-increasing bottom level (critical path).
//! * [`po_perf`] — `perfPO`, a postorder giving priority to subtrees with
//!   the largest critical path.
//! * [`po_avg`] — the average-memory-minimising postorder of Appendix A
//!   (Smith's rule on `T_i / f_i`).
//!
//! [`exhaustive`] contains brute-force oracles used by property tests.

pub mod cp;
pub mod exhaustive;
pub mod optseq;
pub mod order;
pub mod po_avg;
pub mod po_mem;
pub mod po_perf;

pub use cp::cp_order;
pub use optseq::{optimal_traversal, OptimalTraversal};
pub use order::{Order, OrderKind};
pub use po_avg::avg_mem_postorder;
pub use po_mem::{mem_postorder, postorder_peaks};
pub use po_perf::perf_postorder;

use memtree_tree::TaskTree;

/// Builds the order of the given kind for `tree`.
///
/// This is the single entry point used by the experiment harness to sweep
/// AO/EO combinations (Figures 8 and 14).
pub fn make_order(tree: &TaskTree, kind: OrderKind) -> Order {
    match kind {
        OrderKind::MemPostorder => mem_postorder(tree),
        OrderKind::OptSeq => optimal_traversal(tree).order,
        OrderKind::CriticalPath => cp_order(tree),
        OrderKind::PerfPostorder => perf_postorder(tree),
        OrderKind::AvgMemPostorder => avg_mem_postorder(tree),
        OrderKind::NaturalPostorder => Order::new(
            tree,
            memtree_tree::traverse::postorder(tree),
            OrderKind::NaturalPostorder,
        )
        .expect("natural postorder is topological"),
    }
}
