//! `OptSeq` — Liu's optimal sequential traversal (Liu 1987).
//!
//! The minimum-peak-memory traversal of a tree need not be a postorder:
//! it may suspend a subtree at a memory *valley*, work elsewhere, and come
//! back. Liu's generalized tree-pebbling result gives an exact algorithm:
//!
//! 1. Represent the optimal traversal of every subtree by its **hill–valley
//!    decomposition**: a sequence of segments `(h₁,v₁)…(h_m,v_m)` where
//!    `h_k` is the peak while the segment runs and `v_k` the resident
//!    memory when it ends (both relative to the subtree's start). The
//!    canonical decomposition cuts the memory profile at its successive
//!    minima and satisfies `v₁ < v₂ < … < v_m` and strictly decreasing
//!    *keys* `h_k − v_k`.
//! 2. Combine children by merging their segment sequences in non-increasing
//!    key order — the exchange argument for "jobs with residuals": running
//!    `a` before `b` is no worse exactly when `h_a − v_a ≥ h_b − v_b`.
//!    A **stable** sort preserves each child's internal order because keys
//!    strictly decrease within a child.
//! 3. Append the parent's own processing
//!    (`hill = Σ f_children + n + f`, `valley = f`) and re-canonicalise
//!    with a merge stack: adjacent segments are fused while the later one
//!    does not reach a strictly lower… rather, while valleys fail to
//!    strictly increase or keys fail to strictly decrease — interleaving
//!    foreign work between two such segments can never help.
//!
//! The result at the root is the optimal peak and an explicit traversal.
//! Correctness is cross-checked against an exhaustive search over all
//! topological orders in this crate's tests (`exhaustive` module).

use crate::order::{Order, OrderKind};
use memtree_tree::traverse::postorder;
use memtree_tree::{NodeId, TaskTree};

/// One segment of a hill–valley decomposition, in memory units relative to
/// the start of its subtree's traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Piece {
    /// Peak while the segment runs.
    hill: u64,
    /// Resident memory when the segment ends.
    valley: u64,
    /// The tasks executed by this segment, in order.
    nodes: Vec<NodeId>,
}

impl Piece {
    #[inline]
    fn key(&self) -> u64 {
        self.hill - self.valley
    }
}

/// The outcome of [`optimal_traversal`].
#[derive(Clone, Debug)]
pub struct OptimalTraversal {
    /// The optimal order (children before parents, not necessarily a
    /// postorder).
    pub order: Order,
    /// Its peak memory — the minimum over **all** topological traversals.
    pub peak: u64,
}

/// Pushes `piece` onto `list`, fusing trailing segments while the canonical
/// invariants (strictly increasing valleys, strictly decreasing keys) do
/// not hold.
fn push_canonical(list: &mut Vec<Piece>, mut piece: Piece) {
    while let Some(top) = list.last() {
        let valleys_ok = piece.valley > top.valley;
        let keys_ok = piece.key() < top.key();
        if valleys_ok && keys_ok {
            break;
        }
        // Fuse: the combined segment peaks at the higher hill and ends at
        // the later segment's valley.
        let mut top = list.pop().expect("just peeked");
        top.hill = top.hill.max(piece.hill);
        top.valley = piece.valley;
        top.nodes.append(&mut piece.nodes);
        piece = top;
    }
    list.push(piece);
}

/// Computes the optimal traversal and its peak.
pub fn optimal_traversal(tree: &TaskTree) -> OptimalTraversal {
    // Per-node decompositions, taken (moved out) by the parent when it
    // combines them.
    let mut reprs: Vec<Option<Vec<Piece>>> = vec![None; tree.len()];

    for i in postorder(tree) {
        let children = tree.children(i);

        // Gather children's segments in relative (delta) form, remembering
        // which child each came from so the stable sort keeps their order.
        // (dh, dv) are the hill/valley increments over the child's previous
        // valley; keys dh - dv equal the absolute keys.
        let mut rel: Vec<(u64, u64, Vec<NodeId>)> = Vec::new();
        let mut input_total = 0u64;
        for &c in children {
            let pieces = reprs[c.index()].take().expect("children processed first");
            let mut prev_valley = 0u64;
            for p in pieces {
                debug_assert!(p.hill >= prev_valley, "profile continuity violated");
                rel.push((p.hill - prev_valley, p.valley - prev_valley, p.nodes));
                prev_valley = p.valley;
            }
            debug_assert_eq!(
                prev_valley,
                tree.output(c),
                "subtree must end with f_c resident"
            );
            input_total += tree.output(c);
        }
        // Non-increasing key; stable, so each child's strictly-decreasing
        // key run stays in order.
        rel.sort_by_key(|(dh, dv, _)| std::cmp::Reverse(dh - dv));

        // Re-absolutise and canonicalise.
        let mut combined: Vec<Piece> = Vec::with_capacity(rel.len() + 1);
        let mut base = 0u64;
        for (dh, dv, nodes) in rel {
            let piece = Piece {
                hill: base + dh,
                valley: base + dv,
                nodes,
            };
            base = piece.valley;
            push_canonical(&mut combined, piece);
        }
        debug_assert_eq!(base, input_total);

        // The node's own processing step.
        push_canonical(
            &mut combined,
            Piece {
                hill: input_total + tree.exec(i) + tree.output(i),
                valley: tree.output(i),
                nodes: vec![i],
            },
        );
        reprs[i.index()] = Some(combined);
    }

    let root_pieces = reprs[tree.root().index()].take().expect("root processed");
    let peak = root_pieces.iter().map(|p| p.hill).max().unwrap_or(0);
    let mut seq = Vec::with_capacity(tree.len());
    for p in root_pieces {
        seq.extend(p.nodes);
    }
    let order =
        Order::new(tree, seq, OrderKind::OptSeq).expect("optimal traversal must be topological");
    debug_assert_eq!(order.sequential_peak(tree), peak);
    OptimalTraversal { order, peak }
}

/// The optimal peak only.
pub fn optimal_peak(tree: &TaskTree) -> u64 {
    optimal_traversal(tree).peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::po_mem::min_postorder_peak;
    use memtree_tree::{TaskSpec, TaskTree};

    #[test]
    fn single_node() {
        let t = TaskTree::from_parents(&[None], &[TaskSpec::new(3, 4, 1.0)]).unwrap();
        let o = optimal_traversal(&t);
        assert_eq!(o.peak, 7);
        assert_eq!(o.order.sequence(), &[NodeId(0)]);
    }

    #[test]
    fn chain_equals_postorder() {
        let t = memtree_gen::shapes::chain(40, TaskSpec::new(2, 5, 1.0));
        assert_eq!(optimal_peak(&t), min_postorder_peak(&t));
    }

    #[test]
    fn never_worse_than_best_postorder() {
        for seed in 0..40 {
            let t = memtree_gen::shapes::random_recursive(40, TaskSpec::default(), seed).map_specs(
                |i, mut s| {
                    s.exec = (i.index() as u64 * 7) % 10;
                    s.output = 1 + (i.index() as u64 * 13) % 20;
                    s
                },
            );
            let opt = optimal_peak(&t);
            let po = min_postorder_peak(&t);
            assert!(opt <= po, "seed {seed}: OptSeq {opt} worse than memPO {po}");
        }
    }

    #[test]
    fn classic_non_postorder_win() {
        // The textbook family where postorders are suboptimal: two
        // "hill-then-small-valley" subtrees under one root. A postorder
        // must finish one child subtree entirely before the other; the
        // optimal traversal interleaves at the valleys.
        //
        // Each child c has two leaf grandchildren with big outputs that the
        // child reduces to a tiny output. Postorder peak:
        // P(child) = max(B, B + B') during leaves = 2B; after the child
        // only ε remains. Processing the second child on top of ε peaks at
        // 2B + ε; so best postorder = 2B + ε. OptSeq achieves the same
        // here — to construct a strict win we need asymmetric hills:
        let big = 100;
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)],
            &[
                TaskSpec::new(0, 1, 1.0),   // root
                TaskSpec::new(0, 1, 1.0),   // child A: reduces to 1
                TaskSpec::new(0, 1, 1.0),   // child B: reduces to 1
                TaskSpec::new(0, big, 1.0), // A's leaves: 100 + 100
                TaskSpec::new(0, big, 1.0),
                TaskSpec::new(0, big, 1.0), // B's leaves
                TaskSpec::new(0, big, 1.0),
            ],
        )
        .unwrap();
        let opt = optimal_peak(&t);
        let po = min_postorder_peak(&t);
        // Postorder: A's leaves (peak 200), A runs (200 inputs + 1 output
        // = 201), residual 1; B's subtree on top: 1 + 200 + 1 = 202.
        assert_eq!(po, 202);
        // The optimum cannot beat 201 (A's subtree alone needs it); whether
        // interleaving wins here is settled by the exhaustive oracle in the
        // proptest suite. At minimum OptSeq must not be worse.
        assert!(opt <= po);
        assert!(opt >= 201);
    }

    #[test]
    fn strict_improvement_over_postorder_exists() {
        // Jacquelin et al.'s style example where OptSeq strictly beats any
        // postorder. Child X: leaf with huge transient peak but tiny
        // output; child Y: chain that holds a big intermediate but has its
        // own small valley. Interleaving X at Y's valley wins.
        //
        //        root(n=0,f=1)
        //        /          \
        //   X(n=90,f=5)   Y(f=10)
        //                   |
        //               Yc(n=60,f=40)
        //
        // Postorders:
        //   X first: peak max(95, 5+100, 5+50, 5+40+10+1) = 105
        //     (Yc: n=60,f=40 -> 100; Y: 40+10 = 50)
        //   Y first: max(100, 50, 40? ...) Y subtree: Yc peak 100, then Y
        //     runs with 40+0+10 -> 50, residual 10; X on top: 10+95 = 105;
        //     root: 10+5+1 = 16. Peak 105.
        // OptSeq: run Yc (peak 100, residual 40)? valley 40 is big...
        // run X first (peak 95, residual 5), Yc: 5+100 = 105. Hmm equal.
        // Interleave X after Y completes: Y residual 10, X: 10+95=105.
        // This instance has no win either; the real guarantee is checked
        // exhaustively in proptests. Keep an executable sanity assertion:
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(2)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(90, 5, 1.0),
                TaskSpec::new(0, 10, 1.0),
                TaskSpec::new(60, 40, 1.0),
            ],
        )
        .unwrap();
        assert!(optimal_peak(&t) <= min_postorder_peak(&t));
    }

    #[test]
    fn reported_peak_matches_replayed_order() {
        for seed in 0..30 {
            let t = memtree_gen::shapes::random_recursive(50, TaskSpec::default(), seed).map_specs(
                |i, mut s| {
                    s.exec = (i.index() as u64 * 3) % 8;
                    s.output = 1 + (i.index() as u64 * 5) % 12;
                    s
                },
            );
            let o = optimal_traversal(&t);
            assert_eq!(
                o.peak,
                o.order.sequential_peak(&t),
                "seed {seed}: reported peak disagrees with replay"
            );
        }
    }

    #[test]
    fn zero_sized_outputs_handled() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 0, 1.0),
                TaskSpec::new(5, 0, 1.0),
                TaskSpec::new(7, 0, 1.0),
            ],
        )
        .unwrap();
        let o = optimal_traversal(&t);
        assert_eq!(o.peak, 7);
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use memtree_tree::TaskSpec;

    #[test]
    fn deep_chain_runs_in_linear_time() {
        // 100k-deep chain: the segment representation must amortise node
        // concatenation, or this test times out.
        let n = 100_000;
        let t = memtree_gen::shapes::chain(n, TaskSpec::new(2, 5, 1.0));
        let start = std::time::Instant::now();
        let o = optimal_traversal(&t);
        assert_eq!(o.order.len(), n);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "OptSeq took {:?} on a {n}-node chain",
            start.elapsed()
        );
    }

    #[test]
    fn wide_star_runs_fast() {
        let t =
            memtree_gen::shapes::star(50_000, TaskSpec::new(0, 1, 1.0), TaskSpec::new(3, 2, 1.0));
        let o = optimal_traversal(&t);
        assert_eq!(o.order.len(), 50_000);
        // Star peak: all leaf outputs + the widest leaf in flight + root.
        assert_eq!(o.peak, o.order.sequential_peak(&t));
    }
}
