//! The [`Order`] type: a validated topological sequence plus rank lookup.

use memtree_tree::{NodeId, TaskTree, TreeError};

/// Identifies which traversal strategy produced an [`Order`].
///
/// The names mirror Section 7.3.1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderKind {
    /// `memPO`: the peak-memory-minimising postorder (Liu 1986).
    MemPostorder,
    /// `OptSeq`: the optimal sequential traversal (Liu 1987).
    OptSeq,
    /// `CP`: non-increasing bottom level.
    CriticalPath,
    /// `perfPO`: postorder, largest-critical-path subtree first.
    PerfPostorder,
    /// Appendix A: the average-memory-minimising postorder.
    AvgMemPostorder,
    /// Plain id-ordered postorder (children in id order).
    NaturalPostorder,
}

impl OrderKind {
    /// The label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            OrderKind::MemPostorder => "memPO",
            OrderKind::OptSeq => "OptSeq",
            OrderKind::CriticalPath => "CP",
            OrderKind::PerfPostorder => "perfPO",
            OrderKind::AvgMemPostorder => "avgMemPO",
            OrderKind::NaturalPostorder => "naturalPO",
        }
    }

    /// The inverse of [`OrderKind::label`] — `None` for an unknown label.
    /// Wire formats (the serialized `PolicySpec` a shard-worker process
    /// receives) round-trip order kinds through their labels.
    pub fn from_label(label: &str) -> Option<OrderKind> {
        [
            OrderKind::MemPostorder,
            OrderKind::OptSeq,
            OrderKind::CriticalPath,
            OrderKind::PerfPostorder,
            OrderKind::AvgMemPostorder,
            OrderKind::NaturalPostorder,
        ]
        .into_iter()
        .find(|k| k.label() == label)
    }
}

impl std::fmt::Display for OrderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A topological order of a task tree with O(1) rank lookup.
///
/// Used both as an activation order (`AO`, consumed front to back) and as an
/// execution priority (`EO`, smaller rank = higher priority).
#[derive(Clone, Debug)]
pub struct Order {
    seq: Vec<NodeId>,
    rank: Vec<u32>,
    kind: OrderKind,
}

impl Order {
    /// Wraps and validates a topological sequence.
    pub fn new(tree: &TaskTree, seq: Vec<NodeId>, kind: OrderKind) -> Result<Self, TreeError> {
        tree.check_topological(&seq)?;
        let mut rank = vec![0u32; seq.len()];
        for (k, &i) in seq.iter().enumerate() {
            rank[i.index()] = k as u32;
        }
        Ok(Order { seq, rank, kind })
    }

    /// The sequence, children always before parents.
    #[inline]
    pub fn sequence(&self) -> &[NodeId] {
        &self.seq
    }

    /// Position of `i` in the sequence (0 = first).
    #[inline]
    pub fn rank(&self, i: NodeId) -> u32 {
        self.rank[i.index()]
    }

    /// The node at position `k`.
    #[inline]
    pub fn at(&self, k: usize) -> NodeId {
        self.seq[k]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the order is empty (never true for built orders).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Which strategy produced this order.
    #[inline]
    pub fn kind(&self) -> OrderKind {
        self.kind
    }

    /// `true` if `a` has higher priority (smaller rank) than `b`.
    #[inline]
    pub fn before(&self, a: NodeId, b: NodeId) -> bool {
        self.rank(a) < self.rank(b)
    }

    /// The peak memory of executing this order sequentially.
    pub fn sequential_peak(&self, tree: &TaskTree) -> u64 {
        memtree_tree::memory::sequential_peak(tree, &self.seq)
            .expect("order was validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{TaskSpec, TaskTree};

    fn tree() -> TaskTree {
        TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 2, 1.0),
                TaskSpec::new(0, 3, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ranks_and_priorities() {
        let t = tree();
        let o = Order::new(
            &t,
            vec![NodeId(2), NodeId(1), NodeId(0)],
            OrderKind::NaturalPostorder,
        )
        .unwrap();
        assert_eq!(o.rank(NodeId(2)), 0);
        assert_eq!(o.rank(NodeId(0)), 2);
        assert!(o.before(NodeId(2), NodeId(1)));
        assert_eq!(o.at(1), NodeId(1));
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn rejects_non_topological() {
        let t = tree();
        assert!(Order::new(
            &t,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            OrderKind::NaturalPostorder
        )
        .is_err());
    }

    #[test]
    fn sequential_peak_delegates() {
        let t = tree();
        let o = Order::new(
            &t,
            vec![NodeId(1), NodeId(2), NodeId(0)],
            OrderKind::NaturalPostorder,
        )
        .unwrap();
        // 2 live, then 2+3 live, then 2+3+1 during the root.
        assert_eq!(o.sequential_peak(&t), 6);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(OrderKind::MemPostorder.label(), "memPO");
        assert_eq!(OrderKind::OptSeq.to_string(), "OptSeq");
        assert_eq!(OrderKind::CriticalPath.label(), "CP");
        assert_eq!(OrderKind::PerfPostorder.label(), "perfPO");
    }
}
