//! Appendix A — the postorder minimising **average** memory.
//!
//! Theorem 4 of the paper: a postorder minimising the time-averaged memory
//! `AvgMem = (1/Cmax) ∫ mem(t) dt` is obtained by processing subtrees by
//! non-increasing `T_i / f_i`, where `T_i` is the total processing time of
//! the subtree rooted at `i` — Smith's rule applied to the weighted-flow
//! reformulation.

use crate::order::{Order, OrderKind};
use memtree_tree::traverse::postorder_with_child_order;
use memtree_tree::{TaskTree, TreeStats};

/// Builds the Appendix-A postorder: children expanded by non-increasing
/// `T_c / f_c`.
///
/// Children with `f_c = 0` have an infinite ratio and are processed first
/// (their output costs nothing to hold while the rest runs).
pub fn avg_mem_postorder(tree: &TaskTree) -> Order {
    let stats = TreeStats::compute(tree);
    let rank: Vec<u64> = tree
        .nodes()
        .map(|i| {
            let t = stats.subtree_time[i.index()];
            let f = tree.output(i);
            let ratio = if f == 0 { f64::INFINITY } else { t / f as f64 };
            // Non-increasing ratio: invert the IEEE order of non-negative
            // floats. INFINITY maps to rank 0 modulo the offset below.
            u64::MAX - ratio.to_bits()
        })
        .collect();
    let seq = postorder_with_child_order(tree, &rank);
    Order::new(tree, seq, OrderKind::AvgMemPostorder).expect("postorder is topological")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::memory::sequential_average_memory;
    use memtree_tree::{NodeId, TaskSpec, TaskTree};

    #[test]
    fn smith_rule_orders_by_time_over_output() {
        // Root with two leaves: leaf 1 (T=4, f=1, ratio 4) and
        // leaf 2 (T=1, f=4, ratio 0.25). Leaf 1 first.
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 1, 4.0),
                TaskSpec::new(0, 4, 1.0),
            ],
        )
        .unwrap();
        let o = avg_mem_postorder(&t);
        assert_eq!(o.sequence(), &[NodeId(1), NodeId(2), NodeId(0)]);
        // And it indeed has lower average memory than the reverse.
        let fwd = sequential_average_memory(&t, o.sequence()).unwrap();
        let rev = sequential_average_memory(&t, &[NodeId(2), NodeId(1), NodeId(0)]).unwrap();
        assert!(fwd < rev, "Smith order {fwd} should beat reverse {rev}");
    }

    #[test]
    fn zero_output_children_first() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 5, 1.0),
                TaskSpec::new(0, 0, 100.0), // f = 0: hold-free, go first
            ],
        )
        .unwrap();
        let o = avg_mem_postorder(&t);
        assert_eq!(o.sequence()[0], NodeId(2));
    }

    #[test]
    fn beats_or_ties_every_other_postorder_on_small_trees() {
        // Exhaustive check of Theorem 4 on all child permutations.
        use crate::exhaustive::all_postorders;
        for seed in 0..15 {
            let t = memtree_gen::shapes::random_recursive(7, TaskSpec::new(0, 1, 1.0), seed)
                .map_specs(|i, mut s| {
                    s.output = 1 + (i.index() as u64 * 13) % 7;
                    s.time = 1.0 + ((i.index() * 29) % 5) as f64;
                    s
                });
            let best = avg_mem_postorder(&t);
            let best_avg = sequential_average_memory(&t, best.sequence()).unwrap();
            for po in all_postorders(&t, 5000) {
                let avg = sequential_average_memory(&t, &po).unwrap();
                assert!(
                    best_avg <= avg + 1e-9,
                    "seed {seed}: avgMemPO {best_avg} beaten by {avg} ({po:?})"
                );
            }
        }
    }
}
