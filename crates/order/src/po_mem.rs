//! `memPO` — Liu's peak-memory-minimising postorder (Liu 1986).
//!
//! Among all postorders, the peak memory of processing the subtree of `i`
//! satisfies
//!
//! ```text
//! P(i) = max( max_k ( Σ_{l<k} f_{c_l} + P(c_k) ),  MemNeeded(i) )
//! ```
//!
//! where children `c_1 … c_m` are processed in the chosen order. The classic
//! exchange argument shows the maximum is minimised by processing children
//! by **non-increasing `P(c) − f(c)`**: swapping two adjacent subtrees `a`
//! before `b` gives local cost `max(P_a, f_a + P_b)`, which is no larger
//! than the swapped cost exactly when `P_a − f_a ≥ P_b − f_b`.

use crate::order::{Order, OrderKind};
use memtree_tree::traverse::{postorder, postorder_with_child_order};
use memtree_tree::{NodeId, TaskTree};

/// Peak memory `P(i)` of the optimal postorder of every subtree.
///
/// `peaks[root]` is the minimum peak over all postorders of the whole tree —
/// the quantity the paper's "normalized memory bound" is a multiple of.
pub fn postorder_peaks(tree: &TaskTree) -> Vec<u64> {
    let mut peaks = vec![0u64; tree.len()];
    // Reused scratch: children sorted by non-increasing P - f.
    let mut sorted: Vec<NodeId> = Vec::new();
    for i in postorder(tree) {
        let children = tree.children(i);
        if children.is_empty() {
            peaks[i.index()] = tree.exec(i) + tree.output(i);
            continue;
        }
        sorted.clear();
        sorted.extend_from_slice(children);
        sorted.sort_by_key(|&c| {
            // Non-increasing P - f; stable, ties by id for determinism.
            std::cmp::Reverse(peaks[c.index()] - tree.output(c))
        });
        let mut outputs_so_far = 0u64;
        let mut peak = 0u64;
        for &c in &sorted {
            peak = peak.max(outputs_so_far + peaks[c.index()]);
            outputs_so_far += tree.output(c);
        }
        peak = peak.max(outputs_so_far + tree.exec(i) + tree.output(i));
        peaks[i.index()] = peak;
    }
    peaks
}

/// The minimum sequential-postorder peak of the whole tree.
pub fn min_postorder_peak(tree: &TaskTree) -> u64 {
    postorder_peaks(tree)[tree.root().index()]
}

/// Builds the `memPO` order: a postorder whose children are expanded by
/// non-increasing `P(c) − f(c)`.
pub fn mem_postorder(tree: &TaskTree) -> Order {
    let peaks = postorder_peaks(tree);
    // Rank children ascending by the *negated* key so smaller rank = larger
    // P - f. P ≥ f always (P ≥ n + f ≥ f), so the subtraction is safe.
    let rank: Vec<u64> = tree
        .nodes()
        .map(|i| u64::MAX - (peaks[i.index()] - tree.output(i)))
        .collect();
    let seq = postorder_with_child_order(tree, &rank);
    Order::new(tree, seq, OrderKind::MemPostorder).expect("postorder is topological")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::memory::sequential_peak;
    use memtree_tree::TaskSpec;

    #[test]
    fn leaf_peak_is_exec_plus_output() {
        let t = TaskTree::from_parents(&[None], &[TaskSpec::new(3, 4, 1.0)]).unwrap();
        assert_eq!(min_postorder_peak(&t), 7);
    }

    #[test]
    fn chain_peak_is_max_mem_needed() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(1)],
            &[
                TaskSpec::new(1, 10, 1.0),
                TaskSpec::new(2, 20, 1.0),
                TaskSpec::new(3, 30, 1.0),
            ],
        )
        .unwrap();
        let needed: Vec<u64> = t.nodes().map(|i| t.mem_needed(i)).collect();
        assert_eq!(min_postorder_peak(&t), needed.into_iter().max().unwrap());
    }

    #[test]
    fn child_order_matters_textbook_example() {
        // Root with two leaf children: a "big peak, small output" child
        // (P=100, f=1) and a "small peak, big output" child (P=10, f=10).
        // Optimal order runs the big-peak child first: peak =
        // max(100, 1 + 10, 1 + 10 + root) with root tiny.
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(99, 1, 1.0), // P = 100, f = 1
                TaskSpec::new(0, 10, 1.0), // P = 10, f = 10
            ],
        )
        .unwrap();
        assert_eq!(min_postorder_peak(&t), 100);
        let order = mem_postorder(&t);
        assert_eq!(
            order.sequence()[0],
            memtree_tree::NodeId(1),
            "big-peak child first"
        );
        assert_eq!(order.sequential_peak(&t), 100);
        // The reverse order would peak at 10 + 100 = 110.
        let rev = crate::order::Order::new(
            &t,
            vec![
                memtree_tree::NodeId(2),
                memtree_tree::NodeId(1),
                memtree_tree::NodeId(0),
            ],
            OrderKind::NaturalPostorder,
        )
        .unwrap();
        assert_eq!(rev.sequential_peak(&t), 110);
    }

    #[test]
    fn reported_peak_matches_replay() {
        // The analytic P(root) must equal the replayed peak of the
        // constructed order.
        for seed in 0..20 {
            let t = memtree_gen::shapes::random_recursive(60, TaskSpec::new(2, 5, 1.0), seed)
                .map_specs(|i, mut s| {
                    // Vary sizes deterministically per node.
                    s.exec = (i.index() as u64 * 7) % 13;
                    s.output = 1 + (i.index() as u64 * 11) % 17;
                    s
                });
            let order = mem_postorder(&t);
            assert_eq!(
                min_postorder_peak(&t),
                sequential_peak(&t, order.sequence()).unwrap(),
                "seed {seed}"
            );
        }
    }
}
