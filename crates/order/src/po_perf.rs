//! `perfPO` — a postorder designed for parallel performance.
//!
//! Section 7.3.1: "another postorder traversal, designed for parallel
//! performance (subtrees with larger critical path are scheduled first,
//! which, in a parallel execution, is supposed to give higher priority to
//! nodes with large critical path)".

use crate::order::{Order, OrderKind};
use memtree_tree::traverse::postorder_with_child_order;
use memtree_tree::{TaskTree, TreeStats};

/// Builds the `perfPO` order: postorder with children expanded by
/// non-increasing subtree critical path.
pub fn perf_postorder(tree: &TaskTree) -> Order {
    let stats = TreeStats::compute(tree);
    perf_postorder_with_stats(tree, &stats)
}

/// As [`perf_postorder`] but reusing precomputed statistics.
pub fn perf_postorder_with_stats(tree: &TaskTree, stats: &TreeStats) -> Order {
    // Larger critical path = smaller rank. Critical paths are non-negative
    // finite floats, so their bit patterns order like the values.
    let rank: Vec<u64> = tree
        .nodes()
        .map(|i| u64::MAX - stats.subtree_cp[i.index()].to_bits())
        .collect();
    let seq = postorder_with_child_order(tree, &rank);
    Order::new(tree, seq, OrderKind::PerfPostorder).expect("postorder is topological")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{NodeId, TaskSpec, TaskTree};

    #[test]
    fn heavier_critical_path_first() {
        // Root 0; child 1 is a chain of total time 3 but cp 3; child 2 is a
        // single task of time 2.
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 1, 2.0),
                TaskSpec::new(0, 1, 2.0),
            ],
        )
        .unwrap();
        // cp(1) = 1 + 2 = 3, cp(2) = 2 -> subtree 1 first.
        let o = perf_postorder(&t);
        assert_eq!(o.sequence(), &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]);
    }

    #[test]
    fn is_a_valid_postorder() {
        let t = memtree_gen::shapes::random_recursive(80, TaskSpec::new(1, 2, 1.5), 3);
        let o = perf_postorder(&t);
        t.check_topological(o.sequence()).unwrap();
    }
}
