//! Oracle tests: the clever traversal algorithms against brute force.

use memtree_order::exhaustive::{min_enumerated_postorder_peak, min_topological_peak};
use memtree_order::{
    avg_mem_postorder, cp_order, make_order, mem_postorder, optimal_traversal, perf_postorder,
    OrderKind,
};
use memtree_tree::memory::{sequential_average_memory, sequential_peak};
use memtree_tree::{TaskSpec, TaskTree};
use proptest::prelude::*;

/// Random tree of up to `max_n` nodes with small, adversarial data sizes
/// (zeros included).
fn arb_tree(max_n: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_n)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            let specs = proptest::collection::vec((0u64..12, 0u64..12, 0u32..4), n);
            (parents, specs)
        })
        .prop_map(|(parents, specs)| {
            let mut full: Vec<Option<usize>> = vec![None];
            full.extend(parents.into_iter().map(Some));
            let specs: Vec<TaskSpec> = specs
                .into_iter()
                .map(|(e, f, t)| TaskSpec::new(e, f, t as f64))
                .collect();
            TaskTree::from_parents(&full, &specs).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// OptSeq reaches the exact optimum over all topological orders.
    #[test]
    fn optseq_is_globally_optimal(tree in arb_tree(10)) {
        let opt = optimal_traversal(&tree);
        let oracle = min_topological_peak(&tree);
        prop_assert_eq!(
            opt.peak, oracle,
            "OptSeq peak {} differs from exhaustive optimum {}", opt.peak, oracle
        );
    }

    /// memPO reaches the exact optimum over all postorders.
    #[test]
    fn mem_postorder_is_postorder_optimal(tree in arb_tree(9)) {
        let po = mem_postorder(&tree);
        let got = sequential_peak(&tree, po.sequence()).unwrap();
        let oracle = min_enumerated_postorder_peak(&tree, 250_000);
        prop_assert_eq!(
            got, oracle,
            "memPO peak {} differs from brute-force postorder optimum {}", got, oracle
        );
    }

    /// The Appendix-A order minimises average memory among all postorders.
    #[test]
    fn avg_mem_postorder_is_optimal(tree in arb_tree(8)) {
        // Average memory needs positive times to be meaningful; remap zeros.
        let tree = tree.map_specs(|_, mut s| { s.time = s.time.max(1.0); s.output = s.output.max(1); s });
        let best = avg_mem_postorder(&tree);
        let best_avg = sequential_average_memory(&tree, best.sequence()).unwrap();
        for po in memtree_order::exhaustive::all_postorders(&tree, 100_000) {
            let avg = sequential_average_memory(&tree, &po).unwrap();
            prop_assert!(
                best_avg <= avg + 1e-9,
                "avgMemPO {} beaten by {} via {:?}", best_avg, avg, po
            );
        }
    }

    /// Dominance chain: OptSeq ≤ memPO ≤ any natural postorder.
    #[test]
    fn peak_dominance_chain(tree in arb_tree(40)) {
        let opt = optimal_traversal(&tree).peak;
        let mem = mem_postorder(&tree).sequential_peak(&tree);
        let natural = sequential_peak(
            &tree,
            &memtree_tree::traverse::postorder(&tree),
        ).unwrap();
        prop_assert!(opt <= mem);
        prop_assert!(mem <= natural);
    }

    /// Every order factory yields a valid topological order and a
    /// consistent rank table.
    #[test]
    fn all_orders_topological(tree in arb_tree(40)) {
        for kind in [
            OrderKind::MemPostorder,
            OrderKind::OptSeq,
            OrderKind::CriticalPath,
            OrderKind::PerfPostorder,
            OrderKind::AvgMemPostorder,
            OrderKind::NaturalPostorder,
        ] {
            let o = make_order(&tree, kind);
            tree.check_topological(o.sequence()).unwrap();
            for (k, &i) in o.sequence().iter().enumerate() {
                prop_assert_eq!(o.rank(i) as usize, k);
            }
            prop_assert_eq!(o.kind(), kind);
        }
    }

    /// CP and perfPO break ties deterministically: two runs agree.
    #[test]
    fn orders_are_deterministic(tree in arb_tree(32)) {
        let (a, b) = (cp_order(&tree), cp_order(&tree));
        prop_assert_eq!(a.sequence(), b.sequence());
        let (a, b) = (perf_postorder(&tree), perf_postorder(&tree));
        prop_assert_eq!(a.sequence(), b.sequence());
    }
}
