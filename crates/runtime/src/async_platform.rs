//! **`AsyncPlatform`** — the futures-backed execution regime for IO-bound
//! fronts (DESIGN.md §6.8).
//!
//! Out-of-core multifrontal fronts spend much of their "processing time"
//! waiting on IO, so occupying one OS thread per logical processor — as
//! [`ThreadedPlatform`](crate::ThreadedPlatform) does — wastes the
//! machine. Here workers are **futures**: a started task becomes one
//! spawned future per gang member, polled by a small hand-rolled executor
//! (the vendored `minitok` stand-in, DESIGN.md §1) with however few OS
//! threads the embedding grants. A payload awaiting simulated IO
//! ([`Workload::IoBound`] / [`Workload::Sleep`]) parks in the timer and
//! occupies **no** executor thread, so `p` logical workers' worth of
//! in-flight IO rides on a single-threaded executor.
//!
//! The scheduling contract is untouched: the platform runs the very same
//! gang-aware driver loop (`memtree_sim::drive_gang`) as every other
//! backend — the driver's capacity ledger still counts `workers` logical
//! processors, booking is still audited at every event, and completions
//! arrive through a channel exactly as they do from real threads. Every
//! [`PolicySpec`] — moldable and `MemBookingRedTree` included — runs
//! unmodified; the differential suite (`tests/async_equivalence.rs`) and
//! `platform_conformance!` pin the equivalence with `SimPlatform` and
//! `ThreadedPlatform`.

use crate::executor::{to_runtime_error, GangState, RuntimeError, RuntimeReport, MALLEABLE_CHUNKS};
use crate::platform::{Platform, PlatformError, RunReport};
use crate::workload::Workload;
use crossbeam::channel::{self, RecvTimeoutError};
use memtree_sched::{ProportionalRescheduler, ReschedulePolicy};
use memtree_sim::driver::{
    drive_gang_with, DriveConfig, DriveError, GangBackend, Rescheduler, UnitAllotments,
};
use memtree_sim::MoldableScheduler;
use memtree_tree::{NodeId, TaskTree};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How often `await_batch` wakes to check for dead (panicked) payload
/// futures while blocked on the completion channel.
const PANIC_POLL: Duration = Duration::from_millis(25);

/// The futures-backed execution regime; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct AsyncPlatform {
    /// Logical processor count `p` — the driver's capacity ledger, i.e.
    /// how many gang members may be in flight at once. Independent of
    /// [`AsyncPlatform::threads`]: in-flight IO waits need no thread.
    pub workers: usize,
    /// OS threads polling the executor (≥ 1). Deliberately small — the
    /// platform's point is that IO-bound fronts don't need one thread per
    /// logical worker.
    pub threads: usize,
    /// Per-task payload, as on the other platforms (timed payloads run
    /// their async interpretation, [`Workload::run_shard_async`]).
    pub workload: Workload,
    /// When set, moldable runs become **malleable**: a
    /// [`ProportionalRescheduler`] built from the executed tree resizes
    /// running gangs from live backlog (DESIGN.md §6.10). Ignored by
    /// sequential policies.
    pub reschedule: Option<ReschedulePolicy>,
}

impl AsyncPlatform {
    /// `workers` logical processors on a two-thread executor with the
    /// no-op payload.
    pub fn new(workers: usize) -> Self {
        AsyncPlatform {
            workers,
            threads: 2,
            workload: Workload::Noop,
            reschedule: None,
        }
    }

    /// Overrides the executor OS-thread count (1 = the single-threaded
    /// executor flavour).
    ///
    /// # Panics
    /// When `threads` is 0.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "the executor needs at least one thread");
        self.threads = threads;
        self
    }

    /// Overrides the per-task payload.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Enables malleability for moldable runs under `policy`.
    pub fn with_rescheduler(mut self, policy: ReschedulePolicy) -> Self {
        self.reschedule = Some(policy);
        self
    }

    fn execute(
        &self,
        exec: &TaskTree,
        memory: u64,
        scheduler: impl MoldableScheduler,
        rescheduler: Option<&mut dyn Rescheduler>,
    ) -> Result<RuntimeReport, RuntimeError> {
        if self.workers == 0 {
            return Err(RuntimeError::BadConfig("zero workers".into()));
        }
        let started_at = std::time::Instant::now();
        let malleable = rescheduler.is_some();
        // Spawned member futures are `'static`, so they share the tree by
        // `Arc` — one O(n) clone per run, amortised over the whole tree.
        let tree = Arc::new(exec.clone());
        let rt = minitok::Runtime::new(self.threads);
        let (done_tx, done_rx) = channel::unbounded::<NodeId>();
        let mut backend = AsyncGangBackend {
            rt: &rt,
            tree,
            workload: self.workload,
            done_tx,
            done_rx,
            gangs: HashMap::new(),
            workers: self.workers,
            malleable,
        };
        let stats = drive_gang_with(
            exec,
            DriveConfig::new(self.workers, memory),
            scheduler,
            &mut backend,
            rescheduler,
        )
        .map_err(to_runtime_error)?;
        Ok(RuntimeReport {
            wall_seconds: started_at.elapsed().as_secs_f64(),
            tasks_run: stats.completed,
            peak_actual: stats.peak_actual,
            peak_booked: stats.peak_booked,
            events: stats.events,
            scheduling_seconds: stats.scheduling_seconds,
            peak_busy: stats.peak_busy,
        })
        // `rt` drops here: the queue closes and the executor threads join.
    }
}

/// The futures gang backend: launching a task with allotment `q` spawns
/// `q` member futures onto the executor; awaiting blocks on the
/// completion channel, waking periodically to notice panicked payloads.
/// Running gangs live in a registry so a [`Rescheduler`] can resize them:
/// growing spawns extra member futures over the shared [`GangState`],
/// shrinking retires members at their next shard boundary.
struct AsyncGangBackend<'rt> {
    rt: &'rt minitok::Runtime,
    tree: Arc<TaskTree>,
    workload: Workload,
    done_tx: channel::Sender<NodeId>,
    done_rx: channel::Receiver<NodeId>,
    gangs: HashMap<NodeId, Arc<GangState>>,
    workers: usize,
    malleable: bool,
}

impl AsyncGangBackend<'_> {
    /// Spawns `n` member futures running the same claim-retire-report
    /// protocol as the threaded pool's worker loop.
    fn spawn_members(&self, i: NodeId, gang: &Arc<GangState>, n: usize) {
        for _ in 0..n {
            let gang = gang.clone();
            let tree = self.tree.clone();
            let workload = self.workload;
            let done_tx = self.done_tx.clone();
            self.rt.spawn(async move {
                let mut retired = false;
                loop {
                    // Shard boundaries are the only malleability points:
                    // check for retirement before claiming.
                    if gang.try_retire() {
                        retired = true;
                        break;
                    }
                    let Some(shard) = gang.claim() else { break };
                    workload.run_shard_async(&tree, i, shard, gang.shards).await;
                    gang.finish_shard();
                }
                // Retired members never report: the member ledger keeps at
                // least one member who exits via payload exhaustion, and
                // the last such exit is the one completion that releases
                // the whole gang.
                if !retired && gang.member_exit() {
                    let _ = done_tx.send(i);
                }
            });
        }
    }
}

impl GangBackend for AsyncGangBackend<'_> {
    fn launch(&mut self, i: NodeId, procs: usize, _epoch: u64) -> Result<(), DriveError> {
        let shards = if self.malleable {
            (self.workers * MALLEABLE_CHUNKS) as u32
        } else {
            procs as u32
        };
        let gang = Arc::new(GangState::new(procs, shards));
        self.gangs.insert(i, gang.clone());
        self.spawn_members(i, &gang, procs);
        Ok(())
    }

    fn resize(&mut self, i: NodeId, from: usize, to: usize, _epoch: u64) -> Result<(), DriveError> {
        let gang = self
            .gangs
            .get(&i)
            .cloned()
            .ok_or_else(|| DriveError::Backend(format!("resize of unknown gang {i:?}")))?;
        if to > from {
            // Admit before spawning: the active count covers the not-yet-
            // polled futures, so the completion countdown cannot race them.
            gang.admit(to - from);
            self.spawn_members(i, &gang, to - from);
        } else if to < from {
            gang.release(from - to);
        }
        Ok(())
    }

    fn progress(&self, i: NodeId) -> Option<(u32, u32)> {
        self.gangs.get(&i).map(|g| g.progress())
    }

    fn await_batch(&mut self, _epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
        // Block for one completion, then drain whatever else arrived. The
        // backend keeps a live sender, so a panicked payload future never
        // disconnects the channel — instead the executor counts the death
        // and the periodic check below turns it into a loud error.
        loop {
            match self.done_rx.recv_timeout(PANIC_POLL) {
                Ok(i) => {
                    batch.push(i);
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.rt.panicked_tasks() > 0 {
                        return Err(DriveError::Backend("a payload future panicked".into()));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(DriveError::Backend("the executor exited early".into()));
                }
            }
        }
        while let Ok(i) = self.done_rx.try_recv() {
            batch.push(i);
        }
        for i in batch.iter() {
            self.gangs.remove(i);
        }
        Ok(())
    }
}

impl Platform for AsyncPlatform {
    fn name(&self) -> &'static str {
        "async"
    }

    fn run_instance(
        &self,
        tree: &TaskTree,
        instance: &memtree_sched::PolicyInstance,
    ) -> Result<RunReport, PlatformError> {
        let exec = instance.exec_tree(tree);
        let report;
        let policy;
        if instance.is_moldable() {
            // Moldable specs gang-schedule: allotment q spawns q member
            // futures sharing the payload's shard index.
            let sched = instance.moldable(tree)?;
            policy = MoldableScheduler::name(&sched).to_string();
            report = match self.reschedule {
                Some(p) => {
                    let mut resched = ProportionalRescheduler::new(exec, p);
                    self.execute(exec, instance.memory(), sched, Some(&mut resched))?
                }
                None => self.execute(exec, instance.memory(), sched, None)?,
            };
        } else {
            let sched = instance.scheduler(tree)?;
            policy = sched.name().to_string();
            report = self.execute(exec, instance.memory(), UnitAllotments::new(sched), None)?;
        }
        Ok(RunReport {
            platform: self.name(),
            policy,
            makespan: report.wall_seconds,
            wall_seconds: report.wall_seconds,
            peak_booked: report.peak_booked,
            peak_actual: report.peak_actual,
            events: report.events,
            scheduling_seconds: report.scheduling_seconds,
            tasks_run: report.tasks_run,
            quarantined: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_sched::{HeuristicKind, PolicySpec};

    fn min_memory(tree: &TaskTree) -> u64 {
        memtree_sched::min_feasible_memory(tree)
    }

    #[test]
    fn membooking_runs_async_at_minimum_memory() {
        for seed in 0..3 {
            let tree = memtree_gen::synthetic::paper_tree(200, seed);
            let m = min_memory(&tree);
            let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
            let report = AsyncPlatform::new(4).run(&tree, &spec).unwrap();
            assert_eq!(report.tasks_run, tree.len());
            assert!(report.peak_booked <= m);
            assert!(report.peak_actual <= report.peak_booked);
            assert_eq!(report.platform, "async");
        }
    }

    #[test]
    fn io_waits_overlap_without_thread_parallelism() {
        // The platform's reason to exist: a flat forest of IO-bound tasks
        // on p = 8 logical workers but ONE executor thread finishes in
        // roughly max-chain time, not the serial sum — sleeping futures
        // hold no thread. 24 leaves + root, ~3 ms of IO each: the serial
        // sum is ≥ 72 ms, the overlapped run ~1/8th of it.
        let leaves = 24usize;
        let mut parents = vec![None];
        parents.extend((0..leaves).map(|_| Some(0usize)));
        let specs = vec![memtree_tree::TaskSpec::new(1, 2, 1.0); leaves + 1];
        let tree = memtree_tree::TaskTree::from_parents(&parents, &specs).unwrap();
        let m = min_memory(&tree) * 100;
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
        let per_task = Duration::from_millis(3);
        let platform = AsyncPlatform::new(8)
            .with_threads(1)
            .with_workload(Workload::IoBound {
                nanos_per_time_unit: per_task.as_nanos() as f64,
                max_nanos: per_task.as_nanos() as u64,
                chunks: 3,
            });
        let report = platform.run(&tree, &spec).unwrap();
        assert_eq!(report.tasks_run, tree.len());
        let serial = per_task.as_secs_f64() * tree.len() as f64;
        assert!(
            report.wall_seconds < serial * 0.6,
            "IO waits serialised on the executor: {:.3}s vs {serial:.3}s serial",
            report.wall_seconds
        );
    }

    #[test]
    fn zero_workers_rejected() {
        let tree = memtree_gen::synthetic::paper_tree(10, 1);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, min_memory(&tree));
        let err = AsyncPlatform {
            workers: 0,
            threads: 1,
            workload: Workload::Noop,
            reschedule: None,
        }
        .run(&tree, &spec)
        .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::Runtime(RuntimeError::BadConfig(_))
        ));
    }

    #[test]
    fn panicking_payload_surfaces_a_clean_error() {
        let tree = memtree_gen::synthetic::paper_tree(40, 7);
        let m = min_memory(&tree) * 10;
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
        let platform = AsyncPlatform::new(2).with_workload(Workload::FailAt { node: 3 });
        let err = platform.run(&tree, &spec).unwrap_err();
        assert!(
            matches!(err, PlatformError::Runtime(RuntimeError::WorkerPanic)),
            "got {err}"
        );
        // The platform value is reusable after the failure.
        let report = platform
            .with_workload(Workload::Noop)
            .run(&tree, &spec)
            .unwrap();
        assert_eq!(report.tasks_run, tree.len());
    }

    #[test]
    fn moldable_gangs_run_as_futures() {
        let tree = memtree_gen::synthetic::paper_tree(80, 11);
        let m = min_memory(&tree);
        let caps = memtree_sched::AllotmentCaps::uniform(&tree, 4);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
        let report = AsyncPlatform::new(4)
            .with_workload(Workload::quick_io())
            .run(&tree, &spec)
            .unwrap();
        assert_eq!(report.tasks_run, tree.len());
        assert!(report.peak_booked <= m);
    }
}
