//! The shard-worker executable behind
//! [`memtree_runtime::ProcessPlatform`]: reads one `memtree-worker v1`
//! job from stdin (see [`memtree_runtime::process::wire`]), runs the
//! shard subtree through the ordinary in-process `ThreadedPlatform`, and
//! writes the line-framed report stream — `ready`, periodic `heartbeat`
//! ticks, then exactly one `done`/`failed` verdict — to stdout.
//!
//! Exit code 0 means the protocol completed (the verdict, success *or*
//! clean failure, was written); any other exit — including death by
//! signal — tells the coordinating supervisor the worker died before
//! its verdict, which is the retryable path.

use memtree_runtime::process::wire;
use memtree_runtime::{Platform, PlatformError, RuntimeError, ThreadedPlatform};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut chaos_kill = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Diagnostic labels only (they show up in `ps`); the job
            // itself arrives on stdin.
            "--shard" | "--attempt" => {
                args.next();
            }
            "--chaos-kill" => chaos_kill = true,
            other => {
                report(&format!("failed error unknown argument {other:?}"));
                return 2;
            }
        }
    }

    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        report(&format!("failed error reading job: {e}"));
        return 2;
    }
    let job = match wire::parse_job(&input) {
        Ok(job) => job,
        Err(e) => {
            report(&format!("failed error bad job: {e}"));
            return 2;
        }
    };
    report("ready");

    if chaos_kill {
        // Chaos fault injection: die by SIGKILL after acknowledging the
        // job — no verdict, no exit handler, pipes slam shut. The parked
        // loop below is unreachable unless `kill` is missing, in which
        // case abort() still dies signal-style (SIGABRT).
        let _ = std::process::Command::new("kill")
            .args(["-9", &std::process::id().to_string()])
            .status();
        std::thread::sleep(Duration::from_millis(500));
        std::process::abort();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = (!job.heartbeat.is_zero()).then(|| {
        let stop = stop.clone();
        let period = job.heartbeat;
        std::thread::spawn(move || {
            let mut due = Instant::now() + period;
            // ordering: SeqCst — a once-per-5ms shutdown flag on a
            // process boundary: clarity over the unmeasurable cost.
            while !stop.load(Ordering::SeqCst) {
                // Short sleep slices so the thread notices `stop`
                // promptly even under long heartbeat periods.
                std::thread::sleep(period.min(Duration::from_millis(5)));
                if Instant::now() >= due {
                    report("heartbeat");
                    due = Instant::now() + period;
                }
            }
        })
    });

    let platform = ThreadedPlatform {
        workers: job.workers,
        workload: job.workload,
        reschedule: None,
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        platform.run(&job.tree, &job.spec)
    }))
    .unwrap_or(Err(PlatformError::Runtime(RuntimeError::WorkerPanic)));

    // ordering: SeqCst — pairs with the heartbeat loop's load above.
    stop.store(true, Ordering::SeqCst);
    if let Some(h) = heartbeat {
        let _ = h.join();
    }
    report(&wire::verdict_line(&outcome));
    0
}

/// Writes one protocol line and flushes — stdout is block-buffered on a
/// pipe, and the coordinator judges liveness by line arrival.
fn report(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}
