//! **`platform_conformance!`** — one invariant suite for every
//! [`Platform`](crate::Platform) implementation (DESIGN.md §7).
//!
//! Before this macro, the sim-vs-threaded equivalence tests re-stated the
//! same per-platform assertions (every kind completes, stays inside the
//! booking envelope, refuses infeasible memory, …) once per platform;
//! adding a third platform would have copied them again. The macro stamps
//! the suite out per platform instead: one definition, one contract, any
//! backend — including future ones (an async platform only needs one more
//! instantiation line).
//!
//! ```ignore
//! memtree_runtime::platform_conformance!(sim, memtree_runtime::SimPlatform::new(4));
//! memtree_runtime::platform_conformance!(sharded, memtree_runtime::ShardedPlatform::new(2));
//! ```
//!
//! The expansion site must have `memtree_gen` and `memtree_sched`
//! available (they are dev-dependencies wherever platforms are tested).

/// Stamps out the platform invariant suite as a test module named
/// `$suite`, running every check against the platform built by the
/// `$platform` expression (evaluated fresh per test).
///
/// The suite asserts, for every [`PolicySpec`](memtree_sched::PolicySpec)
/// kind:
///
/// * the run completes and covers at least the whole tree (transforming
///   policies run their fictitious tasks on top);
/// * `peak_actual ≤ peak_booked ≤ M` — the booking envelope holds on any
///   backend;
/// * an infeasible bound is refused with a distinguishable error, never
///   a hang or a panic;
/// * the completed task set is deterministic across repeated runs;
/// * moldable specs (allotment caps) are first-class.
#[macro_export]
macro_rules! platform_conformance {
    ($suite:ident, $platform:expr) => {
        mod $suite {
            use $crate::platform::Platform as _;

            /// Roomy bound: enough headroom that every kind — including
            /// the reduction-tree baseline after a per-shard split — is
            /// feasible on any conforming platform.
            fn roomy(tree: &::memtree_tree::TaskTree) -> u64 {
                ::memtree_sched::min_feasible_memory(tree) * 1000
            }

            #[test]
            fn every_kind_completes_within_the_envelope() {
                let tree = ::memtree_gen::synthetic::paper_tree(150, 17);
                let m = roomy(&tree);
                let platform = $platform;
                for kind in ::memtree_sched::HeuristicKind::all() {
                    let spec = ::memtree_sched::PolicySpec::new(kind, m);
                    let report = platform
                        .run(&tree, &spec)
                        .unwrap_or_else(|e| panic!("{kind} on {}: {e}", platform.name()));
                    assert!(
                        report.tasks_run >= tree.len(),
                        "{kind} on {}: {} tasks for {} nodes",
                        platform.name(),
                        report.tasks_run,
                        tree.len()
                    );
                    assert!(report.peak_booked <= m, "{kind}: booked over the bound");
                    assert!(
                        report.peak_actual <= report.peak_booked,
                        "{kind}: actual over booked"
                    );
                }
            }

            #[test]
            fn infeasible_memory_is_distinguishable() {
                let tree = ::memtree_gen::synthetic::paper_tree(60, 2);
                let min = ::memtree_sched::min_feasible_memory(&tree);
                let spec = ::memtree_sched::PolicySpec::new(
                    ::memtree_sched::HeuristicKind::MemBooking,
                    min - 1,
                );
                let err = $platform.run(&tree, &spec).unwrap_err();
                assert!(err.is_infeasible(), "got {err}");
            }

            #[test]
            fn completion_set_is_deterministic_across_runs() {
                let tree = ::memtree_gen::synthetic::paper_tree(120, 23);
                let m = roomy(&tree);
                let platform = $platform;
                for kind in ::memtree_sched::HeuristicKind::all() {
                    let spec = ::memtree_sched::PolicySpec::new(kind, m);
                    let a = platform.run(&tree, &spec).unwrap();
                    let b = platform.run(&tree, &spec).unwrap();
                    assert_eq!(a.tasks_run, b.tasks_run, "{kind}");
                    assert_eq!(a.policy, b.policy, "{kind}");
                }
            }

            #[test]
            fn moldable_specs_are_first_class() {
                let tree = ::memtree_gen::synthetic::paper_tree(80, 6);
                let m = roomy(&tree);
                let caps = ::memtree_sched::AllotmentCaps::uniform(&tree, 4);
                let spec =
                    ::memtree_sched::PolicySpec::new(::memtree_sched::HeuristicKind::MemBooking, m)
                        .with_caps(caps);
                let report = $platform.run(&tree, &spec).unwrap();
                assert_eq!(report.tasks_run, tree.len());
                assert!(report.peak_booked <= m);
                assert!(report.peak_actual <= report.peak_booked);
            }

            #[test]
            fn redtree_runs_its_fictitious_tasks() {
                let tree = ::memtree_gen::synthetic::paper_tree(100, 23);
                let m = roomy(&tree);
                let spec = ::memtree_sched::PolicySpec::new(
                    ::memtree_sched::HeuristicKind::MemBookingRedTree,
                    m,
                );
                let report = $platform.run(&tree, &spec).unwrap();
                assert!(
                    report.tasks_run > tree.len(),
                    "the transform adds fictitious tasks"
                );
            }
        }
    };
}
