//! The threaded executor.

use crate::ledger::Ledger;
use crate::workload::Workload;
use crossbeam::channel;
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskTree};
use std::fmt;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads (the model's `p`).
    pub workers: usize,
    /// Memory bound `M` (model units).
    pub memory: u64,
}

/// Outcome of a threaded execution.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock duration of the whole run.
    pub wall_seconds: f64,
    /// Tasks executed (always the full tree on success).
    pub tasks_run: usize,
    /// Peak model-level resident memory.
    pub peak_actual: u64,
    /// Peak booked memory.
    pub peak_booked: u64,
    /// Scheduler events processed on the main thread.
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
}

/// Failures of a threaded execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The scheduler stopped issuing work with tasks outstanding.
    Stalled {
        /// Completed task count.
        completed: usize,
        /// Total task count.
        total: usize,
    },
    /// The memory ledger caught a booking violation.
    Ledger(String),
    /// Zero workers or another unusable configuration.
    BadConfig(String),
    /// A worker thread panicked.
    WorkerPanic,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Stalled { completed, total } => {
                write!(f, "runtime stalled after {completed}/{total} tasks")
            }
            RuntimeError::Ledger(msg) => write!(f, "memory ledger violation: {msg}"),
            RuntimeError::BadConfig(msg) => write!(f, "bad runtime config: {msg}"),
            RuntimeError::WorkerPanic => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Executes `tree` with `cfg.workers` real threads under `scheduler`.
///
/// The main thread owns the scheduler and the ledger; workers pull tasks
/// from a crossbeam channel, run `workload` and report completions back.
/// The scheduler sees completions in real-time order — the dynamic regime
/// the paper designs for.
pub fn execute<S: Scheduler>(
    tree: &TaskTree,
    cfg: RuntimeConfig,
    mut scheduler: S,
    workload: Workload,
) -> Result<RuntimeReport, RuntimeError> {
    if cfg.workers == 0 {
        return Err(RuntimeError::BadConfig("zero workers".into()));
    }
    let n = tree.len();
    let started_at = std::time::Instant::now();

    let (task_tx, task_rx) = channel::unbounded::<NodeId>();
    let (done_tx, done_rx) = channel::unbounded::<NodeId>();

    let mut ledger = Ledger::new(tree, cfg.memory);
    let mut completed = 0usize;
    let mut in_flight = 0usize;
    let mut events = 0usize;
    let mut scheduling_seconds = 0f64;
    let mut result: Result<(), RuntimeError> = Ok(());

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    workload.run(tree, task);
                    if done_tx.send(task).is_err() {
                        return;
                    }
                }
            });
        }
        drop(task_rx);
        drop(done_tx);

        let mut finished_batch: Vec<NodeId> = Vec::new();
        let mut to_start: Vec<NodeId> = Vec::new();
        loop {
            let idle = cfg.workers - in_flight;
            to_start.clear();
            let t0 = std::time::Instant::now();
            scheduler.on_event(&finished_batch, idle, &mut to_start);
            scheduling_seconds += t0.elapsed().as_secs_f64();
            events += 1;

            for &i in &to_start {
                ledger.start(i);
                in_flight += 1;
                task_tx.send(i).expect("workers alive while main loop runs");
            }
            if let Err(msg) = ledger.check(scheduler.booked()) {
                result = Err(RuntimeError::Ledger(msg));
                break;
            }
            if completed == n {
                break;
            }
            if in_flight == 0 {
                result = Err(RuntimeError::Stalled { completed, total: n });
                break;
            }

            // Block for one completion, then drain whatever else arrived.
            finished_batch.clear();
            match done_rx.recv() {
                Ok(i) => finished_batch.push(i),
                Err(_) => {
                    result = Err(RuntimeError::WorkerPanic);
                    break;
                }
            }
            while let Ok(i) = done_rx.try_recv() {
                finished_batch.push(i);
            }
            finished_batch.sort_unstable();
            for &i in &finished_batch {
                ledger.finish(i);
                in_flight -= 1;
                completed += 1;
            }
        }
        // Closing the task channel terminates the workers.
        drop(task_tx);
        // Drain stragglers so scope join does not block on full channels.
        while done_rx.try_recv().is_ok() {}
    });

    result.map(|()| RuntimeReport {
        wall_seconds: started_at.elapsed().as_secs_f64(),
        tasks_run: completed,
        peak_actual: ledger.peak_actual(),
        peak_booked: ledger.peak_booked(),
        events,
        scheduling_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_order::mem_postorder;
    use memtree_sched::{Activation, MemBooking};

    #[test]
    fn membooking_runs_threaded_at_minimum_memory() {
        for seed in 0..5 {
            let tree = memtree_gen::synthetic::paper_tree(200, seed);
            let ao = mem_postorder(&tree);
            let m = ao.sequential_peak(&tree);
            let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
            let report = execute(
                &tree,
                RuntimeConfig { workers: 4, memory: m },
                sched,
                Workload::Noop,
            )
            .unwrap();
            assert_eq!(report.tasks_run, tree.len());
            assert!(report.peak_booked <= m);
            assert!(report.peak_actual <= report.peak_booked);
        }
    }

    #[test]
    fn activation_runs_threaded() {
        let tree = memtree_gen::synthetic::paper_tree(150, 7);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let sched = Activation::try_new(&tree, &ao, &ao, m).unwrap();
        let report = execute(
            &tree,
            RuntimeConfig { workers: 3, memory: m },
            sched,
            Workload::quick(),
        )
        .unwrap();
        assert_eq!(report.tasks_run, tree.len());
        // Completions are drained in batches, so events ≤ n + 1, and at
        // least one event per batch of ≤ `workers` completions.
        assert!(report.events >= tree.len() / 3);
        assert!(report.events <= tree.len() + 1);
    }

    #[test]
    fn alloc_workload_runs() {
        let tree = memtree_gen::synthetic::paper_tree(60, 2);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        let report = execute(
            &tree,
            RuntimeConfig { workers: 2, memory: m },
            sched,
            Workload::AllocTouch { bytes_per_output_unit: 8.0, max_bytes: 1 << 20 },
        )
        .unwrap();
        assert_eq!(report.tasks_run, 60);
    }

    #[test]
    fn zero_workers_rejected() {
        let tree = memtree_gen::synthetic::paper_tree(10, 1);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        assert!(matches!(
            execute(&tree, RuntimeConfig { workers: 0, memory: m }, sched, Workload::Noop),
            Err(RuntimeError::BadConfig(_))
        ));
    }
}
