//! The threaded executor: real worker threads as a
//! [`GangBackend`](memtree_sim::GangBackend) under the shared
//! `memtree_sim::driver` gang loop.
//!
//! The main thread owns the scheduler and runs
//! [`memtree_sim::drive_gang`]; workers pull **gang-member** messages from
//! an MPMC channel, run their shard of the [`Workload`] payload and report
//! completions back. A moldable task with allotment `q` is launched as `q`
//! member messages sharing one [`GangState`]: the driver only launches
//! when `q` workers are idle, so all members are picked up without any
//! hold-and-wait — no partial gangs, no deadlock. Members claim payload
//! shards from a shared atomic index (the same dynamic-scheduling idiom as
//! the vendored rayon stand-in), so a member delayed by the OS donates its
//! shards to its gang mates, and the last member out reports the single
//! completion that releases the whole gang.
//!
//! Sequential policies ride the very same pool through unit allotments
//! ([`memtree_sim::UnitAllotments`]): every task is a gang of one. The
//! scheduler sees completions in real-time order — the dynamic regime the
//! paper designs for — while the driver re-asserts `actual ≤ booked ≤ M`
//! at every event, so a booking bug aborts the run rather than silently
//! overcommitting.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::workload::Workload;
use crossbeam::channel;
use memtree_sim::driver::{
    drive_gang_with, DriveConfig, DriveError, GangBackend, Rescheduler, UnitAllotments,
};
use memtree_sim::{MoldableScheduler, Scheduler};
use memtree_tree::{NodeId, TaskTree};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Payload shards per *worker* for a malleable gang. A fixed-allotment
/// gang has exactly one shard per member, but a gang that may grow to the
/// whole machine shards its payload at machine granularity times this
/// oversubscription factor, so retirement (which only happens at shard
/// boundaries) stays responsive and grown members find work to claim.
pub(crate) const MALLEABLE_CHUNKS: usize = 4;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads (the model's `p`).
    pub workers: usize,
    /// Memory bound `M` (model units).
    pub memory: u64,
}

impl RuntimeConfig {
    /// Worker counts a cross-platform test sweep should cover: the
    /// comma-separated `MEMTREE_TEST_WORKERS` environment variable when
    /// set (the CI matrix pins one count per job), `default` otherwise.
    ///
    /// # Panics
    /// When `MEMTREE_TEST_WORKERS` is set but contains no count ≥ 1.
    pub fn worker_counts_from_env(default: &[usize]) -> Vec<usize> {
        match std::env::var("MEMTREE_TEST_WORKERS") {
            Ok(v) => {
                let counts: Vec<usize> = v
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&p| p >= 1)
                    .collect();
                assert!(
                    !counts.is_empty(),
                    "MEMTREE_TEST_WORKERS has no counts: {v}"
                );
                counts
            }
            Err(_) => default.to_vec(),
        }
    }
}

/// Outcome of a threaded execution.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock duration of the whole run.
    pub wall_seconds: f64,
    /// Tasks executed (always the full tree on success).
    pub tasks_run: usize,
    /// Peak model-level resident memory.
    pub peak_actual: u64,
    /// Peak booked memory.
    pub peak_booked: u64,
    /// Scheduler events processed on the main thread.
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
    /// Peak number of worker threads concurrently inside a payload,
    /// measured by the workers themselves (not the driver's ledger). Never
    /// exceeds the configured worker count — the observable half of the
    /// gang-pool capacity invariant.
    pub peak_busy: usize,
}

/// Failures of a threaded execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The scheduler stopped issuing work with tasks outstanding.
    Stalled {
        /// Completed task count.
        completed: usize,
        /// Total task count.
        total: usize,
    },
    /// The memory ledger caught a booking violation
    /// (`booked > M` or `actual > booked`).
    Ledger(String),
    /// The scheduler broke the start protocol (double start, precedence
    /// violation, or more starts than idle workers).
    Protocol(String),
    /// Zero workers or another unusable configuration.
    BadConfig(String),
    /// A worker thread panicked.
    WorkerPanic,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Stalled { completed, total } => {
                write!(f, "runtime stalled after {completed}/{total} tasks")
            }
            RuntimeError::Ledger(msg) => write!(f, "memory ledger violation: {msg}"),
            RuntimeError::Protocol(msg) => write!(f, "scheduler protocol violation: {msg}"),
            RuntimeError::BadConfig(msg) => write!(f, "bad runtime config: {msg}"),
            RuntimeError::WorkerPanic => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {}

pub(crate) fn to_runtime_error(e: DriveError) -> RuntimeError {
    match e {
        DriveError::Stalled {
            completed, total, ..
        } => RuntimeError::Stalled { completed, total },
        DriveError::BookedOverBound { .. } | DriveError::ActualOverBooked { .. } => {
            RuntimeError::Ledger(e.to_string())
        }
        DriveError::TooManyStarts { .. }
        | DriveError::DoubleStart { .. }
        | DriveError::ZeroAllotment { .. }
        | DriveError::PrecedenceViolation { .. } => RuntimeError::Protocol(e.to_string()),
        DriveError::BadConfig(msg) => RuntimeError::BadConfig(msg),
        DriveError::Backend(_) => RuntimeError::WorkerPanic,
    }
}

/// Shared state of one gang: the payload shards its members claim and the
/// member ledger that decides who reports the completion. One protocol
/// for both gang pools — threaded members here, futures in
/// [`crate::async_platform`] — and the substrate of malleability: a
/// [`Rescheduler`] grows a gang by admitting extra members that share this
/// state, and shrinks it by lowering `target` so surplus members retire
/// at their next shard boundary.
///
/// Public (not `pub(crate)`) so the `memtree_loom` model suite in
/// `tests/model/` can drive the protocol directly under minloom's
/// exhaustive scheduler; the invariants it enumerates are inventoried in
/// DESIGN.md §6.13.
pub struct GangState {
    /// Fixed payload shard count. Equals the launch allotment for a
    /// fixed gang; a malleable gang shards at machine granularity
    /// (workers × [`MALLEABLE_CHUNKS`]) so any allotment in `1..=p`
    /// divides the payload usefully.
    pub(crate) shards: u32,
    /// Next unclaimed payload shard (rayon-style dynamic claiming: a
    /// member delayed by the OS donates its shards to its gang mates).
    next_shard: AtomicUsize,
    /// Shards whose payload has finished executing — the backlog signal
    /// [`GangBackend::progress`] reports to the rescheduler.
    shards_done: AtomicUsize,
    /// Members the gang is entitled to — the driver's current allotment.
    /// Only the driver thread moves it (via resize), and it never drops
    /// below 1 while the gang runs.
    target: AtomicUsize,
    /// Members admitted and not yet exited. Counts queued member messages
    /// too: admission increments on the driver thread *before* the
    /// message is sent, so a slow pickup can never let the count touch
    /// zero early and double-report the completion.
    active: AtomicUsize,
    /// Latches the single completion report. A grow can land on a gang
    /// whose completion is already in flight (the driver resizes before
    /// it reaps the batch); the late members re-raise `active` from zero
    /// and drain it again, and without the latch the last of them would
    /// report the gang a second time.
    reported: AtomicBool,
}

impl GangState {
    /// A fresh gang of `procs` members over `shards` payload shards.
    pub fn new(procs: usize, shards: u32) -> Self {
        GangState {
            shards,
            next_shard: AtomicUsize::new(0),
            shards_done: AtomicUsize::new(0),
            target: AtomicUsize::new(procs),
            active: AtomicUsize::new(procs),
            reported: AtomicBool::new(false),
        }
    }

    /// Claims the next unexecuted payload shard, or `None` when the
    /// payload is exhausted (the member should exit).
    pub fn claim(&self) -> Option<u32> {
        // ordering: Relaxed — the fetch_add only allocates a unique shard
        // index; the payload it indexes was published to every member by
        // the spawn/channel-send edge before the gang started. Model-
        // checked by model/gang.rs::claim_complete_exhaustive.
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed);
        (shard < self.shards as usize).then_some(shard as u32)
    }

    /// Records one shard's payload as finished (progress accounting).
    pub fn finish_shard(&self) {
        // ordering: AcqRel — the release half publishes the shard's
        // payload effects to whoever observes the count ([`progress`]
        // loads Acquire); the acquire half chains prior finishers so the
        // count covers their payloads too.
        self.shards_done.fetch_add(1, Ordering::AcqRel);
    }

    /// `(shards finished, total shards)` for the rescheduler's backlog.
    pub fn progress(&self) -> (u32, u32) {
        // ordering: Acquire — pairs with the release in [`finish_shard`]:
        // a count of n implies n shards' payload effects are visible.
        let done = self.shards_done.load(Ordering::Acquire);
        (done.min(self.shards as usize) as u32, self.shards)
    }

    /// True when this member must retire at the current shard boundary:
    /// more members are active than the shrunk target entitles, and this
    /// member won the CAS race to be the one that leaves. The CAS floor
    /// guarantees `active` never drops below `max(target, 1)`, so a gang
    /// always keeps a member to finish the payload and report completion.
    pub fn try_retire(&self) -> bool {
        // ordering: Acquire on both loads — the retire decision must see
        // the freshest entitlement a driver-side release published; the
        // CAS below revalidates anyway, so these could arguably relax,
        // but the pairing keeps the proof local. Model-checked by
        // model/gang.rs::shrink_retires_exact_surplus.
        let mut active = self.active.load(Ordering::Acquire);
        loop {
            if active <= 1 || active <= self.target.load(Ordering::Acquire) {
                return false;
            }
            #[cfg(memtree_loom_mutate_cas_floor)]
            {
                // Seeded regression (CI teeth check): a blind decrement
                // instead of the validating CAS lets every member that
                // read the same stale `active` retire at once, dropping
                // the gang below max(target, 1) — the model suite must
                // catch the unfinished payload / missing report.
                self.active.fetch_sub(1, Ordering::AcqRel);
                return true;
            }
            #[cfg(not(memtree_loom_mutate_cas_floor))]
            // ordering: AcqRel/Acquire — success is a member-ledger edit
            // others must observe atomically with the guard above
            // (release publishes this member's payload work, acquire
            // chains the ledger); failure re-reads like the initial load.
            match self.active.compare_exchange_weak(
                active,
                active - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => active = seen,
            }
        }
    }

    /// Admits `extra` members (driver thread, **before** their member
    /// messages are queued).
    pub fn admit(&self, extra: usize) {
        // ordering: AcqRel ×2, and `target` must rise FIRST. A running
        // member's retire check loads `active` then `target` (both
        // Acquire): if `active` rose first, the member could observe the
        // raised occupancy while still reading the stale entitlement —
        // no happens-before edge forces the fresh `target` — and retire
        // spuriously (harmless for safety, the CAS floor still holds,
        // but it sheds a worker the driver just granted). With `target`
        // first, a member that observes the raised `active` synchronizes
        // with this RMW's release, which already carries the new
        // entitlement. Found by, and model-checked in,
        // model/gang.rs::grow_after_final_shard_reports_once.
        self.target.fetch_add(extra, Ordering::AcqRel);
        self.active.fetch_add(extra, Ordering::AcqRel);
    }

    /// Lowers the member entitlement by `members`; surplus members retire
    /// at their next shard boundary. The driver guarantees the target
    /// stays ≥ 1.
    pub fn release(&self, members: usize) {
        // ordering: AcqRel — the lowered entitlement must be observable
        // to [`try_retire`]'s Acquire loads; acquire half orders it after
        // any prior admit on the driver thread.
        self.target.fetch_sub(members, Ordering::AcqRel);
    }

    /// Records a non-retirement member exit (payload exhausted); true for
    /// the last member out, who must report the gang's completion — at
    /// that point every claimed shard has finished and every member has
    /// already left the occupancy counter.
    pub fn member_exit(&self) -> bool {
        // ordering: AcqRel — the acquire half is load-bearing: the member
        // whose decrement lands on 1 synchronizes with every earlier
        // exit's release, which carries those members' finish_shard
        // writes, so the reporter provably observes the whole payload
        // complete. Model-checked by model/gang.rs (the
        // memtree_loom_mutate_relaxed_exit teeth check downgrades this
        // to Relaxed and the suite must fail on the stale progress read).
        #[cfg(not(memtree_loom_mutate_relaxed_exit))]
        let last_out = self.active.fetch_sub(1, Ordering::AcqRel) == 1;
        #[cfg(memtree_loom_mutate_relaxed_exit)]
        let last_out = self.active.fetch_sub(1, Ordering::Relaxed) == 1;
        // ordering: AcqRel — the latch must be a single atomic
        // read-modify-write: a grow landing after completion re-raises
        // `active` from zero and drains it again, and only the swap keeps
        // the second drain from reporting twice.
        last_out && !self.reported.swap(true, Ordering::AcqRel)
    }
}

/// One worker's membership in a gang-scheduled task.
struct GangMember {
    task: NodeId,
    gang: Arc<GangState>,
}

/// The worker-thread gang backend: launching a task with allotment `q`
/// sends `q` member messages to the channel (the driver guarantees `q`
/// idle workers, so the claim is effectively atomic); awaiting blocks on
/// the completion channel and drains stragglers. Running gangs are kept
/// in a registry so a [`Rescheduler`] can resize them mid-flight.
struct GangThreadedBackend {
    task_tx: channel::Sender<GangMember>,
    done_rx: channel::Receiver<NodeId>,
    gangs: HashMap<NodeId, Arc<GangState>>,
    workers: usize,
    malleable: bool,
}

impl GangThreadedBackend {
    fn send_members(&self, i: NodeId, gang: &Arc<GangState>, n: usize) -> Result<(), DriveError> {
        for _ in 0..n {
            self.task_tx
                .send(GangMember {
                    task: i,
                    gang: gang.clone(),
                })
                .map_err(|_| DriveError::Backend("workers exited early".into()))?;
        }
        Ok(())
    }
}

impl GangBackend for GangThreadedBackend {
    fn launch(&mut self, i: NodeId, procs: usize, _epoch: u64) -> Result<(), DriveError> {
        let shards = if self.malleable {
            (self.workers * MALLEABLE_CHUNKS) as u32
        } else {
            procs as u32
        };
        let gang = Arc::new(GangState::new(procs, shards));
        self.gangs.insert(i, gang.clone());
        self.send_members(i, &gang, procs)
    }

    fn await_batch(&mut self, _epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
        // Block for one completion, then drain whatever else arrived.
        match self.done_rx.recv() {
            Ok(i) => batch.push(i),
            Err(_) => return Err(DriveError::Backend("a worker thread panicked".into())),
        }
        while let Ok(i) = self.done_rx.try_recv() {
            batch.push(i);
        }
        for i in batch.iter() {
            self.gangs.remove(i);
        }
        Ok(())
    }

    fn resize(&mut self, i: NodeId, from: usize, to: usize, _epoch: u64) -> Result<(), DriveError> {
        let gang = self
            .gangs
            .get(&i)
            .cloned()
            .ok_or_else(|| DriveError::Backend(format!("resize of unknown gang {i:?}")))?;
        if to > from {
            // Admit before queueing: the active count covers the queued
            // messages, so the completion countdown cannot race them.
            gang.admit(to - from);
            self.send_members(i, &gang, to - from)?;
        } else if to < from {
            gang.release(from - to);
        }
        Ok(())
    }

    fn progress(&self, i: NodeId) -> Option<(u32, u32)> {
        self.gangs.get(&i).map(|g| g.progress())
    }
}

/// Executes `tree` with `cfg.workers` real threads under a sequential
/// `scheduler` — every task a gang of one, via the same pool as
/// [`execute_moldable`].
pub fn execute<S: Scheduler>(
    tree: &TaskTree,
    cfg: RuntimeConfig,
    scheduler: S,
    workload: Workload,
) -> Result<RuntimeReport, RuntimeError> {
    execute_moldable(tree, cfg, UnitAllotments::new(scheduler), workload)
}

/// Executes `tree` with `cfg.workers` real threads under a moldable
/// `scheduler`: each started task claims its allotment of workers as a
/// gang and runs its payload `q`-way parallel (one shard per gang member,
/// dynamically claimed).
pub fn execute_moldable<S: MoldableScheduler>(
    tree: &TaskTree,
    cfg: RuntimeConfig,
    scheduler: S,
    workload: Workload,
) -> Result<RuntimeReport, RuntimeError> {
    execute_moldable_with(tree, cfg, scheduler, workload, None)
}

/// [`execute_moldable`] with an optional [`Rescheduler`] closing the
/// feedback loop: the driver ticks it once per event with a
/// [`memtree_sim::LiveStats`] snapshot, and grow/shrink actions land on
/// the running gangs through the shared [`GangState`] — growing queues
/// extra member messages, shrinking retires surplus members at their next
/// shard boundary. With a rescheduler present, gangs shard their payload
/// at machine granularity so any allotment divides it usefully.
pub fn execute_moldable_with<S: MoldableScheduler>(
    tree: &TaskTree,
    cfg: RuntimeConfig,
    scheduler: S,
    workload: Workload,
    rescheduler: Option<&mut dyn Rescheduler>,
) -> Result<RuntimeReport, RuntimeError> {
    if cfg.workers == 0 {
        return Err(RuntimeError::BadConfig("zero workers".into()));
    }
    let started_at = std::time::Instant::now();
    let malleable = rescheduler.is_some();

    let (task_tx, task_rx) = channel::unbounded::<GangMember>();
    let (done_tx, done_rx) = channel::unbounded::<NodeId>();
    // Worker-side occupancy measurement, independent of the driver's
    // processor ledger.
    let busy = AtomicUsize::new(0);
    let peak_busy = AtomicUsize::new(0);

    let stats = std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            let (busy, peak_busy) = (&busy, &peak_busy);
            scope.spawn(move || {
                while let Ok(member) = task_rx.recv() {
                    let gang = &member.gang;
                    let now_busy = busy.fetch_add(1, Ordering::AcqRel) + 1;
                    peak_busy.fetch_max(now_busy, Ordering::AcqRel);
                    let mut retired = false;
                    loop {
                        // Shard boundaries are the only malleability
                        // points: check for retirement before claiming.
                        if gang.try_retire() {
                            retired = true;
                            break;
                        }
                        let Some(shard) = gang.claim() else { break };
                        workload.run_shard(tree, member.task, shard, gang.shards);
                        gang.finish_shard();
                    }
                    busy.fetch_sub(1, Ordering::AcqRel);
                    // Retired members never report: the member ledger
                    // keeps at least one member who exits via payload
                    // exhaustion, and the last such exit is the
                    // completion — every shard claimed and finished,
                    // every member already out of the occupancy count.
                    if !retired && member.gang.member_exit() && done_tx.send(member.task).is_err() {
                        return;
                    }
                }
            });
        }
        drop(task_rx);
        drop(done_tx);

        let mut backend = GangThreadedBackend {
            task_tx,
            done_rx,
            gangs: HashMap::new(),
            workers: cfg.workers,
            malleable,
        };
        let result = drive_gang_with(
            tree,
            DriveConfig::new(cfg.workers, cfg.memory),
            scheduler,
            &mut backend,
            rescheduler,
        );
        // Closing the task channel terminates the workers; drain stragglers
        // so the scope join does not race a worker mid-send.
        let GangThreadedBackend {
            task_tx, done_rx, ..
        } = backend;
        drop(task_tx);
        while done_rx.try_recv().is_ok() {}
        result
    });
    debug_assert_eq!(
        busy.load(Ordering::Acquire),
        0,
        "every gang member left its payload before the pool shut down"
    );

    let stats = stats.map_err(to_runtime_error)?;
    Ok(RuntimeReport {
        wall_seconds: started_at.elapsed().as_secs_f64(),
        tasks_run: stats.completed,
        peak_actual: stats.peak_actual,
        peak_booked: stats.peak_booked,
        events: stats.events,
        scheduling_seconds: stats.scheduling_seconds,
        peak_busy: peak_busy.load(Ordering::Acquire),
    })
}

// Unit tests drive real thread pools; under the loom cfg the façade's
// primitives only work inside minloom::model, so they are compiled out.
#[cfg(all(test, not(memtree_loom)))]
mod tests {
    use super::*;
    use memtree_order::mem_postorder;
    use memtree_sched::{Activation, MemBooking};

    #[test]
    fn membooking_runs_threaded_at_minimum_memory() {
        for seed in 0..5 {
            let tree = memtree_gen::synthetic::paper_tree(200, seed);
            let ao = mem_postorder(&tree);
            let m = ao.sequential_peak(&tree);
            let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
            let report = execute(
                &tree,
                RuntimeConfig {
                    workers: 4,
                    memory: m,
                },
                sched,
                Workload::Noop,
            )
            .unwrap();
            assert_eq!(report.tasks_run, tree.len());
            assert!(report.peak_booked <= m);
            assert!(report.peak_actual <= report.peak_booked);
        }
    }

    #[test]
    fn activation_runs_threaded() {
        let tree = memtree_gen::synthetic::paper_tree(150, 7);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let sched = Activation::try_new(&tree, &ao, &ao, m).unwrap();
        let report = execute(
            &tree,
            RuntimeConfig {
                workers: 3,
                memory: m,
            },
            sched,
            Workload::quick(),
        )
        .unwrap();
        assert_eq!(report.tasks_run, tree.len());
        // Completions are drained in batches, so events ≤ n + 1, and at
        // least one event per batch of ≤ `workers` completions.
        assert!(report.events >= tree.len() / 3);
        assert!(report.events <= tree.len() + 1);
    }

    #[test]
    fn alloc_workload_runs() {
        let tree = memtree_gen::synthetic::paper_tree(60, 2);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        let report = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: m,
            },
            sched,
            Workload::AllocTouch {
                bytes_per_output_unit: 8.0,
                max_bytes: 1 << 20,
            },
        )
        .unwrap();
        assert_eq!(report.tasks_run, 60);
    }

    #[test]
    fn zero_workers_rejected() {
        let tree = memtree_gen::synthetic::paper_tree(10, 1);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        assert!(matches!(
            execute(
                &tree,
                RuntimeConfig {
                    workers: 0,
                    memory: m
                },
                sched,
                Workload::Noop
            ),
            Err(RuntimeError::BadConfig(_))
        ));
    }

    #[test]
    fn moldable_membooking_runs_threaded() {
        use memtree_sched::{AllotmentCaps, MoldableMemBooking};
        for seed in 0..4 {
            let tree = memtree_gen::synthetic::paper_tree(150, 40 + seed);
            let ao = mem_postorder(&tree);
            let m = ao.sequential_peak(&tree);
            let caps = AllotmentCaps::uniform(&tree, 4);
            let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
            let report = execute_moldable(
                &tree,
                RuntimeConfig {
                    workers: 4,
                    memory: m,
                },
                sched,
                Workload::Noop,
            )
            .unwrap();
            assert_eq!(report.tasks_run, tree.len());
            assert!(report.peak_booked <= m);
            assert!(report.peak_actual <= report.peak_booked);
            assert!(report.peak_busy <= 4, "gang pool oversubscribed");
        }
    }

    /// A full-machine gang on a chain: every task runs as one gang of `p`
    /// members, and the measured occupancy actually reaches `p` (the gang
    /// really fans out over the workers).
    struct WholeMachineChain {
        order: Vec<NodeId>,
        next: usize,
        procs: usize,
    }

    impl memtree_sim::MoldableScheduler for WholeMachineChain {
        fn name(&self) -> &str {
            "whole-machine-chain"
        }
        fn on_event(&mut self, _: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
            if idle >= self.procs && self.next < self.order.len() {
                to_start.push((self.order[self.next], self.procs));
                self.next += 1;
            }
        }
        fn booked(&self) -> u64 {
            u64::MAX / 2
        }
    }

    #[test]
    fn gangs_fan_out_over_the_workers() {
        let p = 4;
        let tree = memtree_gen::shapes::chain(20, memtree_tree::TaskSpec::new(1, 2, 4.0));
        let order = memtree_tree::traverse::postorder(&tree);
        let report = execute_moldable(
            &tree,
            RuntimeConfig {
                workers: p,
                memory: u64::MAX / 2,
            },
            WholeMachineChain {
                order,
                next: 0,
                procs: p,
            },
            // Long enough shards (1 ms each) that gang members overlap
            // rather than one member draining the shard index alone.
            Workload::Spin {
                nanos_per_time_unit: 1_000_000.0,
                max_nanos: 4_000_000,
            },
        )
        .unwrap();
        assert_eq!(report.tasks_run, tree.len());
        assert!(report.peak_busy <= p);
        assert!(
            report.peak_busy >= 2,
            "a whole-machine gang must occupy several workers, got {}",
            report.peak_busy
        );
    }

    /// A moldable policy that over-claims processors must abort with a
    /// protocol error, and one that issues empty gangs likewise.
    struct OverClaimer {
        leaf: NodeId,
        procs: usize,
    }

    impl memtree_sim::MoldableScheduler for OverClaimer {
        fn name(&self) -> &str {
            "over-claimer"
        }
        fn on_event(&mut self, _: &[NodeId], _: usize, to_start: &mut Vec<(NodeId, usize)>) {
            to_start.push((self.leaf, self.procs));
        }
        fn booked(&self) -> u64 {
            u64::MAX / 2
        }
    }

    #[test]
    fn gang_overclaim_and_zero_allotment_rejected() {
        let tree = memtree_gen::synthetic::paper_tree(20, 9);
        let leaf = tree.leaves().next().unwrap();
        let cfg = RuntimeConfig {
            workers: 2,
            memory: u64::MAX / 2,
        };
        let err = execute_moldable(&tree, cfg, OverClaimer { leaf, procs: 3 }, Workload::Noop)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Protocol(_)), "got {err}");
        let err = execute_moldable(&tree, cfg, OverClaimer { leaf, procs: 0 }, Workload::Noop)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Protocol(_)), "got {err}");
    }

    /// A policy that books correctly but stops issuing work after the
    /// first task: the driver must detect the stall, not hang.
    struct GivesUp<'a> {
        tree: &'a TaskTree,
        issued: bool,
    }

    impl memtree_sim::Scheduler for GivesUp<'_> {
        fn name(&self) -> &str {
            "gives-up"
        }
        fn on_event(
            &mut self,
            _: &[memtree_tree::NodeId],
            _: usize,
            to_start: &mut Vec<memtree_tree::NodeId>,
        ) {
            if !self.issued {
                self.issued = true;
                // Issue exactly one leaf, then go silent forever.
                to_start.push(self.tree.leaves().next().expect("tree has a leaf"));
            }
        }
        fn booked(&self) -> u64 {
            u64::MAX / 2
        }
    }

    #[test]
    fn stalled_policy_detected() {
        let tree = memtree_gen::synthetic::paper_tree(40, 3);
        let err = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: u64::MAX / 2,
            },
            GivesUp {
                tree: &tree,
                issued: false,
            },
            Workload::Noop,
        )
        .unwrap_err();
        match err {
            RuntimeError::Stalled { completed, total } => {
                assert_eq!(completed, 1);
                assert_eq!(total, tree.len());
            }
            other => panic!("expected Stalled, got {other}"),
        }
    }

    /// A policy whose `booked()` under-reports (books nothing while tasks
    /// hold memory): the ledger check must abort the run.
    struct UnderBooker {
        ready: Vec<memtree_tree::NodeId>,
    }

    impl memtree_sim::Scheduler for UnderBooker {
        fn name(&self) -> &str {
            "under-booker"
        }
        fn on_event(
            &mut self,
            finished: &[memtree_tree::NodeId],
            idle: usize,
            to_start: &mut Vec<memtree_tree::NodeId>,
        ) {
            let _ = finished;
            while to_start.len() < idle {
                let Some(i) = self.ready.pop() else { break };
                to_start.push(i);
            }
        }
        fn booked(&self) -> u64 {
            0 // lies: running tasks hold actual memory
        }
    }

    #[test]
    fn underbooking_policy_aborts_with_ledger_error() {
        let tree = memtree_gen::synthetic::paper_tree(40, 4);
        let ready: Vec<_> = tree.leaves().collect();
        let err = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: u64::MAX / 2,
            },
            UnderBooker { ready },
            Workload::Noop,
        )
        .unwrap_err();
        match err {
            RuntimeError::Ledger(msg) => {
                assert!(msg.contains("exceeds booked"), "unexpected message: {msg}")
            }
            other => panic!("expected Ledger, got {other}"),
        }
        // The tree itself is fine: leaves exist and hold output memory.
        assert!(tree.leaves().next().is_some());
    }

    /// A policy that books over the bound must abort with a ledger error
    /// too (the `booked ≤ M` half of the invariant).
    struct OverBooker<'a> {
        tree: &'a TaskTree,
        started: bool,
    }

    impl memtree_sim::Scheduler for OverBooker<'_> {
        fn name(&self) -> &str {
            "over-booker"
        }
        fn on_event(
            &mut self,
            _: &[memtree_tree::NodeId],
            _: usize,
            to_start: &mut Vec<memtree_tree::NodeId>,
        ) {
            if !self.started {
                self.started = true;
                to_start.push(self.tree.leaves().next().expect("tree has a leaf"));
            }
        }
        fn booked(&self) -> u64 {
            u64::MAX // far over any bound
        }
    }

    #[test]
    fn overbooking_policy_aborts_with_ledger_error() {
        let tree = memtree_gen::synthetic::paper_tree(30, 5);
        let err = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: 1_000,
            },
            OverBooker {
                tree: &tree,
                started: false,
            },
            Workload::Noop,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Ledger(_)), "got {err}");
    }
}
