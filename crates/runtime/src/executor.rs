//! The threaded executor: real worker threads as a [`Backend`] under the
//! shared `memtree_sim::driver` loop.
//!
//! The main thread owns the scheduler and runs [`memtree_sim::drive`];
//! workers pull tasks from an MPMC channel, run the [`Workload`] payload
//! and report completions back. The scheduler sees completions in
//! real-time order — the dynamic regime the paper designs for — while the
//! driver re-asserts `actual ≤ booked ≤ M` at every event, so a booking
//! bug aborts the run rather than silently overcommitting.

use crate::workload::Workload;
use crossbeam::channel;
use memtree_sim::driver::{drive, Backend, DriveConfig, DriveError};
use memtree_sim::Scheduler;
use memtree_tree::{NodeId, TaskTree};
use std::fmt;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads (the model's `p`).
    pub workers: usize,
    /// Memory bound `M` (model units).
    pub memory: u64,
}

/// Outcome of a threaded execution.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock duration of the whole run.
    pub wall_seconds: f64,
    /// Tasks executed (always the full tree on success).
    pub tasks_run: usize,
    /// Peak model-level resident memory.
    pub peak_actual: u64,
    /// Peak booked memory.
    pub peak_booked: u64,
    /// Scheduler events processed on the main thread.
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
}

/// Failures of a threaded execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The scheduler stopped issuing work with tasks outstanding.
    Stalled {
        /// Completed task count.
        completed: usize,
        /// Total task count.
        total: usize,
    },
    /// The memory ledger caught a booking violation
    /// (`booked > M` or `actual > booked`).
    Ledger(String),
    /// The scheduler broke the start protocol (double start, precedence
    /// violation, or more starts than idle workers).
    Protocol(String),
    /// Zero workers or another unusable configuration.
    BadConfig(String),
    /// A worker thread panicked.
    WorkerPanic,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Stalled { completed, total } => {
                write!(f, "runtime stalled after {completed}/{total} tasks")
            }
            RuntimeError::Ledger(msg) => write!(f, "memory ledger violation: {msg}"),
            RuntimeError::Protocol(msg) => write!(f, "scheduler protocol violation: {msg}"),
            RuntimeError::BadConfig(msg) => write!(f, "bad runtime config: {msg}"),
            RuntimeError::WorkerPanic => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {}

fn to_runtime_error(e: DriveError) -> RuntimeError {
    match e {
        DriveError::Stalled {
            completed, total, ..
        } => RuntimeError::Stalled { completed, total },
        DriveError::BookedOverBound { .. } | DriveError::ActualOverBooked { .. } => {
            RuntimeError::Ledger(e.to_string())
        }
        DriveError::TooManyStarts { .. }
        | DriveError::DoubleStart { .. }
        | DriveError::PrecedenceViolation { .. } => RuntimeError::Protocol(e.to_string()),
        DriveError::BadConfig(msg) => RuntimeError::BadConfig(msg),
        DriveError::Backend(_) => RuntimeError::WorkerPanic,
    }
}

/// The worker-thread backend: launching sends the task to the channel,
/// awaiting blocks on the completion channel and drains stragglers.
struct ThreadedBackend {
    task_tx: channel::Sender<NodeId>,
    done_rx: channel::Receiver<NodeId>,
}

impl Backend for ThreadedBackend {
    fn launch(&mut self, i: NodeId, _epoch: u32) -> Result<(), DriveError> {
        self.task_tx
            .send(i)
            .map_err(|_| DriveError::Backend("workers exited early".into()))
    }

    fn await_batch(&mut self, _epoch: u32, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
        // Block for one completion, then drain whatever else arrived.
        match self.done_rx.recv() {
            Ok(i) => batch.push(i),
            Err(_) => return Err(DriveError::Backend("a worker thread panicked".into())),
        }
        while let Ok(i) = self.done_rx.try_recv() {
            batch.push(i);
        }
        Ok(())
    }
}

/// Executes `tree` with `cfg.workers` real threads under `scheduler`.
pub fn execute<S: Scheduler>(
    tree: &TaskTree,
    cfg: RuntimeConfig,
    scheduler: S,
    workload: Workload,
) -> Result<RuntimeReport, RuntimeError> {
    if cfg.workers == 0 {
        return Err(RuntimeError::BadConfig("zero workers".into()));
    }
    let started_at = std::time::Instant::now();

    let (task_tx, task_rx) = channel::unbounded::<NodeId>();
    let (done_tx, done_rx) = channel::unbounded::<NodeId>();

    let stats = std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    workload.run(tree, task);
                    if done_tx.send(task).is_err() {
                        return;
                    }
                }
            });
        }
        drop(task_rx);
        drop(done_tx);

        let mut backend = ThreadedBackend { task_tx, done_rx };
        let result = drive(
            tree,
            DriveConfig::new(cfg.workers, cfg.memory),
            scheduler,
            &mut backend,
        );
        // Closing the task channel terminates the workers; drain stragglers
        // so the scope join does not race a worker mid-send.
        let ThreadedBackend { task_tx, done_rx } = backend;
        drop(task_tx);
        while done_rx.try_recv().is_ok() {}
        result
    });

    let stats = stats.map_err(to_runtime_error)?;
    Ok(RuntimeReport {
        wall_seconds: started_at.elapsed().as_secs_f64(),
        tasks_run: stats.completed,
        peak_actual: stats.peak_actual,
        peak_booked: stats.peak_booked,
        events: stats.events,
        scheduling_seconds: stats.scheduling_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_order::mem_postorder;
    use memtree_sched::{Activation, MemBooking};

    #[test]
    fn membooking_runs_threaded_at_minimum_memory() {
        for seed in 0..5 {
            let tree = memtree_gen::synthetic::paper_tree(200, seed);
            let ao = mem_postorder(&tree);
            let m = ao.sequential_peak(&tree);
            let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
            let report = execute(
                &tree,
                RuntimeConfig {
                    workers: 4,
                    memory: m,
                },
                sched,
                Workload::Noop,
            )
            .unwrap();
            assert_eq!(report.tasks_run, tree.len());
            assert!(report.peak_booked <= m);
            assert!(report.peak_actual <= report.peak_booked);
        }
    }

    #[test]
    fn activation_runs_threaded() {
        let tree = memtree_gen::synthetic::paper_tree(150, 7);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let sched = Activation::try_new(&tree, &ao, &ao, m).unwrap();
        let report = execute(
            &tree,
            RuntimeConfig {
                workers: 3,
                memory: m,
            },
            sched,
            Workload::quick(),
        )
        .unwrap();
        assert_eq!(report.tasks_run, tree.len());
        // Completions are drained in batches, so events ≤ n + 1, and at
        // least one event per batch of ≤ `workers` completions.
        assert!(report.events >= tree.len() / 3);
        assert!(report.events <= tree.len() + 1);
    }

    #[test]
    fn alloc_workload_runs() {
        let tree = memtree_gen::synthetic::paper_tree(60, 2);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        let report = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: m,
            },
            sched,
            Workload::AllocTouch {
                bytes_per_output_unit: 8.0,
                max_bytes: 1 << 20,
            },
        )
        .unwrap();
        assert_eq!(report.tasks_run, 60);
    }

    #[test]
    fn zero_workers_rejected() {
        let tree = memtree_gen::synthetic::paper_tree(10, 1);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let sched = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
        assert!(matches!(
            execute(
                &tree,
                RuntimeConfig {
                    workers: 0,
                    memory: m
                },
                sched,
                Workload::Noop
            ),
            Err(RuntimeError::BadConfig(_))
        ));
    }

    /// A policy that books correctly but stops issuing work after the
    /// first task: the driver must detect the stall, not hang.
    struct GivesUp<'a> {
        tree: &'a TaskTree,
        issued: bool,
    }

    impl memtree_sim::Scheduler for GivesUp<'_> {
        fn name(&self) -> &str {
            "gives-up"
        }
        fn on_event(
            &mut self,
            _: &[memtree_tree::NodeId],
            _: usize,
            to_start: &mut Vec<memtree_tree::NodeId>,
        ) {
            if !self.issued {
                self.issued = true;
                // Issue exactly one leaf, then go silent forever.
                to_start.push(self.tree.leaves().next().expect("tree has a leaf"));
            }
        }
        fn booked(&self) -> u64 {
            u64::MAX / 2
        }
    }

    #[test]
    fn stalled_policy_detected() {
        let tree = memtree_gen::synthetic::paper_tree(40, 3);
        let err = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: u64::MAX / 2,
            },
            GivesUp {
                tree: &tree,
                issued: false,
            },
            Workload::Noop,
        )
        .unwrap_err();
        match err {
            RuntimeError::Stalled { completed, total } => {
                assert_eq!(completed, 1);
                assert_eq!(total, tree.len());
            }
            other => panic!("expected Stalled, got {other}"),
        }
    }

    /// A policy whose `booked()` under-reports (books nothing while tasks
    /// hold memory): the ledger check must abort the run.
    struct UnderBooker {
        ready: Vec<memtree_tree::NodeId>,
    }

    impl memtree_sim::Scheduler for UnderBooker {
        fn name(&self) -> &str {
            "under-booker"
        }
        fn on_event(
            &mut self,
            finished: &[memtree_tree::NodeId],
            idle: usize,
            to_start: &mut Vec<memtree_tree::NodeId>,
        ) {
            let _ = finished;
            while to_start.len() < idle {
                let Some(i) = self.ready.pop() else { break };
                to_start.push(i);
            }
        }
        fn booked(&self) -> u64 {
            0 // lies: running tasks hold actual memory
        }
    }

    #[test]
    fn underbooking_policy_aborts_with_ledger_error() {
        let tree = memtree_gen::synthetic::paper_tree(40, 4);
        let ready: Vec<_> = tree.leaves().collect();
        let err = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: u64::MAX / 2,
            },
            UnderBooker { ready },
            Workload::Noop,
        )
        .unwrap_err();
        match err {
            RuntimeError::Ledger(msg) => {
                assert!(msg.contains("exceeds booked"), "unexpected message: {msg}")
            }
            other => panic!("expected Ledger, got {other}"),
        }
        // The tree itself is fine: leaves exist and hold output memory.
        assert!(tree.leaves().next().is_some());
    }

    /// A policy that books over the bound must abort with a ledger error
    /// too (the `booked ≤ M` half of the invariant).
    struct OverBooker<'a> {
        tree: &'a TaskTree,
        started: bool,
    }

    impl memtree_sim::Scheduler for OverBooker<'_> {
        fn name(&self) -> &str {
            "over-booker"
        }
        fn on_event(
            &mut self,
            _: &[memtree_tree::NodeId],
            _: usize,
            to_start: &mut Vec<memtree_tree::NodeId>,
        ) {
            if !self.started {
                self.started = true;
                to_start.push(self.tree.leaves().next().expect("tree has a leaf"));
            }
        }
        fn booked(&self) -> u64 {
            u64::MAX // far over any bound
        }
    }

    #[test]
    fn overbooking_policy_aborts_with_ledger_error() {
        let tree = memtree_gen::synthetic::paper_tree(30, 5);
        let err = execute(
            &tree,
            RuntimeConfig {
                workers: 2,
                memory: 1_000,
            },
            OverBooker {
                tree: &tree,
                started: false,
            },
            Workload::Noop,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Ledger(_)), "got {err}");
    }
}
