//! Main-thread memory ledger for threaded executions.

use memtree_tree::memory::LiveSet;
use memtree_tree::{NodeId, TaskTree};

/// Tracks the model-level resident memory of a real execution and checks
/// it against the scheduler's bookings and the global bound.
pub struct Ledger<'a> {
    live: LiveSet<'a>,
    bound: u64,
    peak_booked: u64,
}

impl<'a> Ledger<'a> {
    /// A fresh ledger for `tree` under `bound`.
    pub fn new(tree: &'a TaskTree, bound: u64) -> Self {
        Ledger { live: LiveSet::new(tree), bound, peak_booked: 0 }
    }

    /// Registers a task start.
    pub fn start(&mut self, i: NodeId) {
        self.live.start(i);
    }

    /// Registers a task completion.
    pub fn finish(&mut self, i: NodeId) {
        self.live.finish(i);
    }

    /// Verifies `actual ≤ booked ≤ bound` at this instant.
    pub fn check(&mut self, booked: u64) -> Result<(), String> {
        self.peak_booked = self.peak_booked.max(booked);
        if booked > self.bound {
            return Err(format!("booked {booked} exceeds bound {}", self.bound));
        }
        let actual = self.live.current();
        if actual > booked {
            return Err(format!("actual {actual} exceeds booked {booked}"));
        }
        Ok(())
    }

    /// Peak model-level resident memory so far.
    pub fn peak_actual(&self) -> u64 {
        self.live.peak()
    }

    /// Peak booked memory so far.
    pub fn peak_booked(&self) -> u64 {
        self.peak_booked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{TaskSpec, TaskTree};

    #[test]
    fn tracks_and_checks() {
        let t = TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(0, 2, 1.0), TaskSpec::new(0, 3, 1.0)],
        )
        .unwrap();
        let mut l = Ledger::new(&t, 10);
        l.start(NodeId(1));
        assert!(l.check(5).is_ok());
        assert!(l.check(2).is_err(), "actual 3 over booked 2");
        assert!(l.check(11).is_err(), "booked over bound");
        l.finish(NodeId(1));
        l.start(NodeId(0));
        l.finish(NodeId(0));
        assert_eq!(l.peak_actual(), 3 + 2);
        assert_eq!(l.peak_booked(), 11);
    }
}
