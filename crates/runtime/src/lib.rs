#![warn(missing_docs)]
//! Threaded runtime: execute a task tree with real worker threads under a
//! memory-aware scheduler.
//!
//! The paper argues MemBooking's overhead is small enough "to allow its
//! runtime execution" — this crate closes the loop by driving the very
//! same [`memtree_sim::Scheduler`] implementations with genuine threads
//! instead of simulated time. Completion order is whatever the OS makes of
//! it, exercising the schedulers' dynamic behaviour; a main-thread
//! [`ledger`] re-asserts `actual ≤ booked ≤ M` at every event, so a
//! booking bug would abort the run rather than silently overcommit.

pub mod executor;
pub mod ledger;
pub mod workload;

pub use executor::{execute, RuntimeConfig, RuntimeError, RuntimeReport};
pub use workload::Workload;
