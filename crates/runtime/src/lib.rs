#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Threaded runtime: execute a task tree with real worker threads under a
//! memory-aware scheduler, and the unified [`platform`] API.
//!
//! The paper argues MemBooking's overhead is small enough "to allow its
//! runtime execution" — this crate closes the loop by driving the very
//! same [`memtree_sim::Scheduler`] (and, gang-scheduled,
//! [`memtree_sim::MoldableScheduler`]) implementations with genuine
//! threads instead of simulated time. Completion order is whatever the OS
//! makes of it, exercising the schedulers' dynamic behaviour; the shared
//! `memtree_sim::driver` loop re-asserts `actual ≤ booked ≤ M` at every
//! event, so a booking bug aborts the run rather than silently
//! overcommitting.
//!
//! The [`platform`] module is the one entry point for running a
//! `memtree_sched::PolicySpec` in any regime — [`SimPlatform`] (virtual
//! time), [`ThreadedPlatform`] (real threads), [`ShardedPlatform`]
//! (the tree cut into shard subtrees, each on its own channel-connected
//! worker with an independent booking ledger; see [`sharded`]),
//! [`ProcessPlatform`] (the same shard protocol over real worker
//! *processes* behind strict stdin/stdout wire framing; see [`process`])
//! or [`AsyncPlatform`] (workers are futures on a small hand-rolled
//! executor, for IO-bound fronts; see [`async_platform`]) — behind
//! the common [`Platform`] trait returning a common [`RunReport`]. The
//! [`conformance`] module stamps one invariant suite out per platform.

pub mod async_platform;
pub mod conformance;
pub mod executor;
pub mod platform;
pub mod process;
pub mod quarantine;
pub mod sharded;
pub mod sync;
pub mod workload;

pub use async_platform::AsyncPlatform;
pub use executor::{
    execute, execute_moldable, execute_moldable_with, RuntimeConfig, RuntimeError, RuntimeReport,
};
pub use platform::{Platform, PlatformError, RunReport, SimPlatform, ThreadedPlatform};
pub use process::{ChaosKill, ProcessPlatform};
pub use sharded::{ShardedPlatform, ShardedReport};
pub use workload::Workload;
