//! **`Platform`** — one way to run a [`PolicySpec`] anywhere
//! (DESIGN.md §6.3).
//!
//! The paper evaluates the same event-driven booking policies in two
//! execution regimes: discrete-event simulation (fast, deterministic,
//! virtual time) and a real threaded runtime (OS-ordered completions,
//! wall-clock time). A [`Platform`] abstracts the regime: hand it a spec
//! and a tree, get back a common [`RunReport`]. Both implementations share
//! the `memtree_sim::driver` event loop, so the scheduler contract —
//! precedence, capacity, `actual ≤ booked ≤ M` — is enforced identically
//! on both. **Every** spec runs on every platform, moldable ones
//! included: on the simulator a moldable task's duration shrinks by the
//! configured [`SpeedupModel`], on the threaded runtime it gang-schedules
//! its allotment of real workers.
//!
//! ```
//! use memtree_runtime::platform::{Platform, SimPlatform, ThreadedPlatform};
//! use memtree_sched::{HeuristicKind, PolicySpec};
//!
//! let tree = memtree_gen::synthetic::paper_tree(100, 1);
//! let ao = memtree_order::mem_postorder(&tree);
//! let spec = PolicySpec::new(HeuristicKind::MemBooking, ao.sequential_peak(&tree));
//!
//! let sim = SimPlatform::new(4).run(&tree, &spec).unwrap();
//! let real = ThreadedPlatform::new(4).run(&tree, &spec).unwrap();
//! assert_eq!(sim.tasks_run, real.tasks_run);
//! ```

use crate::executor::{execute, execute_moldable_with, RuntimeConfig, RuntimeError};
use crate::workload::Workload;
use memtree_sched::{
    LedgerError, PolicyInstance, PolicySpec, ProportionalRescheduler, ReschedulePolicy, SchedError,
};
use memtree_sim::{simulate, MoldableScheduler, SimConfig, SimError, SpeedupModel};
use memtree_tree::TaskTree;
use std::fmt;

/// The common outcome of running a policy on any platform.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Platform name (`"sim"`, `"threaded"`, `"sharded"` or `"async"`).
    pub platform: &'static str,
    /// Scheduler name as reported by the policy.
    pub policy: String,
    /// Completion time in the platform's own clock: virtual time on the
    /// simulator, wall-clock seconds on the threaded runtime.
    pub makespan: f64,
    /// Wall-clock duration of the run (== `makespan` on the threaded
    /// runtime).
    pub wall_seconds: f64,
    /// Peak memory booked by the policy.
    pub peak_booked: u64,
    /// Peak model-level resident memory.
    pub peak_actual: u64,
    /// Scheduler events processed.
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
    /// Tasks executed — the node count of the policy's
    /// [`PolicyInstance::exec_tree`] on success (larger than the original
    /// tree for RedTree, whose transform adds fictitious leaves).
    pub tasks_run: usize,
    /// Memory (model units) still **quarantined** process-wide when this
    /// report was rolled up: budgets of stalled shard workers from
    /// *earlier* runs whose exit has not yet been confirmed (see
    /// [`crate::quarantine`]). Always 0 on the single-ledger platforms
    /// (sim, threaded, async), which never quarantine.
    pub quarantined: u64,
}

/// Failures of a platform run.
#[derive(Debug)]
pub enum PlatformError {
    /// The policy could not be constructed (infeasible memory, order
    /// mismatch).
    Sched(SchedError),
    /// The simulator rejected the run.
    Sim(SimError),
    /// The threaded runtime rejected the run.
    Runtime(RuntimeError),
    /// The forest partitioner produced an invalid shard plan (caught by
    /// shard-aware validation before any worker launches).
    Partition(String),
    /// Coordinator-level budget accounting stopped balancing (double
    /// release, overcommitted reservation) — always a bug in the
    /// coordinating platform, surfaced loudly by the shared
    /// [`memtree_sched::BudgetLedger`] instead of drifting silently.
    Ledger(LedgerError),
    /// A worker *process* failed at the process level — spawn failure,
    /// death without a verdict (nonzero exit, signal, closed pipe), or a
    /// wire-protocol violation. Process death is retryable (the
    /// [`crate::ProcessPlatform`] requeues the shard onto a fresh worker
    /// up to its retry budget); spawn failures and protocol violations
    /// are not.
    Process(String),
    /// A shard worker failed; carries the shard index and the underlying
    /// failure. The coordinator has already drained the other shards and
    /// released every budget reservation.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// What went wrong inside the shard.
        source: Box<PlatformError>,
    },
    /// Shard workers went silent past the platform's watchdog timeout —
    /// the sharded analogue of the driver's stall detection. Workers that
    /// were still running when the watchdog fired are quarantined: their
    /// budgets stay held until their exit is confirmed (never released
    /// while the worker can still report; see [`crate::quarantine`]).
    ShardStalled {
        /// Shards that reported before the watchdog fired.
        reported: usize,
        /// Shards launched.
        total: usize,
        /// Budget (model units) quarantined by this stall — held by
        /// still-running workers, reclaimed only on confirmed exit.
        quarantined: u64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Sched(e) => write!(f, "policy construction failed: {e}"),
            PlatformError::Sim(e) => write!(f, "simulation failed: {e}"),
            PlatformError::Runtime(e) => write!(f, "threaded execution failed: {e}"),
            PlatformError::Partition(msg) => write!(f, "invalid shard plan: {msg}"),
            PlatformError::Ledger(e) => write!(f, "budget accounting failed: {e}"),
            PlatformError::Process(msg) => write!(f, "worker process failed: {msg}"),
            PlatformError::ShardFailed { shard, source } => {
                write!(f, "shard {shard} failed: {source}")
            }
            PlatformError::ShardStalled {
                reported,
                total,
                quarantined,
            } => {
                write!(
                    f,
                    "shard workers stalled: {reported}/{total} reported, \
                     {quarantined} memory units quarantined"
                )
            }
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<SchedError> for PlatformError {
    fn from(e: SchedError) -> Self {
        PlatformError::Sched(e)
    }
}

impl From<SimError> for PlatformError {
    fn from(e: SimError) -> Self {
        PlatformError::Sim(e)
    }
}

impl From<RuntimeError> for PlatformError {
    fn from(e: RuntimeError) -> Self {
        PlatformError::Runtime(e)
    }
}

impl From<LedgerError> for PlatformError {
    fn from(e: LedgerError) -> Self {
        PlatformError::Ledger(e)
    }
}

impl PlatformError {
    /// True when the failure is the policy's feasibility refusal — the
    /// "unable to schedule within the bound" outcome experiment harnesses
    /// count rather than propagate.
    pub fn is_infeasible(&self) -> bool {
        match self {
            PlatformError::Sched(SchedError::InfeasibleMemory { .. }) => true,
            // A shard refusing its split budget is the same feasibility
            // refusal, observed one level down.
            PlatformError::ShardFailed { source, .. } => source.is_infeasible(),
            _ => false,
        }
    }
}

/// An execution regime for scheduling policies.
pub trait Platform {
    /// Platform name for reports.
    fn name(&self) -> &'static str;

    /// Runs an already-instantiated policy over `tree`.
    fn run_instance(
        &self,
        tree: &TaskTree,
        instance: &PolicyInstance,
    ) -> Result<RunReport, PlatformError>;

    /// Instantiates `spec` against `tree` (applying any tree transform)
    /// and runs it.
    fn run(&self, tree: &TaskTree, spec: &PolicySpec) -> Result<RunReport, PlatformError> {
        let instance = spec.instantiate(tree)?;
        self.run_instance(tree, &instance)
    }
}

/// The discrete-event simulator as a platform.
#[derive(Clone, Copy, Debug)]
pub struct SimPlatform {
    /// Simulated processor count `p`.
    pub processors: usize,
    /// Speedup model used when the spec carries moldable caps.
    pub speedup: SpeedupModel,
    /// When set, moldable runs become **malleable**: a
    /// [`ProportionalRescheduler`] built from the executed tree resizes
    /// running gangs from live backlog (DESIGN.md §6.10). Ignored by
    /// sequential policies.
    pub reschedule: Option<ReschedulePolicy>,
}

impl SimPlatform {
    /// `p` simulated processors, linear moldable speedup.
    pub fn new(processors: usize) -> Self {
        SimPlatform {
            processors,
            speedup: SpeedupModel::Linear,
            reschedule: None,
        }
    }

    /// Overrides the moldable speedup model.
    pub fn with_speedup(mut self, speedup: SpeedupModel) -> Self {
        self.speedup = speedup;
        self
    }

    /// Enables malleability for moldable runs under `policy`.
    pub fn with_rescheduler(mut self, policy: ReschedulePolicy) -> Self {
        self.reschedule = Some(policy);
        self
    }
}

impl Platform for SimPlatform {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_instance(
        &self,
        tree: &TaskTree,
        instance: &PolicyInstance,
    ) -> Result<RunReport, PlatformError> {
        let exec = instance.exec_tree(tree);
        let started_at = std::time::Instant::now();
        if instance.is_moldable() {
            let sched = instance.moldable(tree)?;
            let mut resched = self
                .reschedule
                .map(|p| ProportionalRescheduler::new(exec, p));
            let trace = memtree_sim::simulate_moldable_with(
                exec,
                self.processors,
                instance.memory(),
                self.speedup,
                sched,
                resched
                    .as_mut()
                    .map(|r| r as &mut dyn memtree_sim::Rescheduler),
            )?;
            debug_assert!(trace.validate(exec, self.speedup).is_ok());
            return Ok(RunReport {
                platform: self.name(),
                policy: trace.scheduler.clone(),
                makespan: trace.makespan,
                wall_seconds: started_at.elapsed().as_secs_f64(),
                peak_booked: trace.peak_booked,
                peak_actual: trace.peak_actual,
                events: trace.events,
                scheduling_seconds: trace.scheduling_seconds,
                tasks_run: trace.records.len(),
                quarantined: 0,
            });
        }
        let sched = instance.scheduler(tree)?;
        let trace = simulate(
            exec,
            SimConfig::new(self.processors, instance.memory()),
            sched,
        )?;
        debug_assert!(memtree_sim::validate::validate_trace(exec, &trace).is_ok());
        Ok(RunReport {
            platform: self.name(),
            policy: trace.scheduler.clone(),
            makespan: trace.makespan,
            wall_seconds: started_at.elapsed().as_secs_f64(),
            peak_booked: trace.peak_booked,
            peak_actual: trace.peak_actual,
            events: trace.events,
            scheduling_seconds: trace.scheduling_seconds,
            tasks_run: trace.records.len(),
            quarantined: 0,
        })
    }
}

/// The real threaded runtime as a platform.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedPlatform {
    /// Worker-thread count.
    pub workers: usize,
    /// Per-task payload executed by the workers.
    pub workload: Workload,
    /// When set, moldable runs become **malleable**: a
    /// [`ProportionalRescheduler`] built from the executed tree resizes
    /// running gangs from live backlog (DESIGN.md §6.10). Ignored by
    /// sequential policies.
    pub reschedule: Option<ReschedulePolicy>,
}

impl ThreadedPlatform {
    /// `workers` threads running the no-op payload (pure scheduling
    /// overhead).
    pub fn new(workers: usize) -> Self {
        ThreadedPlatform {
            workers,
            workload: Workload::Noop,
            reschedule: None,
        }
    }

    /// Overrides the per-task payload.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Enables malleability for moldable runs under `policy`.
    pub fn with_rescheduler(mut self, policy: ReschedulePolicy) -> Self {
        self.reschedule = Some(policy);
        self
    }
}

impl Platform for ThreadedPlatform {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run_instance(
        &self,
        tree: &TaskTree,
        instance: &PolicyInstance,
    ) -> Result<RunReport, PlatformError> {
        let exec = instance.exec_tree(tree);
        let cfg = RuntimeConfig {
            workers: self.workers,
            memory: instance.memory(),
        };
        let report;
        let policy;
        if instance.is_moldable() {
            // Moldable specs gang-schedule: each task claims its allotment
            // of workers and runs its payload shard-parallel.
            let sched = instance.moldable(tree)?;
            policy = MoldableScheduler::name(&sched).to_string();
            report = match self.reschedule {
                Some(p) => {
                    let mut resched = ProportionalRescheduler::new(exec, p);
                    execute_moldable_with(exec, cfg, sched, self.workload, Some(&mut resched))?
                }
                None => execute_moldable_with(exec, cfg, sched, self.workload, None)?,
            };
        } else {
            let sched = instance.scheduler(tree)?;
            policy = sched.name().to_string();
            report = execute(exec, cfg, sched, self.workload)?;
        }
        Ok(RunReport {
            platform: self.name(),
            policy,
            makespan: report.wall_seconds,
            wall_seconds: report.wall_seconds,
            peak_booked: report.peak_booked,
            peak_actual: report.peak_actual,
            events: report.events,
            scheduling_seconds: report.scheduling_seconds,
            tasks_run: report.tasks_run,
            quarantined: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    // Per-platform invariant coverage (every kind completes, the booking
    // envelope, infeasibility refusal, moldable support) lives in the
    // `platform_conformance!` suite — tests/conformance.rs stamps it out
    // for every platform. Only genuine cross-platform *comparisons*
    // remain here.
    use super::*;
    use memtree_sched::HeuristicKind;

    fn min_memory(tree: &TaskTree) -> u64 {
        memtree_order::mem_postorder(tree).sequential_peak(tree)
    }

    #[test]
    fn moldable_runs_on_both_platforms() {
        // The capability this module used to lack: a moldable spec is a
        // first-class citizen of the threaded runtime too.
        let tree = memtree_gen::synthetic::paper_tree(60, 6);
        let m = min_memory(&tree);
        let caps = memtree_sched::AllotmentCaps::uniform(&tree, 4);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
        let sim = SimPlatform::new(4).run(&tree, &spec).unwrap();
        assert_eq!(sim.tasks_run, tree.len());
        let thr = ThreadedPlatform::new(4).run(&tree, &spec).unwrap();
        assert_eq!(thr.tasks_run, tree.len());
        assert_eq!(sim.policy, thr.policy);
        assert!(thr.peak_booked <= m);
        assert!(thr.peak_actual <= thr.peak_booked);
    }

    #[test]
    fn redtree_spec_runs_end_to_end_on_both_platforms() {
        // The acceptance scenario: MemBookingRedTree is a first-class
        // PolicySpec kind on sim AND threads.
        let tree = memtree_gen::synthetic::paper_tree(100, 23);
        let m = min_memory(&tree) * 40;
        let spec = PolicySpec::new(HeuristicKind::MemBookingRedTree, m);
        let sim = SimPlatform::new(4).run(&tree, &spec).unwrap();
        let thr = ThreadedPlatform::new(4).run(&tree, &spec).unwrap();
        assert_eq!(sim.tasks_run, thr.tasks_run);
        assert!(
            sim.tasks_run > tree.len(),
            "transform adds fictitious tasks"
        );
    }
}
