//! **`ProcessPlatform`** — the shard protocol over real worker
//! *processes* (DESIGN.md §6.12).
//!
//! The coordinator speaks exactly the protocol [`crate::sharded`]
//! established — budgets split through [`ShardBudget`], reports merged
//! shard-by-shard, failures surfaced as [`PlatformError::ShardFailed`] /
//! [`PlatformError::ShardStalled`] — but each shard worker is a spawned
//! `memtree-shard-worker` process connected only by its stdin/stdout
//! pipes. The coordinator serialises the shard's subtree (the
//! `memtree_tree::io` v1 text format), the shard's [`PolicySpec`] (the
//! `memtree-spec v1` format, pinned to `PolicySpec::fingerprint`) and the
//! run parameters down the pipe; the worker answers with a line-framed
//! report stream (`ready`, `heartbeat`, then exactly one `done …` or
//! `failed …` verdict). Both parsers are strict — across a process
//! boundary, lenient parsing turns corruption into a silently different
//! schedule.
//!
//! Process death is first-class: a worker that exits nonzero, is killed
//! by a signal, or closes its pipe before a verdict surfaces as a
//! retryable failure, and the coordinator **requeues** the shard onto a
//! fresh worker process (budget kept reserved across the retry — the
//! shard still owns its memory slice) up to [`ProcessPlatform::retries`];
//! only then does it fail the run as [`PlatformError::ShardFailed`]. On a
//! stall the coordinator kills every live worker and *waits* for each
//! exit: unlike the thread backend there is nothing to quarantine,
//! because a reaped process provably holds no memory — the stall error
//! always carries `quarantined: 0`, with every reservation released.
//!
//! Heartbeats keep the idle watchdog honest: a worker mid-subtree emits
//! `heartbeat` lines on a timer, so the watchdog only fires on a worker
//! that is genuinely gone (killed, wedged, or its heartbeats disabled).

use crate::platform::{Platform, PlatformError, RunReport, ThreadedPlatform};
use crate::sharded::ShardedReport;
use crate::workload::Workload;
use crossbeam::channel::{self, RecvTimeoutError, Sender, TryRecvError};
use memtree_sched::{BudgetLedger, PolicyInstance, PolicySpec, ShardBudget};
use memtree_sim::validate::validate_shard_plan;
use memtree_tree::partition::{partition, Partition, PartitionPolicy};
use memtree_tree::TaskTree;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub mod wire;

/// Fault injection for the process chaos suite: the coordinator passes
/// `--chaos-kill` to exactly one spawned worker — shard `shard`, spawn
/// attempt `attempt` (0-based) — which then SIGKILLs itself after
/// acknowledging the job, exercising the death-detection and requeue
/// paths deterministically.
#[derive(Clone, Copy, Debug)]
pub struct ChaosKill {
    /// Shard whose worker self-kills.
    pub shard: usize,
    /// Spawn attempt (0 = the first process for the shard).
    pub attempt: usize,
}

/// The process-backed shard platform; see the module docs.
#[derive(Clone, Debug)]
pub struct ProcessPlatform {
    /// Maximum shard count the partitioner may cut (≥ 1).
    pub shards: usize,
    /// Worker threads inside each worker process's executor.
    pub workers_per_shard: usize,
    /// How the global memory bound splits into per-shard ledgers.
    pub budget: ShardBudget,
    /// Per-task payload run by the worker processes (and the local
    /// residual phase).
    pub workload: Workload,
    /// Idle watchdog: no worker message (reports *or* heartbeats) for
    /// this long fails the run as [`PlatformError::ShardStalled`].
    pub shard_timeout: Option<Duration>,
    /// Overall deadline for the whole shard phase.
    pub shard_deadline: Option<Duration>,
    /// How many times a shard is requeued onto a fresh worker process
    /// after its worker *dies* (exit without a verdict). Clean `failed`
    /// verdicts are never retried — the policy's refusal is
    /// deterministic.
    pub retries: usize,
    /// Worker heartbeat period ([`Duration::ZERO`] disables heartbeats,
    /// leaving the watchdog to judge workers by reports alone).
    pub heartbeat: Duration,
    /// Explicit path to the `memtree-shard-worker` binary. When unset,
    /// the `MEMTREE_WORKER_BIN` environment variable is consulted, then
    /// the directory of the current executable and its parent (which
    /// finds `target/<profile>/memtree-shard-worker` from both
    /// integration tests and installed binaries).
    pub worker_bin: Option<PathBuf>,
    /// Chaos fault injection; `None` in production.
    pub chaos_kill: Option<ChaosKill>,
}

impl ProcessPlatform {
    /// Up to `shards` worker processes of one thread each, proportional
    /// budget split, no-op payload, no watchdog, one retry, 50 ms
    /// heartbeats.
    ///
    /// # Panics
    /// When `shards` is 0.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a process platform needs at least one shard");
        ProcessPlatform {
            shards,
            workers_per_shard: 1,
            budget: ShardBudget::Proportional,
            workload: Workload::Noop,
            shard_timeout: None,
            shard_deadline: None,
            retries: 1,
            heartbeat: Duration::from_millis(50),
            worker_bin: None,
            chaos_kill: None,
        }
    }

    /// Overrides the per-process worker-thread count.
    pub fn with_workers_per_shard(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers;
        self
    }

    /// Overrides the budget split policy.
    pub fn with_budget(mut self, budget: ShardBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the per-task payload.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Enables the idle watchdog.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = Some(timeout);
        self
    }

    /// Enables the overall shard-phase deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.shard_deadline = Some(deadline);
        self
    }

    /// Overrides the death-requeue budget (0 = fail on first death).
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Overrides the worker heartbeat period (`Duration::ZERO` disables).
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Pins the worker binary path (tests use
    /// `env!("CARGO_BIN_EXE_memtree-shard-worker")`).
    pub fn with_worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// Arms chaos fault injection.
    pub fn with_chaos_kill(mut self, chaos: ChaosKill) -> Self {
        self.chaos_kill = Some(chaos);
        self
    }

    /// The machine this platform models: every worker process's threads.
    /// The residual phase reclaims the whole machine locally.
    pub fn total_workers(&self) -> usize {
        self.shards * self.workers_per_shard
    }

    fn resolve_worker_bin(&self) -> Result<PathBuf, PlatformError> {
        if let Some(p) = &self.worker_bin {
            return Ok(p.clone());
        }
        if let Ok(p) = std::env::var("MEMTREE_WORKER_BIN") {
            return Ok(PathBuf::from(p));
        }
        let exe = std::env::current_exe().map_err(|e| {
            PlatformError::Process(format!("cannot locate current executable: {e}"))
        })?;
        let mut dir = exe.parent();
        while let Some(d) = dir {
            let candidate = d.join("memtree-shard-worker");
            if candidate.is_file() {
                return Ok(candidate);
            }
            // Integration tests run from target/<profile>/deps/; the
            // worker lands one level up in target/<profile>/.
            if d.file_name().is_some_and(|n| n != "deps") {
                break;
            }
            dir = d.parent();
        }
        Err(PlatformError::Process(
            "memtree-shard-worker binary not found; build it with \
             `cargo build -p memtree_runtime --bin memtree-shard-worker`, \
             set MEMTREE_WORKER_BIN, or use with_worker_bin(..)"
                .into(),
        ))
    }

    /// Runs `spec` over `tree` with one worker process per shard,
    /// returning full per-shard detail. The report's `platform` is
    /// `"process"`; shard reports carry `"process-worker"`.
    pub fn run_detailed(
        &self,
        tree: &TaskTree,
        spec: &PolicySpec,
    ) -> Result<ShardedReport, PlatformError> {
        let started_at = Instant::now();
        let part = partition(tree, &PartitionPolicy::balanced(self.shards));
        validate_shard_plan(tree, &part.assignment, part.shard_count())
            .map_err(PlatformError::Partition)?;

        let mins: Vec<u64> = part
            .shards
            .iter()
            .map(|s| spec.min_feasible(&s.tree))
            .collect();
        let shard_specs = spec
            .shard_specs(self.budget, &mins)
            .map_err(PlatformError::Sched)?;
        let budgets: Vec<u64> = shard_specs.iter().map(|s| s.memory).collect();
        let mut ledger = BudgetLedger::new(spec.memory);
        for &b in &budgets {
            ledger.reserve(b)?;
        }

        // Phase 1: one worker process per shard, retried across deaths.
        let shard_reports = self.run_shard_phase(&part, spec, shard_specs, &budgets, &mut ledger);
        debug_assert_eq!(ledger.reserved(), 0, "a shard budget leaked");
        let shard_reports = shard_reports?;

        // Phase 2: the merge runs locally (the residual tree is tiny —
        // one proxy leaf per shard plus the glue above the frontier), on
        // the whole machine under the full bound.
        ledger.reserve(spec.memory)?;
        let mut residual_spec = PolicySpec {
            kind: spec.kind,
            ao: spec.ao,
            eo: spec.eo,
            memory: spec.memory,
            caps: None,
        };
        if let Some(caps) = &spec.caps {
            residual_spec.caps = Some(crate::sharded::project_caps(
                caps,
                part.residual.origin.iter().copied(),
            ));
        }
        let residual = ThreadedPlatform {
            workers: self.total_workers(),
            workload: self.workload,
            reschedule: None,
        }
        .run(&part.residual.tree, &residual_spec)?;
        ledger.release(spec.memory)?;
        debug_assert_eq!(ledger.reserved(), 0);

        Ok(ShardedReport::roll_up_on(
            "process",
            &part,
            budgets,
            shard_reports,
            residual,
            started_at.elapsed().as_secs_f64(),
        ))
    }

    /// Spawns, supervises and (on death) requeues one worker process per
    /// shard. Budget rule: a shard's reservation is released exactly once
    /// — on its verdict (success or clean failure), on retry exhaustion,
    /// or on the stall path after the worker's exit has been *confirmed*
    /// by a reap. Never while a worker that could still report is alive.
    fn run_shard_phase(
        &self,
        part: &Partition,
        spec: &PolicySpec,
        shard_specs: Vec<PolicySpec>,
        budgets: &[u64],
        ledger: &mut BudgetLedger,
    ) -> Result<Vec<RunReport>, PlatformError> {
        let total = part.shard_count();
        if total == 0 {
            return Ok(Vec::new());
        }
        let worker_bin = self.resolve_worker_bin()?;

        // One serialized job per shard, reused verbatim across retries —
        // a requeued worker sees byte-identical input.
        let mut payloads = Vec::with_capacity(total);
        for (k, mut shard_spec) in shard_specs.into_iter().enumerate() {
            if let Some(caps) = &spec.caps {
                shard_spec.caps = Some(crate::sharded::project_caps(
                    caps,
                    part.shards[k].to_global.iter().map(|&g| Some(g)),
                ));
            }
            payloads.push(wire::job_to_string(
                &part.shards[k].tree,
                &shard_spec,
                self.workers_per_shard,
                self.workload,
                self.heartbeat,
            ));
        }

        let (tx, rx) = channel::unbounded::<(usize, wire::WorkerMsg)>();
        let mut live: Vec<Option<Supervisor>> = (0..total).map(|_| None).collect();
        let mut attempts = vec![0usize; total];
        let mut reports: Vec<Option<RunReport>> = (0..total).map(|_| None).collect();
        let mut released = vec![false; total];
        let mut first_err: Option<(usize, PlatformError)> = None;
        let mut reported = 0usize;

        // A failed spawn is not retryable (the environment, not the
        // worker, is broken): account the shard as failed immediately.
        for k in 0..total {
            match self.spawn_attempt(k, 0, &worker_bin, &payloads[k], tx.clone()) {
                Ok(sup) => live[k] = Some(sup),
                Err(e) => {
                    ledger.release(budgets[k])?;
                    released[k] = true;
                    reported += 1;
                    if first_err.as_ref().is_none_or(|(j, _)| k < *j) {
                        first_err = Some((k, e));
                    }
                }
            }
        }

        // The coordinator keeps `tx` alive for respawns, so the channel
        // never disconnects; stalls are judged purely by the clocks.
        let deadline = self.shard_deadline.map(|d| Instant::now() + d);
        let mut stalled = false;
        while reported < total {
            let msg = match rx.try_recv() {
                Ok(m) => Some(m),
                Err(TryRecvError::Disconnected) => unreachable!("coordinator holds a sender"),
                Err(TryRecvError::Empty) => {
                    let until_deadline =
                        deadline.map(|d| d.saturating_duration_since(Instant::now()));
                    if until_deadline.is_some_and(|d| d.is_zero()) {
                        stalled = true;
                        break;
                    }
                    let timeout = match (self.shard_timeout, until_deadline) {
                        (Some(idle), Some(rest)) => Some(idle.min(rest)),
                        (Some(idle), None) => Some(idle),
                        (None, rest) => rest,
                    };
                    match timeout {
                        Some(timeout) => match rx.recv_timeout(timeout) {
                            Ok(m) => Some(m),
                            Err(RecvTimeoutError::Timeout) => {
                                stalled = true;
                                break;
                            }
                            Err(RecvTimeoutError::Disconnected) => {
                                unreachable!("coordinator holds a sender")
                            }
                        },
                        None => match rx.recv() {
                            Ok(m) => Some(m),
                            // The coordinator holds `tx`, so disconnection
                            // is impossible; treat it as a stall rather
                            // than panic if it ever happens.
                            Err(_) => {
                                stalled = true;
                                break;
                            }
                        },
                    }
                }
            };
            let Some((k, msg)) = msg else { continue };
            match msg {
                // Any line from a worker proves liveness; the heartbeat
                // reset the watchdog simply by arriving.
                wire::WorkerMsg::Ready | wire::WorkerMsg::Heartbeat => {}
                wire::WorkerMsg::Done(report) => {
                    self.reap_supervisor(&mut live[k]);
                    ledger.release(budgets[k])?;
                    released[k] = true;
                    reports[k] = Some(report);
                    reported += 1;
                }
                wire::WorkerMsg::Failed(e) => {
                    // A clean verdict: deterministic, never requeued.
                    self.reap_supervisor(&mut live[k]);
                    ledger.release(budgets[k])?;
                    released[k] = true;
                    reported += 1;
                    if first_err.as_ref().is_none_or(|(j, _)| k < *j) {
                        first_err = Some((k, e));
                    }
                }
                wire::WorkerMsg::Died(reason) => {
                    self.reap_supervisor(&mut live[k]);
                    if attempts[k] < self.retries {
                        // Requeue onto a fresh process; the budget stays
                        // reserved — the shard still owns its slice.
                        attempts[k] += 1;
                        match self.spawn_attempt(
                            k,
                            attempts[k],
                            &worker_bin,
                            &payloads[k],
                            tx.clone(),
                        ) {
                            Ok(sup) => live[k] = Some(sup),
                            Err(e) => {
                                ledger.release(budgets[k])?;
                                released[k] = true;
                                reported += 1;
                                if first_err.as_ref().is_none_or(|(j, _)| k < *j) {
                                    first_err = Some((k, e));
                                }
                            }
                        }
                    } else {
                        ledger.release(budgets[k])?;
                        released[k] = true;
                        reported += 1;
                        let e = PlatformError::Process(format!(
                            "worker died after {} attempts: {reason}",
                            attempts[k] + 1
                        ));
                        if first_err.as_ref().is_none_or(|(j, _)| k < *j) {
                            first_err = Some((k, e));
                        }
                    }
                }
            }
        }

        if stalled {
            // Kill every live worker, then *wait* for each: a reaped
            // process provably holds no memory, so — unlike the thread
            // backend — every budget comes back with nothing quarantined.
            for sup in live.iter().flatten() {
                sup.kill();
            }
            for slot in live.iter_mut() {
                self.reap_supervisor(slot);
            }
            // Verdicts that raced the kill still count as releases (the
            // run fails as stalled regardless — the watchdog's verdict
            // stands), and double releases are guarded below.
            drop(tx);
            while let Ok((k, msg)) = rx.try_recv() {
                if matches!(msg, wire::WorkerMsg::Done(_) | wire::WorkerMsg::Failed(_))
                    && !released[k]
                {
                    ledger.release(budgets[k])?;
                    released[k] = true;
                }
            }
            for (k, done) in released.iter_mut().enumerate() {
                if !*done {
                    ledger.release(budgets[k])?;
                    *done = true;
                }
            }
            return Err(PlatformError::ShardStalled {
                reported,
                total,
                quarantined: 0,
            });
        }

        for slot in live.iter_mut() {
            self.reap_supervisor(slot);
        }
        if let Some((shard, source)) = first_err {
            return Err(PlatformError::ShardFailed {
                shard,
                source: Box::new(source),
            });
        }
        let mut out = Vec::with_capacity(total);
        for (k, report) in reports.into_iter().enumerate() {
            match report {
                Some(report) => out.push(report),
                // `reported == total` with no first_err should imply every
                // slot is filled; a hole is a coordinator bug surfaced as
                // an error, not a panic.
                None => {
                    return Err(PlatformError::Process(format!(
                        "shard {k} never produced a report"
                    )));
                }
            }
        }
        Ok(out)
    }

    /// Spawns one worker process and its supervisor thread. The
    /// supervisor writes the job down stdin, closes it, then relays every
    /// stdout line to the coordinator channel; on EOF it reaps the child
    /// and, if no verdict was seen, reports the death. Exactly one
    /// terminal message ([`wire::WorkerMsg::Done`] / `Failed` / `Died`)
    /// is sent per attempt.
    fn spawn_attempt(
        &self,
        shard: usize,
        attempt: usize,
        worker_bin: &PathBuf,
        payload: &str,
        tx: Sender<(usize, wire::WorkerMsg)>,
    ) -> Result<Supervisor, PlatformError> {
        let mut cmd = Command::new(worker_bin);
        cmd.arg("--shard")
            .arg(shard.to_string())
            .arg("--attempt")
            .arg(attempt.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if self
            .chaos_kill
            .is_some_and(|c| c.shard == shard && c.attempt == attempt)
        {
            cmd.arg("--chaos-kill");
        }
        let mut child = cmd.spawn().map_err(|e| {
            PlatformError::Process(format!(
                "spawning {} for shard {shard}: {e}",
                worker_bin.display()
            ))
        })?;
        // Both pipes were requested above; a hole means the OS handed us a
        // broken child — reap it and fail the attempt instead of panicking.
        let (Some(stdin), Some(stdout)) = (child.stdin.take(), child.stdout.take()) else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(PlatformError::Process(format!(
                "worker pipes missing for shard {shard}"
            )));
        };
        let child = Arc::new(Mutex::new(Some(child)));
        let payload = payload.to_string();
        let thread_child = child.clone();
        let thread = std::thread::Builder::new()
            .name(format!("memtree-proc-sup-{shard}-{attempt}"))
            .spawn(move || {
                supervise(shard, stdin, stdout, thread_child, payload, tx);
            })
            .map_err(|e| {
                // No supervisor means nobody will ever reap the child:
                // kill and wait for it here, then fail the attempt.
                if let Ok(mut guard) = child.lock() {
                    if let Some(mut orphan) = guard.take() {
                        let _ = orphan.kill();
                        let _ = orphan.wait();
                    }
                }
                PlatformError::Process(format!("spawning supervisor for shard {shard}: {e}"))
            })?;
        Ok(Supervisor { child, thread })
    }

    /// Joins a finished (or killed) supervisor. Safe to call on an empty
    /// slot; blocks until the supervisor has reaped its child, which is
    /// prompt once the child is dead or has closed its pipe.
    fn reap_supervisor(&self, slot: &mut Option<Supervisor>) {
        if let Some(sup) = slot.take() {
            let _ = sup.thread.join();
        }
    }
}

/// One worker-process attempt under supervision: the shared child handle
/// (the coordinator kills through it; the supervisor reaps through it)
/// and the supervisor thread.
struct Supervisor {
    child: Arc<Mutex<Option<Child>>>,
    thread: std::thread::JoinHandle<()>,
}

impl Supervisor {
    /// SIGKILLs the child if it is still ours to kill. The lock is never
    /// held across a blocking wait (the supervisor reaps with `try_wait`
    /// under the same discipline), so this cannot deadlock.
    fn kill(&self) {
        if let Ok(mut guard) = self.child.lock() {
            if let Some(child) = guard.as_mut() {
                let _ = child.kill();
            }
        }
    }
}

/// The supervisor body: feed the job, relay the report stream, reap.
fn supervise(
    shard: usize,
    mut stdin: std::process::ChildStdin,
    stdout: std::process::ChildStdout,
    child: Arc<Mutex<Option<Child>>>,
    payload: String,
    tx: Sender<(usize, wire::WorkerMsg)>,
) {
    // Write-then-read cannot deadlock here: the worker drains its whole
    // stdin before writing anything, and its replies are tiny lines that
    // fit the pipe buffer regardless.
    let fed = stdin
        .write_all(payload.as_bytes())
        .and_then(|()| stdin.flush());
    drop(stdin); // EOF tells the worker the job is complete
    let mut verdict_sent = false;
    if fed.is_ok() {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            match wire::parse_report_line(&line) {
                Ok(msg) => {
                    let terminal =
                        matches!(msg, wire::WorkerMsg::Done(_) | wire::WorkerMsg::Failed(_));
                    let _ = tx.send((shard, msg));
                    if terminal {
                        verdict_sent = true;
                        break;
                    }
                }
                Err(e) => {
                    // A malformed line is a protocol violation — a clean,
                    // non-retryable failure (retrying corruption would
                    // re-run a worker we no longer understand).
                    let _ = tx.send((
                        shard,
                        wire::WorkerMsg::Failed(PlatformError::Process(format!(
                            "protocol violation from worker: {e}"
                        ))),
                    ));
                    verdict_sent = true;
                    break;
                }
            }
        }
    }
    // Reap. try_wait under the lock, never a blocking wait: the
    // coordinator takes the same lock to kill on the stall path.
    let status = loop {
        // A poisoned lock only means the coordinator panicked mid-kill;
        // the child handle inside is still valid, so keep reaping.
        let mut guard = match child.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match guard.as_mut().map(|c| c.try_wait()) {
            None => break None, // already reaped (cannot happen twice)
            Some(Ok(Some(status))) => {
                guard.take();
                break Some(status);
            }
            Some(Ok(None)) => {}
            Some(Err(_)) => {
                guard.take();
                break None;
            }
        }
        drop(guard);
        std::thread::sleep(Duration::from_millis(2));
    };
    if !verdict_sent {
        let reason = match (fed, status) {
            (Err(e), _) => format!("worker closed stdin mid-job: {e}"),
            (Ok(()), Some(status)) => format!("worker exited without a verdict ({status})"),
            (Ok(()), None) => "worker exited without a verdict".to_string(),
        };
        let _ = tx.send((shard, wire::WorkerMsg::Died(reason)));
    }
}

impl Platform for ProcessPlatform {
    fn name(&self) -> &'static str {
        "process"
    }

    fn run_instance(
        &self,
        tree: &TaskTree,
        instance: &PolicyInstance,
    ) -> Result<RunReport, PlatformError> {
        // Like the thread-backed shard platform: per-part specs are
        // re-derived, so reconstruct the spec from the instance.
        let spec = PolicySpec {
            kind: instance.kind(),
            ao: instance.ao().kind(),
            eo: instance.eo().kind(),
            memory: instance.memory(),
            caps: instance.caps().cloned(),
        };
        Ok(self.run_detailed(tree, &spec)?.report)
    }

    fn run(&self, tree: &TaskTree, spec: &PolicySpec) -> Result<RunReport, PlatformError> {
        Ok(self.run_detailed(tree, spec)?.report)
    }
}
