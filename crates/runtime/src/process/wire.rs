//! The `memtree-worker v1` wire protocol spoken between the
//! [`ProcessPlatform`](super::ProcessPlatform) coordinator and a
//! `memtree-shard-worker` process (DESIGN.md §6.12).
//!
//! **Job (coordinator → worker stdin).** Line-oriented; the coordinator
//! writes the whole job and closes the pipe:
//!
//! ```text
//! memtree-worker v1
//! workers <n>
//! heartbeat-ms <n>
//! workload <encoding>
//! BEGIN SPEC
//! <memtree-spec v1 text>
//! END SPEC
//! BEGIN TREE
//! <memtree-tree v1 text>
//! END TREE
//! run
//! ```
//!
//! The embedded documents reuse the crate-standard text formats verbatim
//! ([`memtree_sched::spec_to_string`], [`memtree_tree::io::tree_to_string`])
//! between `BEGIN`/`END` frames — both parsers are strict, and neither
//! format can produce a line equal to a frame marker. Floating-point
//! workload parameters travel as the hex of their IEEE-754 bits, so the
//! worker computes with bit-identical values.
//!
//! **Reports (worker stdout → coordinator).** One message per line:
//!
//! ```text
//! ready
//! heartbeat
//! done <makespan:x> <wall:x> <booked> <actual> <events> <sched:x> <tasks> <quarantined> <policy…>
//! failed panic
//! failed infeasible <required> <available>
//! failed error <message…>
//! ```
//!
//! `ready` acknowledges a fully-parsed job; `heartbeat` lines prove
//! liveness to the coordinator's idle watchdog; exactly one `done` or
//! `failed` verdict ends the stream (`<policy…>` and `<message…>` run to
//! end of line). A worker that dies instead — nonzero exit, signal,
//! closed pipe — never produced a verdict, which is precisely how the
//! supervisor distinguishes retryable *death* from a deterministic
//! *refusal*. Any line outside this grammar is a protocol violation and
//! fails the shard without retry.

use crate::executor::RuntimeError;
use crate::platform::{PlatformError, RunReport};
use crate::workload::Workload;
use memtree_sched::{PolicySpec, SchedError};
use memtree_tree::TaskTree;
use std::time::Duration;

/// Protocol magic: the first line of every job.
pub const JOB_HEADER: &str = "memtree-worker v1";

/// One fully-parsed job: everything a worker process needs to run its
/// shard.
#[derive(Clone, Debug)]
pub struct Job {
    /// The shard subtree.
    pub tree: TaskTree,
    /// The shard's policy (memory already split to this shard's slice).
    pub spec: PolicySpec,
    /// Worker threads inside the process's executor.
    pub workers: usize,
    /// Per-task payload.
    pub workload: Workload,
    /// Heartbeat period; [`Duration::ZERO`] disables heartbeats.
    pub heartbeat: Duration,
}

/// A message relayed from a worker to the coordinator. `Ready` and
/// `Heartbeat` prove liveness; `Done`/`Failed` are the worker's verdict;
/// `Died` is synthesised by the supervisor when the process exits
/// without one (the retryable case).
#[derive(Debug)]
pub enum WorkerMsg {
    /// The worker parsed its job and is about to run.
    Ready,
    /// Liveness tick.
    Heartbeat,
    /// The shard completed; the reconstructed report (platform
    /// `"process-worker"`).
    Done(RunReport),
    /// The worker reported a clean, deterministic failure — never
    /// retried.
    Failed(PlatformError),
    /// The process died before any verdict — retryable.
    Died(String),
}

/// Serialises a job; the exact bytes a worker receives on stdin.
pub fn job_to_string(
    tree: &TaskTree,
    spec: &PolicySpec,
    workers: usize,
    workload: Workload,
    heartbeat: Duration,
) -> String {
    let mut out = String::new();
    out.push_str(JOB_HEADER);
    out.push('\n');
    out.push_str(&format!("workers {workers}\n"));
    out.push_str(&format!("heartbeat-ms {}\n", heartbeat.as_millis()));
    out.push_str(&format!("workload {}\n", encode_workload(workload)));
    out.push_str("BEGIN SPEC\n");
    out.push_str(&memtree_sched::spec_to_string(spec));
    out.push_str("END SPEC\n");
    out.push_str("BEGIN TREE\n");
    out.push_str(&memtree_tree::io::tree_to_string(tree));
    out.push_str("END TREE\n");
    out.push_str("run\n");
    out
}

/// Parses a complete job (the worker reads stdin to EOF first). Strict:
/// missing or duplicate directives, unknown directives, malformed
/// values, unterminated frames and anything after `run` are all errors.
pub fn parse_job(input: &str) -> Result<Job, String> {
    let mut lines = input.lines();
    let header = lines
        .by_ref()
        .find(|l| !l.trim().is_empty())
        .ok_or("empty job")?;
    if header.trim() != JOB_HEADER {
        return Err(format!("bad job header {header:?}"));
    }
    let mut workers: Option<usize> = None;
    let mut heartbeat: Option<Duration> = None;
    let mut workload: Option<Workload> = None;
    let mut spec: Option<PolicySpec> = None;
    let mut tree: Option<TaskTree> = None;
    let mut ran = false;
    while let Some(line) = lines.next() {
        let line = line.trim_end();
        if ran && !line.trim().is_empty() {
            return Err(format!("unexpected data after run: {line:?}"));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "run" {
            ran = true;
            continue;
        }
        if trimmed == "BEGIN SPEC" || trimmed == "BEGIN TREE" {
            let marker = if trimmed == "BEGIN SPEC" {
                "END SPEC"
            } else {
                "END TREE"
            };
            let mut body = String::new();
            let mut closed = false;
            for inner in lines.by_ref() {
                if inner.trim() == marker {
                    closed = true;
                    break;
                }
                body.push_str(inner);
                body.push('\n');
            }
            if !closed {
                return Err(format!("unterminated frame (missing {marker})"));
            }
            if marker == "END SPEC" {
                let parsed = PolicySpec::spec_from_str(&body).map_err(|e| e.to_string())?;
                if spec.replace(parsed).is_some() {
                    return Err("duplicate SPEC frame".into());
                }
            } else {
                let parsed = memtree_tree::io::tree_from_str(&body).map_err(|e| format!("{e}"))?;
                if tree.replace(parsed).is_some() {
                    return Err("duplicate TREE frame".into());
                }
            }
            continue;
        }
        let (key, value) = trimmed
            .split_once(' ')
            .ok_or_else(|| format!("missing value in directive {trimmed:?}"))?;
        match key {
            "workers" => {
                let parsed = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad workers {value:?}"))?;
                if parsed == 0 {
                    return Err("workers must be >= 1".into());
                }
                if workers.replace(parsed).is_some() {
                    return Err("duplicate workers directive".into());
                }
            }
            "heartbeat-ms" => {
                let parsed = value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad heartbeat-ms {value:?}"))?;
                if heartbeat.replace(Duration::from_millis(parsed)).is_some() {
                    return Err("duplicate heartbeat-ms directive".into());
                }
            }
            "workload" => {
                if workload.replace(decode_workload(value.trim())?).is_some() {
                    return Err("duplicate workload directive".into());
                }
            }
            other => return Err(format!("unknown directive {other:?}")),
        }
    }
    if !ran {
        return Err("job missing the run directive".into());
    }
    Ok(Job {
        tree: tree.ok_or("job missing the TREE frame")?,
        spec: spec.ok_or("job missing the SPEC frame")?,
        workers: workers.ok_or("job missing the workers directive")?,
        workload: workload.ok_or("job missing the workload directive")?,
        heartbeat: heartbeat.ok_or("job missing the heartbeat-ms directive")?,
    })
}

/// The worker's verdict line for a finished run.
pub fn verdict_line(outcome: &Result<RunReport, PlatformError>) -> String {
    match outcome {
        Ok(report) => done_line(report),
        Err(PlatformError::Runtime(RuntimeError::WorkerPanic)) => "failed panic".into(),
        Err(PlatformError::Sched(SchedError::InfeasibleMemory {
            required,
            available,
        })) => format!("failed infeasible {required} {available}"),
        Err(e) => format!("failed error {}", single_line(&e.to_string())),
    }
}

/// The `done …` line carrying every [`RunReport`] field; floats travel
/// as hex bit patterns for exact transport.
pub fn done_line(report: &RunReport) -> String {
    format!(
        "done {} {} {} {} {} {} {} {} {}",
        encode_f64(report.makespan),
        encode_f64(report.wall_seconds),
        report.peak_booked,
        report.peak_actual,
        report.events,
        encode_f64(report.scheduling_seconds),
        report.tasks_run,
        report.quarantined,
        report.policy,
    )
}

/// Parses one worker stdout line into a [`WorkerMsg`] (`Ready`,
/// `Heartbeat`, `Done` or `Failed` — `Died` is the supervisor's own
/// synthesis). Any unrecognised line is an error: a protocol violation.
pub fn parse_report_line(line: &str) -> Result<WorkerMsg, String> {
    let line = line.trim_end();
    match line {
        "ready" => return Ok(WorkerMsg::Ready),
        "heartbeat" => return Ok(WorkerMsg::Heartbeat),
        _ => {}
    }
    if let Some(rest) = line.strip_prefix("done ") {
        let mut fields = rest.splitn(9, ' ');
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| format!("done line missing {what}"))
        };
        let makespan = decode_f64(next("makespan")?)?;
        let wall_seconds = decode_f64(next("wall")?)?;
        let peak_booked = parse_u64(next("peak_booked")?)?;
        let peak_actual = parse_u64(next("peak_actual")?)?;
        let events = parse_u64(next("events")?)? as usize;
        let scheduling_seconds = decode_f64(next("scheduling")?)?;
        let tasks_run = parse_u64(next("tasks_run")?)? as usize;
        let quarantined = parse_u64(next("quarantined")?)?;
        let policy = next("policy")?.to_string();
        return Ok(WorkerMsg::Done(RunReport {
            platform: "process-worker",
            policy,
            makespan,
            wall_seconds,
            peak_booked,
            peak_actual,
            events,
            scheduling_seconds,
            tasks_run,
            quarantined,
        }));
    }
    if let Some(rest) = line.strip_prefix("failed ") {
        if rest == "panic" {
            return Ok(WorkerMsg::Failed(PlatformError::Runtime(
                RuntimeError::WorkerPanic,
            )));
        }
        if let Some(rest) = rest.strip_prefix("infeasible ") {
            let (r, a) = rest
                .split_once(' ')
                .ok_or_else(|| format!("bad infeasible verdict {rest:?}"))?;
            return Ok(WorkerMsg::Failed(PlatformError::Sched(
                SchedError::InfeasibleMemory {
                    required: parse_u64(r)?,
                    available: parse_u64(a)?,
                },
            )));
        }
        if let Some(msg) = rest.strip_prefix("error ") {
            return Ok(WorkerMsg::Failed(PlatformError::Process(format!(
                "worker reported: {msg}"
            ))));
        }
        return Err(format!("bad failed verdict {rest:?}"));
    }
    Err(format!("unrecognised report line {line:?}"))
}

/// Encodes a workload for the `workload` directive.
pub fn encode_workload(w: Workload) -> String {
    match w {
        Workload::Noop => "noop".into(),
        Workload::Sleep {
            nanos_per_time_unit,
            max_nanos,
        } => format!("sleep {} {max_nanos}", encode_f64(nanos_per_time_unit)),
        Workload::Spin {
            nanos_per_time_unit,
            max_nanos,
        } => format!("spin {} {max_nanos}", encode_f64(nanos_per_time_unit)),
        Workload::AllocTouch {
            bytes_per_output_unit,
            max_bytes,
        } => format!(
            "alloctouch {} {max_bytes}",
            encode_f64(bytes_per_output_unit)
        ),
        Workload::IoBound {
            nanos_per_time_unit,
            max_nanos,
            chunks,
        } => format!(
            "iobound {} {max_nanos} {chunks}",
            encode_f64(nanos_per_time_unit)
        ),
        Workload::FailAt { node } => format!("failat {node}"),
    }
}

/// Decodes the `workload` directive value.
pub fn decode_workload(s: &str) -> Result<Workload, String> {
    let mut fields = s.split(' ');
    let tag = fields.next().ok_or("empty workload")?;
    let mut next = |what: &str| {
        fields
            .next()
            .ok_or_else(|| format!("workload {tag} missing {what}"))
    };
    let w = match tag {
        "noop" => Workload::Noop,
        "sleep" => Workload::Sleep {
            nanos_per_time_unit: decode_f64(next("rate")?)?,
            max_nanos: parse_u64(next("cap")?)?,
        },
        "spin" => Workload::Spin {
            nanos_per_time_unit: decode_f64(next("rate")?)?,
            max_nanos: parse_u64(next("cap")?)?,
        },
        "alloctouch" => Workload::AllocTouch {
            bytes_per_output_unit: decode_f64(next("rate")?)?,
            max_bytes: parse_u64(next("cap")?)? as usize,
        },
        "iobound" => Workload::IoBound {
            nanos_per_time_unit: decode_f64(next("rate")?)?,
            max_nanos: parse_u64(next("cap")?)?,
            chunks: parse_u64(next("chunks")?)? as u32,
        },
        "failat" => Workload::FailAt {
            node: parse_u64(next("node")?)? as u32,
        },
        other => return Err(format!("unknown workload {other:?}")),
    };
    if let Some(extra) = fields.next() {
        return Err(format!("unexpected extra workload field {extra:?}"));
    }
    Ok(w)
}

/// Exact f64 transport: the hex of the IEEE-754 bit pattern.
fn encode_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn decode_f64(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bits {s:?}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad integer {s:?}"))
}

fn single_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_sched::HeuristicKind;

    fn job_parts() -> (TaskTree, PolicySpec) {
        let tree = memtree_gen::synthetic::paper_tree(40, 7);
        let m = memtree_sched::min_feasible_memory(&tree) * 4;
        (tree, PolicySpec::new(HeuristicKind::MemBooking, m))
    }

    #[test]
    fn job_round_trips_exactly() {
        let (tree, spec) = job_parts();
        let workload = Workload::Sleep {
            nanos_per_time_unit: 123.456,
            max_nanos: 9_999,
        };
        let text = job_to_string(&tree, &spec, 3, workload, Duration::from_millis(25));
        let job = parse_job(&text).unwrap();
        assert_eq!(job.tree.content_hash(), tree.content_hash());
        assert_eq!(job.spec.fingerprint(), spec.fingerprint());
        assert_eq!(job.workers, 3);
        assert_eq!(job.heartbeat, Duration::from_millis(25));
        match job.workload {
            Workload::Sleep {
                nanos_per_time_unit,
                max_nanos,
            } => {
                // Bit-exact across the pipe, not merely approximate.
                assert_eq!(nanos_per_time_unit.to_bits(), 123.456f64.to_bits());
                assert_eq!(max_nanos, 9_999);
            }
            other => panic!("wrong workload {other:?}"),
        }
    }

    #[test]
    fn every_workload_encoding_round_trips() {
        for w in [
            Workload::Noop,
            Workload::quick(),
            Workload::Spin {
                nanos_per_time_unit: 0.25,
                max_nanos: 77,
            },
            Workload::AllocTouch {
                bytes_per_output_unit: 16.5,
                max_bytes: 4096,
            },
            Workload::quick_io(),
            Workload::FailAt { node: 12 },
        ] {
            let enc = encode_workload(w);
            let dec = decode_workload(&enc).unwrap();
            assert_eq!(enc, encode_workload(dec), "unstable encoding {enc:?}");
        }
        assert!(decode_workload("sleep 42").is_err(), "truncated");
        assert!(decode_workload("noop extra").is_err(), "trailing field");
        assert!(decode_workload("warp 1 2").is_err(), "unknown tag");
    }

    #[test]
    fn job_parser_is_strict() {
        let (tree, spec) = job_parts();
        let good = job_to_string(&tree, &spec, 2, Workload::Noop, Duration::ZERO);
        assert!(parse_job(&good).is_ok());
        assert!(parse_job("").is_err(), "empty job");
        assert!(
            parse_job(&good.replace(JOB_HEADER, "memtree-worker v999")).is_err(),
            "wrong version"
        );
        assert!(
            parse_job(&good.replace("workers 2\n", "")).is_err(),
            "missing workers"
        );
        assert!(
            parse_job(&good.replace("workers 2\n", "workers 2\nworkers 2\n")).is_err(),
            "duplicate workers"
        );
        assert!(
            parse_job(&good.replace("END TREE\n", "")).is_err(),
            "unterminated frame"
        );
        assert!(
            parse_job(&good.replace("run\n", "")).is_err(),
            "missing run"
        );
        assert!(
            parse_job(&format!("{good}contraband\n")).is_err(),
            "data after run"
        );
        assert!(
            parse_job(&good.replace("workload noop\n", "workload noop\nbogus 1\n")).is_err(),
            "unknown directive"
        );
    }

    #[test]
    fn verdict_lines_round_trip() {
        let report = RunReport {
            platform: "process-worker",
            policy: "MemBooking ao=memPO eo=memPO".into(),
            makespan: 1.5,
            wall_seconds: 0.25,
            peak_booked: 100,
            peak_actual: 90,
            events: 42,
            scheduling_seconds: 0.003,
            tasks_run: 40,
            quarantined: 0,
        };
        let msg = parse_report_line(&done_line(&report)).unwrap();
        match msg {
            WorkerMsg::Done(r) => {
                assert_eq!(r.policy, report.policy);
                assert_eq!(r.makespan.to_bits(), report.makespan.to_bits());
                assert_eq!(r.wall_seconds.to_bits(), report.wall_seconds.to_bits());
                assert_eq!(r.peak_booked, 100);
                assert_eq!(r.peak_actual, 90);
                assert_eq!(r.events, 42);
                assert_eq!(r.tasks_run, 40);
            }
            other => panic!("wrong message {other:?}"),
        }

        let panic_line = verdict_line(&Err(PlatformError::Runtime(RuntimeError::WorkerPanic)));
        assert!(matches!(
            parse_report_line(&panic_line).unwrap(),
            WorkerMsg::Failed(PlatformError::Runtime(RuntimeError::WorkerPanic))
        ));

        let inf = verdict_line(&Err(PlatformError::Sched(SchedError::InfeasibleMemory {
            required: 70,
            available: 50,
        })));
        match parse_report_line(&inf).unwrap() {
            WorkerMsg::Failed(e) => assert!(e.is_infeasible(), "{e}"),
            other => panic!("wrong message {other:?}"),
        }

        let err = verdict_line(&Err(PlatformError::Partition("bad\nplan".into())));
        match parse_report_line(&err).unwrap() {
            WorkerMsg::Failed(PlatformError::Process(msg)) => {
                assert!(msg.contains("bad plan"), "newlines collapsed: {msg}");
            }
            other => panic!("wrong message {other:?}"),
        }

        assert!(parse_report_line("gibberish").is_err());
        assert!(parse_report_line("done 1 2").is_err(), "truncated done");
        assert!(parse_report_line("failed sideways").is_err());
    }
}
