//! Process-wide accounting of **quarantined** stall budgets.
//!
//! When a sharded run stalls, some shard workers may still be executing:
//! their threads hold real memory that the run's budget split promised
//! them. Releasing those budgets on a timer — the old "grace deadline" —
//! opened a race: the moment the deadline passed, the coordinator (and
//! any service layer above it) considered memory free that a runaway
//! worker could still be filling. The fix is quarantine-and-account: a
//! stalled worker's budget is **held**, counted in this module's global
//! gauge, and reclaimed only when a reaper thread has *confirmed* the
//! worker's exit by joining it. Until then the budget is neither usable
//! nor silently leaked — [`held`] reports exactly how much memory the
//! machine may still be carrying for already-failed runs, and every
//! sharded/process [`RunReport`](crate::RunReport) snapshots it in its
//! `quarantined` field.
//!
//! The gauge is process-global on purpose: quarantined memory is a fact
//! about the machine, not about any one run. A stalled run errors with
//! [`PlatformError::ShardStalled`](crate::PlatformError::ShardStalled)
//! carrying *its own* quarantined total; later runs observe whatever is
//! still pending via their reports, and the gauge drains to zero as the
//! runaway workers finish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

static HELD: AtomicU64 = AtomicU64::new(0);

/// Memory (model units) currently held in quarantine across the whole
/// process: budgets of stalled shard workers whose exit has not yet been
/// confirmed by a reaper join.
pub fn held() -> u64 {
    HELD.load(Ordering::SeqCst)
}

/// Moves `entries` — still-running worker threads and the shard budgets
/// reserved for them — into quarantine: adds their budgets to the global
/// gauge and spawns a detached reaper that joins each worker and releases
/// its budget **only then**. Returns the total quarantined now.
pub(crate) fn quarantine_threads(entries: Vec<(JoinHandle<()>, u64)>) -> u64 {
    if entries.is_empty() {
        return 0;
    }
    let total: u64 = entries.iter().map(|(_, budget)| budget).sum();
    HELD.fetch_add(total, Ordering::SeqCst);
    std::thread::Builder::new()
        .name("memtree-quarantine-reaper".into())
        .spawn(move || {
            for (handle, budget) in entries {
                // Confirmed exit (a panic is an exit too) — only now is
                // the worker's memory provably gone.
                let _ = handle.join();
                HELD.fetch_sub(budget, Ordering::SeqCst);
            }
        })
        .expect("spawning the quarantine reaper");
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn quarantine_holds_until_confirmed_join() {
        let release = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let gate = release.clone();
        let worker = std::thread::spawn(move || {
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let quarantined = quarantine_threads(vec![(worker, 77)]);
        assert_eq!(quarantined, 77);
        // Our 77 is certainly still held while the worker spins (other
        // tests may hold more; the gauge is process-global).
        assert!(held() >= 77, "budget must be held while running");
        release.store(true, Ordering::SeqCst);
        // Reclaimed only after the join confirms the exit: the whole
        // gauge drains once every test's quarantined workers have exited.
        let deadline = Instant::now() + Duration::from_secs(60);
        while held() > 0 {
            assert!(Instant::now() < deadline, "quarantine never drained");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn empty_quarantine_is_free() {
        assert_eq!(quarantine_threads(Vec::new()), 0);
    }
}
