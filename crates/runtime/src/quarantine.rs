//! Process-wide accounting of **quarantined** stall budgets.
//!
//! When a sharded run stalls, some shard workers may still be executing:
//! their threads hold real memory that the run's budget split promised
//! them. Releasing those budgets on a timer — the old "grace deadline" —
//! opened a race: the moment the deadline passed, the coordinator (and
//! any service layer above it) considered memory free that a runaway
//! worker could still be filling. The fix is quarantine-and-account: a
//! stalled worker's budget is **held**, counted in this module's global
//! gauge, and reclaimed only when a reaper thread has *confirmed* the
//! worker's exit by joining it. Until then the budget is neither usable
//! nor silently leaked — [`held`] reports exactly how much memory the
//! machine may still be carrying for already-failed runs, and every
//! sharded/process [`RunReport`](crate::RunReport) snapshots it in its
//! `quarantined` field.
//!
//! The gauge is process-global on purpose: quarantined memory is a fact
//! about the machine, not about any one run. A stalled run errors with
//! [`PlatformError::ShardStalled`](crate::PlatformError::ShardStalled)
//! carrying *its own* quarantined total; later runs observe whatever is
//! still pending via their reports, and the gauge drains to zero as the
//! runaway workers finish.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::thread::JoinHandle;

static HELD: AtomicU64 = AtomicU64::new(0);

/// Memory (model units) currently held in quarantine across the whole
/// process: budgets of stalled shard workers whose exit has not yet been
/// confirmed by a reaper join.
pub fn held() -> u64 {
    // ordering: SeqCst — the gauge is a cross-run, cross-thread fact
    // (coordinator adds, reaper subtracts, any thread reads); a single
    // total order over all three keeps "add observed ⇒ matching sub not
    // yet observed means the budget is still held" true without
    // reasoning about pairings. Model-checked by
    // model/quarantine.rs::stall_join_race_conserves_budget.
    HELD.load(Ordering::SeqCst)
}

/// Moves `entries` — still-running worker threads and the shard budgets
/// reserved for them — into quarantine: adds their budgets to the global
/// gauge and spawns a detached reaper that joins each worker and releases
/// its budget **only then**. Returns the total quarantined now.
///
/// Public so the `memtree_loom` model suite can race it against worker
/// exits and `held` readers; production callers stay inside the crate.
pub fn quarantine_threads(entries: Vec<(JoinHandle<()>, u64)>) -> u64 {
    quarantine_impl(entries).0
}

/// [`quarantine_threads`], additionally returning the reaper's join
/// handle (when one was spawned). Model-suite only: joining the reaper
/// is the happens-after edge that lets a test assert the gauge has
/// drained *exactly* to zero; production code must never wait on the
/// reaper (the whole point is that the stalled coordinator moves on).
#[cfg(memtree_loom)]
pub fn quarantine_threads_with_reaper(
    entries: Vec<(JoinHandle<()>, u64)>,
) -> (u64, Option<JoinHandle<()>>) {
    quarantine_impl(entries)
}

fn quarantine_impl(entries: Vec<(JoinHandle<()>, u64)>) -> (u64, Option<JoinHandle<()>>) {
    if entries.is_empty() {
        return (0, None);
    }
    let total: u64 = entries.iter().map(|(_, budget)| budget).sum();
    // ordering: SeqCst — see [`held`]: the add must precede the reaper's
    // subs in the single total order, so the gauge can never observably
    // go negative or double-drain.
    HELD.fetch_add(total, Ordering::SeqCst);
    // The entry list rides in a shared slot so a failed spawn can take it
    // back: the reaper must never be silently dropped, or the gauge leaks.
    let shared = std::sync::Arc::new(crate::sync::Mutex::new(Some(entries)));
    let in_reaper = shared.clone();
    let reaper = crate::sync::thread::Builder::new()
        .name("memtree-quarantine-reaper".into())
        .spawn(move || reap(&in_reaper));
    match reaper {
        Ok(handle) => (total, Some(handle)),
        Err(err) => {
            // No thread to detach into (resource exhaustion): reap inline.
            // Slower — the stalled coordinator waits on the stragglers —
            // but the accounting invariant (drain only after a confirmed
            // join) is preserved, which beats leaking the gauge forever.
            eprintln!("memtree: quarantine reaper spawn failed ({err}); reaping inline");
            reap(&shared);
            (total, None)
        }
    }
}

type QuarantineEntries = Option<Vec<(JoinHandle<()>, u64)>>;

/// Joins each quarantined worker and releases its budget only on the
/// confirmed exit. Idempotent: the first caller takes the entries.
fn reap(shared: &crate::sync::Mutex<QuarantineEntries>) {
    let entries = match shared.lock() {
        Ok(mut slot) => slot.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    };
    for (handle, budget) in entries.into_iter().flatten() {
        // Confirmed exit (a panic is an exit too) — only now is the
        // worker's memory provably gone.
        let _ = handle.join();
        // ordering: SeqCst — see [`held`].
        HELD.fetch_sub(budget, Ordering::SeqCst);
    }
}

// Real-thread timing tests; the loom build replaces them with the
// exhaustive model suite in tests/model/quarantine.rs.
#[cfg(all(test, not(memtree_loom)))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn quarantine_holds_until_confirmed_join() {
        let release = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let gate = release.clone();
        let worker = std::thread::spawn(move || {
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let quarantined = quarantine_threads(vec![(worker, 77)]);
        assert_eq!(quarantined, 77);
        // Our 77 is certainly still held while the worker spins (other
        // tests may hold more; the gauge is process-global).
        assert!(held() >= 77, "budget must be held while running");
        release.store(true, Ordering::SeqCst);
        // Reclaimed only after the join confirms the exit: the whole
        // gauge drains once every test's quarantined workers have exited.
        let deadline = Instant::now() + Duration::from_secs(60);
        while held() > 0 {
            assert!(Instant::now() < deadline, "quarantine never drained");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn empty_quarantine_is_free() {
        assert_eq!(quarantine_threads(Vec::new()), 0);
    }
}
