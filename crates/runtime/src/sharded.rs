//! **`ShardedPlatform`** — a distributed-style execution backend that
//! splits one tree across channel-connected shard workers (DESIGN.md
//! §6.7).
//!
//! The platform cuts the tree at subtree-weight frontiers
//! ([`memtree_tree::partition`]) into disjoint shard subtrees plus a
//! residual merge tree, then runs in two phases:
//!
//! 1. **Shard phase.** Every shard runs concurrently on its own worker — a
//!    thread standing in for a process, connected to the coordinator only
//!    by a crossbeam channel (no shared scheduler state, exactly the
//!    message surface a multi-process deployment would have). Each worker
//!    executes its subtree through the ordinary [`ThreadedPlatform`], so
//!    the shard has an **independent booking ledger** bounded by its slice
//!    of the global memory `M`; the slices come from a
//!    [`ShardBudget`] split and sum to at most `M`, so the shard peaks can
//!    never jointly exceed the bound.
//! 2. **Merge phase.** As each shard root completes, the coordinator
//!    releases the shard's budget back to the parent ledger. Once all
//!    shards are in, the residual tree — where each shard is a proxy leaf
//!    carrying the shard root's output size — runs under the full bound
//!    `M`, with the proxy outputs booked through the normal policy
//!    machinery.
//!
//! Every [`PolicySpec`] runs unmodified: the spec is re-derived per shard
//! (same kind and orders, split memory, allotment caps projected onto the
//! shard's id space), so `MemBookingRedTree` transforms each part and
//! moldable MemBooking gang-schedules inside each shard worker. Failure
//! paths are first-class: a killed worker surfaces
//! [`PlatformError::ShardFailed`] (two failures pick the lowest shard
//! index deterministically), a silent one trips the optional idle
//! watchdog — and the optional overall deadline bounds the whole phase
//! even under trickling reports — as [`PlatformError::ShardStalled`].
//! On the failure paths every budget reservation is released before the
//! error returns. On the **stall** path a budget is released only when
//! its worker provably holds no memory any more (a late report arrived,
//! or the thread finished); workers still running are **quarantined** —
//! their budgets stay held, counted in the process-wide
//! [`crate::quarantine`] gauge, surfaced through
//! [`PlatformError::ShardStalled`]'s `quarantined` field and every
//! report's [`RunReport::quarantined`], and reclaimed only once a reaper
//! thread confirms the worker's exit by joining it. A budget is never
//! released while the worker it backs can still report — the chaos suite
//! pins all of this down.

use crate::platform::{Platform, PlatformError, RunReport, ThreadedPlatform};
use crate::workload::Workload;
use crossbeam::channel::{self, RecvTimeoutError, TryRecvError};
use memtree_sched::{AllotmentCaps, BudgetLedger, PolicyInstance, PolicySpec, ShardBudget};
use memtree_sim::validate::validate_shard_plan;
use memtree_tree::partition::{partition, Partition, PartitionPolicy};
use memtree_tree::TaskTree;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The sharded forest backend; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct ShardedPlatform {
    /// Maximum shard count the partitioner may cut (≥ 1; the tree's
    /// structure may admit fewer).
    pub shards: usize,
    /// Worker threads inside each shard's executor.
    pub workers_per_shard: usize,
    /// How the global memory bound splits into per-shard ledgers.
    pub budget: ShardBudget,
    /// Per-task payload, as on [`ThreadedPlatform`].
    pub workload: Workload,
    /// Idle watchdog: no shard report for this long fails the run with
    /// [`PlatformError::ShardStalled`] instead of blocking forever.
    pub shard_timeout: Option<Duration>,
    /// Overall deadline for the whole shard phase, measured from its
    /// start. The idle watchdog alone cannot bound the phase — shards
    /// that keep trickling reports reset it — so a deadline caps the
    /// total even when every individual gap stays short. On either stall
    /// the phase returns immediately; still-running workers are
    /// quarantined with their budgets held (see [`crate::quarantine`]).
    pub shard_deadline: Option<Duration>,
}

impl ShardedPlatform {
    /// Up to `shards` shard workers of one thread each, proportional
    /// budget split, no-op payload, no watchdog, no deadline.
    ///
    /// # Panics
    /// When `shards` is 0.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded platform needs at least one shard");
        ShardedPlatform {
            shards,
            workers_per_shard: 1,
            budget: ShardBudget::Proportional,
            workload: Workload::Noop,
            shard_timeout: None,
            shard_deadline: None,
        }
    }

    /// Overrides the per-shard worker-thread count.
    pub fn with_workers_per_shard(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers;
        self
    }

    /// Overrides the budget split policy.
    pub fn with_budget(mut self, budget: ShardBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the per-task payload.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Enables the idle shard watchdog.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = Some(timeout);
        self
    }

    /// Enables the overall shard-phase deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.shard_deadline = Some(deadline);
        self
    }

    /// The machine this platform models: every shard worker's threads
    /// plus nothing else (the coordinator only routes messages). The
    /// residual phase reclaims the whole machine.
    pub fn total_workers(&self) -> usize {
        self.shards * self.workers_per_shard
    }

    /// Runs `spec` sharded over `tree`, returning the full per-shard
    /// detail ([`ShardedReport`]); [`Platform::run`] flattens this to the
    /// common [`RunReport`].
    pub fn run_detailed(
        &self,
        tree: &TaskTree,
        spec: &PolicySpec,
    ) -> Result<ShardedReport, PlatformError> {
        let started_at = Instant::now();
        let part = Arc::new(partition(tree, &PartitionPolicy::balanced(self.shards)));
        validate_shard_plan(tree, &part.assignment, part.shard_count())
            .map_err(PlatformError::Partition)?;

        // Split the bound over the shards' minimum feasible memories —
        // the *policy's* threshold per shard, so a successful split
        // grants every shard a constructible scheduler.
        let mins: Vec<u64> = part
            .shards
            .iter()
            .map(|s| spec.min_feasible(&s.tree))
            .collect();
        let shard_specs = spec.shard_specs(self.budget, &mins).map_err(|e| {
            debug_assert!(matches!(
                e,
                memtree_sched::SchedError::InfeasibleMemory { .. }
            ));
            PlatformError::Sched(e)
        })?;
        let budgets: Vec<u64> = shard_specs.iter().map(|s| s.memory).collect();
        // The coordinator level of the budget hierarchy: the shared
        // hard-error ledger (memtree_sched::BudgetLedger) — a release bug
        // is a loud PlatformError::Ledger, never silent drift.
        let mut ledger = BudgetLedger::new(spec.memory);
        for &b in &budgets {
            ledger.reserve(b)?;
        }

        // Phase 1: every shard on its own channel-connected worker.
        let shard_reports = self.run_shard_phase(&part, spec, shard_specs, &budgets, &mut ledger);
        // On a stall the quarantined workers' reservations legitimately
        // stay on the books (held, not leaked); every other path must
        // come back balanced.
        if !matches!(
            &shard_reports,
            Err(PlatformError::ShardStalled { quarantined, .. }) if *quarantined > 0
        ) {
            debug_assert_eq!(ledger.reserved(), 0, "a shard budget leaked");
        }
        let shard_reports = shard_reports?;

        // Phase 2: the merge — all budgets are back with the parent
        // ledger, so the residual tree runs under the full bound with the
        // whole machine.
        ledger.reserve(spec.memory)?;
        let mut residual_spec = PolicySpec {
            kind: spec.kind,
            ao: spec.ao,
            eo: spec.eo,
            memory: spec.memory,
            caps: None,
        };
        if let Some(caps) = &spec.caps {
            residual_spec.caps = Some(project_caps(caps, part.residual.origin.iter().copied()));
        }
        let residual = ThreadedPlatform {
            workers: self.total_workers(),
            workload: self.workload,
            reschedule: None,
        }
        .run(&part.residual.tree, &residual_spec)?;
        ledger.release(spec.memory)?;
        debug_assert_eq!(ledger.reserved(), 0);

        Ok(ShardedReport::roll_up(
            &part,
            budgets,
            shard_reports,
            residual,
            started_at.elapsed().as_secs_f64(),
        ))
    }

    /// Launches every shard worker, collects their reports, and releases
    /// each shard's budget as it reports (success *or* failure) — on any
    /// error path all budgets are back before the error returns.
    fn run_shard_phase(
        &self,
        part: &Arc<Partition>,
        spec: &PolicySpec,
        shard_specs: Vec<PolicySpec>,
        budgets: &[u64],
        ledger: &mut BudgetLedger,
    ) -> Result<Vec<RunReport>, PlatformError> {
        let total = part.shard_count();
        let mut reports: Vec<Option<RunReport>> = (0..total).map(|_| None).collect();
        if total == 0 {
            return Ok(Vec::new());
        }

        let (tx, rx) = channel::unbounded::<(usize, Result<RunReport, PlatformError>)>();
        let mut handles = Vec::with_capacity(total);
        for (k, mut shard_spec) in shard_specs.into_iter().enumerate() {
            if let Some(caps) = &spec.caps {
                shard_spec.caps = Some(project_caps(
                    caps,
                    part.shards[k].to_global.iter().map(|&g| Some(g)),
                ));
            }
            let inner = ThreadedPlatform {
                workers: self.workers_per_shard,
                workload: self.workload,
                reschedule: None,
            };
            let part = part.clone();
            let worker_tx = tx.clone();
            let spawned = crate::sync::thread::Builder::new()
                .name(format!("memtree-shard-{k}"))
                .spawn(move || {
                    // A panicking payload must become a message, never a
                    // silent death: the coordinator's only view of this
                    // worker is the channel.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        inner.run(&part.shards[k].tree, &shard_spec)
                    }))
                    .unwrap_or(Err(PlatformError::Runtime(
                        crate::executor::RuntimeError::WorkerPanic,
                    )));
                    let _ = worker_tx.send((k, outcome));
                });
            match spawned {
                Ok(handle) => handles.push((k, handle)),
                Err(_) => {
                    // No thread for this shard (resource exhaustion): the
                    // shard fails like a dead worker — reported on the
                    // channel so the merge loop releases its budget —
                    // instead of aborting the whole phase mid-spawn.
                    let _ = tx.send((
                        k,
                        Err(PlatformError::Runtime(
                            crate::executor::RuntimeError::WorkerPanic,
                        )),
                    ));
                }
            }
        }
        drop(tx);

        // Merge protocol: each report releases its shard's budget back to
        // the parent ledger; failures are remembered and returned after
        // every other shard has been drained. The wait is bounded twice
        // over: the idle watchdog trips on a silent gap between reports,
        // the overall deadline caps the whole phase even when reports
        // keep trickling in (a trickle resets an idle timeout forever).
        let deadline = self.shard_deadline.map(|d| Instant::now() + d);
        let mut released = vec![false; total];
        let mut first_err: Option<(usize, PlatformError)> = None;
        let mut reported = 0usize;
        let mut stalled = false;
        while reported < total {
            // Drain anything already delivered before consulting the
            // clock: a report that beat the deadline must count even if
            // the coordinator thread was descheduled past it.
            let msg = match rx.try_recv() {
                Ok(m) => Ok(m),
                Err(TryRecvError::Disconnected) => Err(Some(())),
                Err(TryRecvError::Empty) => {
                    let until_deadline =
                        deadline.map(|d| d.saturating_duration_since(Instant::now()));
                    if until_deadline.is_some_and(|d| d.is_zero()) {
                        stalled = true;
                        break;
                    }
                    let timeout = match (self.shard_timeout, until_deadline) {
                        (Some(idle), Some(rest)) => Some(idle.min(rest)),
                        (Some(idle), None) => Some(idle),
                        (None, rest) => rest,
                    };
                    match timeout {
                        Some(timeout) => rx.recv_timeout(timeout).map_err(|e| match e {
                            RecvTimeoutError::Timeout => None,
                            RecvTimeoutError::Disconnected => Some(()),
                        }),
                        None => rx.recv().map_err(|_| Some(())),
                    }
                }
            };
            match msg {
                Ok((k, Ok(report))) => {
                    ledger.release(budgets[k])?;
                    released[k] = true;
                    reports[k] = Some(report);
                    reported += 1;
                }
                Ok((k, Err(e))) => {
                    ledger.release(budgets[k])?;
                    released[k] = true;
                    reported += 1;
                    if first_err.as_ref().is_none_or(|(j, _)| k < *j) {
                        first_err = Some((k, e));
                    }
                }
                Err(None) => {
                    // Idle watchdog or overall deadline fired; either way
                    // the phase stops waiting.
                    stalled = true;
                    break;
                }
                Err(Some(())) => {
                    // All senders gone with reports outstanding — a worker
                    // died without even its catch_unwind message.
                    stalled = true;
                    break;
                }
            }
        }
        if stalled {
            // Any error from an already-reported shard loses to the
            // stall: the stall is what stopped the phase (a ledger
            // accounting error during the cleanup still trumps both —
            // the books stopped balancing).
            //
            // Budget rule: a reservation is released here only when its
            // worker provably holds no memory — a late report arrived
            // (the subtree finished) or the thread already finished.
            // Everything else is quarantined: the budget stays reserved
            // on this ledger and counted in the process-wide gauge until
            // a reaper thread confirms the worker's exit by joining it.
            // Never released while the worker can still report.
            while let Ok((k, _outcome)) = rx.try_recv() {
                if !released[k] {
                    ledger.release(budgets[k])?;
                    released[k] = true;
                }
            }
            let mut stragglers = Vec::new();
            for (k, handle) in handles {
                if released[k] {
                    let _ = handle.join();
                } else if handle.is_finished() {
                    let _ = handle.join();
                    ledger.release(budgets[k])?;
                    released[k] = true;
                } else {
                    stragglers.push((handle, budgets[k]));
                }
            }
            drop(rx);
            let quarantined = crate::quarantine::quarantine_threads(stragglers);
            return Err(PlatformError::ShardStalled {
                reported,
                total,
                quarantined,
            });
        }
        for (_, handle) in handles {
            let _ = handle.join();
        }
        if let Some((shard, source)) = first_err {
            return Err(PlatformError::ShardFailed {
                shard,
                source: Box::new(source),
            });
        }
        // Every shard reported success by construction of the merge loop;
        // a hole here is a coordinator bug, surfaced as a protocol error
        // rather than a panic in library code.
        let mut merged = Vec::with_capacity(reports.len());
        for (k, report) in reports.into_iter().enumerate() {
            match report {
                Some(r) => merged.push(r),
                None => {
                    return Err(PlatformError::Runtime(
                        crate::executor::RuntimeError::Protocol(format!(
                            "shard {k} left no report after a clean merge"
                        )),
                    ))
                }
            }
        }
        Ok(merged)
    }
}

/// Projects per-node allotment caps from the original tree onto a part:
/// mapped nodes take their original cap, proxy leaves get 1. Shared by
/// every shard-protocol coordinator (thread- and process-backed).
pub(crate) fn project_caps(
    caps: &AllotmentCaps,
    origin: impl Iterator<Item = Option<memtree_tree::NodeId>>,
) -> AllotmentCaps {
    AllotmentCaps::from_caps(origin.map(|g| g.map_or(1, |g| caps.cap(g))).collect())
}

/// The full outcome of a sharded run: the rolled-up [`RunReport`] plus
/// per-shard detail for differential tests and shard-scaling figures.
#[derive(Clone, Debug)]
pub struct ShardedReport {
    /// The platform-level report (what [`Platform::run`] returns).
    pub report: RunReport,
    /// Per-shard reports, in shard order.
    pub shard_reports: Vec<RunReport>,
    /// Per-shard ledger budgets granted by the split policy.
    pub budgets: Vec<u64>,
    /// The residual (merge-phase) report.
    pub residual: RunReport,
    /// Proxy leaves executed in the residual tree (one per shard) —
    /// bookkeeping tasks excluded from the rolled-up `tasks_run`.
    pub proxy_tasks: usize,
}

impl ShardedReport {
    fn roll_up(
        part: &Partition,
        budgets: Vec<u64>,
        shard_reports: Vec<RunReport>,
        residual: RunReport,
        wall_seconds: f64,
    ) -> ShardedReport {
        Self::roll_up_on(
            "sharded",
            part,
            budgets,
            shard_reports,
            residual,
            wall_seconds,
        )
    }

    /// The shard-protocol roll-up under a backend-specific platform name —
    /// shared by the thread-backed coordinator and the process-backed one
    /// ([`crate::ProcessPlatform`]), which run the same merge protocol.
    pub(crate) fn roll_up_on(
        platform: &'static str,
        part: &Partition,
        budgets: Vec<u64>,
        shard_reports: Vec<RunReport>,
        residual: RunReport,
        wall_seconds: f64,
    ) -> ShardedReport {
        // Phase 1 runs the shards concurrently, so the platform-level
        // peak is bounded by the *sum* of the shard ledgers' peaks; the
        // residual phase runs alone. The rolled-up peak is the larger of
        // the two phases — conservative (a real co-schedule can only be
        // lower) and still provably ≤ M because the budgets sum to ≤ M.
        let shard_booked: u64 = shard_reports.iter().map(|r| r.peak_booked).sum();
        let shard_actual: u64 = shard_reports.iter().map(|r| r.peak_actual).sum();
        let proxy_tasks = part.shard_count();
        let report = RunReport {
            platform,
            policy: residual.policy.clone(),
            makespan: wall_seconds,
            wall_seconds,
            peak_booked: shard_booked.max(residual.peak_booked),
            peak_actual: shard_actual.max(residual.peak_actual),
            events: shard_reports.iter().map(|r| r.events).sum::<usize>() + residual.events,
            scheduling_seconds: shard_reports
                .iter()
                .map(|r| r.scheduling_seconds)
                .sum::<f64>()
                + residual.scheduling_seconds,
            // Proxy leaves are bookkeeping, not tasks: with them removed
            // the count covers every original task exactly once (plus any
            // fictitious tasks a transforming policy adds per part).
            tasks_run: shard_reports.iter().map(|r| r.tasks_run).sum::<usize>()
                + residual.tasks_run
                - proxy_tasks,
            // This run stalled nothing (it succeeded), but earlier
            // stalled runs may still have workers winding down; the
            // snapshot tells the caller how much machine memory is
            // spoken for outside this run's budget.
            quarantined: crate::quarantine::held(),
        };
        ShardedReport {
            report,
            shard_reports,
            budgets,
            residual,
            proxy_tasks,
        }
    }

    /// Sum of the shard ledgers' booked peaks — the quantity the
    /// acceptance invariant bounds by the global budget.
    pub fn shard_peak_sum(&self) -> u64 {
        self.shard_reports.iter().map(|r| r.peak_booked).sum()
    }
}

impl Platform for ShardedPlatform {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn run_instance(
        &self,
        tree: &TaskTree,
        instance: &PolicyInstance,
    ) -> Result<RunReport, PlatformError> {
        // The instance resolved the spec against the *whole* tree; the
        // sharded backend re-derives per-part specs instead (orders and
        // any tree transform are per-part), so reconstruct the spec.
        let spec = PolicySpec {
            kind: instance.kind(),
            ao: instance.ao().kind(),
            eo: instance.eo().kind(),
            memory: instance.memory(),
            caps: instance.caps().cloned(),
        };
        Ok(self.run_detailed(tree, &spec)?.report)
    }

    fn run(&self, tree: &TaskTree, spec: &PolicySpec) -> Result<RunReport, PlatformError> {
        // No whole-tree instantiation: parts resolve their own specs.
        Ok(self.run_detailed(tree, spec)?.report)
    }
}

// Real-thread integration tests; the loom build exercises the same stall
// machinery exhaustively in tests/model/quarantine.rs instead.
#[cfg(all(test, not(memtree_loom)))]
mod tests {
    use super::*;
    use memtree_sched::HeuristicKind;

    fn min_memory(tree: &TaskTree) -> u64 {
        memtree_sched::min_feasible_memory(tree)
    }

    #[test]
    fn sharded_runs_the_whole_tree() {
        let tree = memtree_gen::synthetic::paper_tree(200, 11);
        let m = min_memory(&tree) * 8;
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
        for shards in [1, 2, 4, 8] {
            let detailed = ShardedPlatform::new(shards)
                .run_detailed(&tree, &spec)
                .unwrap();
            assert_eq!(detailed.report.tasks_run, tree.len(), "{shards} shards");
            assert!(detailed.report.peak_booked <= m, "{shards} shards");
            assert!(detailed.shard_peak_sum() <= m, "{shards} shards");
            for (r, &b) in detailed.shard_reports.iter().zip(&detailed.budgets) {
                assert!(r.peak_booked <= b, "shard ledger over its budget");
                assert!(r.peak_actual <= r.peak_booked);
            }
            assert!(detailed.residual.peak_booked <= m);
        }
    }

    /// CPU time (user + system) of the calling thread, in clock ticks.
    #[cfg(target_os = "linux")]
    fn thread_cpu_ticks() -> u64 {
        let stat = std::fs::read_to_string("/proc/thread-self/stat").expect("procfs available");
        // The comm field may contain spaces: fields 3.. start after the
        // closing paren. utime/stime are fields 14 and 15 (1-indexed).
        let rest = stat.rsplit(')').next().expect("stat has a comm field");
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let utime: u64 = fields[11].parse().expect("utime parses");
        let stime: u64 = fields[12].parse().expect("stime parses");
        utime + stime
    }

    /// The stall path must park while waiting (never busy-spin) and must
    /// quarantine the still-running workers' budgets rather than release
    /// them: pinned by the coordinator thread's CPU time staying near
    /// zero and by the `quarantined` accounting on the error.
    #[cfg(target_os = "linux")]
    #[test]
    fn stall_parks_and_quarantines_instead_of_releasing() {
        let tree = memtree_gen::synthetic::paper_tree(60, 13);
        let m = min_memory(&tree) * 8;
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
        // Every task sleeps ~1 s, so no shard reports within the 150 ms
        // watchdog: the run stalls with both workers still mid-subtree.
        let platform = ShardedPlatform::new(2)
            .with_workload(Workload::Sleep {
                nanos_per_time_unit: 1_000_000_000.0,
                max_nanos: 1_000_000_000,
            })
            .with_timeout(Duration::from_millis(150));
        let cpu_before = thread_cpu_ticks();
        let wall = Instant::now();
        let err = platform.run(&tree, &spec).unwrap_err();
        let wall = wall.elapsed();
        let cpu_ticks = thread_cpu_ticks() - cpu_before;
        let quarantined = match err {
            PlatformError::ShardStalled { quarantined, .. } => quarantined,
            other => panic!("expected a stall, got {other}"),
        };
        // Both workers were still running: their budgets must be held in
        // quarantine, not released on a grace timer.
        assert!(quarantined > 0, "stalled workers' budgets were released");
        assert!(
            wall >= Duration::from_millis(150),
            "the watchdog cannot have tripped yet: {wall:?}"
        );
        // The watchdog wait parks; a busy-spin would burn the wall time
        // as CPU (≥ 15 ticks at the usual 100 Hz). Parked waits leave
        // only setup/partition work.
        assert!(
            cpu_ticks < 10,
            "stall path burned {cpu_ticks} CPU ticks over {wall:?} wall"
        );
        // The gauge drains once the reaper confirms the workers' exits.
        let deadline = Instant::now() + Duration::from_secs(60);
        while crate::quarantine::held() > 0 {
            assert!(
                Instant::now() < deadline,
                "quarantined budgets never reclaimed"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn ledger_errors_surface_as_platform_errors() {
        // The promoted hard-error ledger (memtree_sched::BudgetLedger)
        // maps into the platform error space; accounting drift is loud
        // and distinguishable from a feasibility refusal.
        let mut ledger = BudgetLedger::new(100);
        ledger.reserve(100).unwrap();
        let err = PlatformError::from(ledger.reserve(1).unwrap_err());
        assert!(matches!(err, PlatformError::Ledger(_)), "got {err}");
        assert!(!err.is_infeasible());
        ledger.release(100).unwrap();
        let err = PlatformError::from(ledger.release(1).unwrap_err());
        assert!(err.to_string().contains("over-release"), "got {err}");
    }

    #[test]
    fn infeasible_split_is_distinguishable() {
        let tree = memtree_gen::synthetic::paper_tree(120, 5);
        // Tight bound: the per-shard minima cannot all fit.
        let spec = PolicySpec::new(HeuristicKind::MemBooking, min_memory(&tree));
        let err = ShardedPlatform::new(4).run(&tree, &spec).unwrap_err();
        assert!(err.is_infeasible(), "got {err}");
    }

    #[test]
    fn sharded_platform_satisfies_the_platform_trait() {
        let tree = memtree_gen::synthetic::paper_tree(150, 2);
        let m = min_memory(&tree) * 8;
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
        let platform: &dyn Platform = &ShardedPlatform::new(2);
        let report = platform.run(&tree, &spec).unwrap();
        assert_eq!(report.platform, "sharded");
        assert_eq!(report.tasks_run, tree.len());
    }
}
