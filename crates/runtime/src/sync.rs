//! Sync façade: `std::sync`/`std::thread` in production, `minloom` under
//! `--cfg memtree_loom` (DESIGN.md §6.13).
//!
//! The lock-free protocols this crate hand-rolls — the gang shard-claim
//! state, the quarantine gauge + reaper, the sharded worker spawn/stall
//! path — import their primitives from here instead of `std`, so the
//! model suite in `tests/model/` can run them under minloom's
//! exhaustive-interleaving scheduler with zero production overhead (the
//! non-loom path is a plain re-export, compiled away).
//!
//! Deliberately *not* façaded: `std::thread::scope` in the gang driver
//! (minloom has no scoped threads; the driver's scope is plain fork/join
//! and the protocol inside it is what the model suite exercises
//! directly), the process backend (real OS processes are outside any
//! interleaving model), and `Instant`-based deadlines (the model has no
//! clock; timed waits become scheduler choices).

/// `std::sync::atomic` subset the protocols use.
pub mod atomic {
    #[cfg(not(memtree_loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(memtree_loom)]
    pub use minloom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// `std::thread` subset the protocols use (spawn/Builder/JoinHandle).
pub mod thread {
    #[cfg(not(memtree_loom))]
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};

    #[cfg(memtree_loom)]
    pub use minloom::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
}

#[cfg(not(memtree_loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(memtree_loom)]
pub use minloom::sync::{Condvar, Mutex, MutexGuard};
