//! Per-task payloads executed by the worker threads.

use memtree_tree::{NodeId, TaskTree};

/// What a worker actually does for a task.
#[derive(Clone, Copy, Debug)]
pub enum Workload {
    /// Do nothing — pure scheduling-overhead measurement.
    Noop,
    /// Sleep `nanos_per_time_unit · t_i` nanoseconds (capped at
    /// `max_nanos`), modelling compute time without burning CPU.
    Sleep {
        /// Nanoseconds per model time unit.
        nanos_per_time_unit: f64,
        /// Hard cap per task, nanoseconds.
        max_nanos: u64,
    },
    /// Busy-spin for `nanos_per_time_unit · t_i` nanoseconds (capped) —
    /// keeps workers genuinely busy for contention tests.
    Spin {
        /// Nanoseconds per model time unit.
        nanos_per_time_unit: f64,
        /// Hard cap per task, nanoseconds.
        max_nanos: u64,
    },
    /// Allocate and touch a buffer of `bytes_per_output_unit · f_i` bytes
    /// (capped), then free it — exercises the allocator under the
    /// scheduler's memory envelope.
    AllocTouch {
        /// Bytes allocated per output-size unit.
        bytes_per_output_unit: f64,
        /// Hard cap per task, bytes.
        max_bytes: usize,
    },
    /// An IO-bound out-of-core front: `nanos_per_time_unit · t_i`
    /// nanoseconds of simulated IO waiting (capped), split into `chunks`
    /// wait points. On the thread-backed platforms each chunk is a plain
    /// sleep; on [`AsyncPlatform`](crate::AsyncPlatform) each chunk is an
    /// awaited timer with a cooperative yield between chunks
    /// ([`Workload::run_shard_async`]), so the waiting task occupies no
    /// executor thread — the regime the async backend exists for.
    IoBound {
        /// Nanoseconds of simulated IO per model time unit.
        nanos_per_time_unit: f64,
        /// Hard cap per task, nanoseconds.
        max_nanos: u64,
        /// Number of IO wait points the payload is split into (≥ 1).
        chunks: u32,
    },
    /// Fault injection for chaos tests: panic when running task `node`
    /// (an index into the executed tree), killing the worker mid-run. The
    /// executor and any sharded coordinator above it must surface a clean
    /// error instead of deadlocking.
    FailAt {
        /// Index of the task whose payload panics.
        node: u32,
    },
}

impl Workload {
    /// A fast default for tests: sleep 20 µs per time unit, max 2 ms.
    pub fn quick() -> Self {
        Workload::Sleep {
            nanos_per_time_unit: 20_000.0,
            max_nanos: 2_000_000,
        }
    }

    /// A fast IO-bound default for tests: 20 µs of simulated IO per time
    /// unit (max 2 ms), split into 4 wait points.
    pub fn quick_io() -> Self {
        Workload::IoBound {
            nanos_per_time_unit: 20_000.0,
            max_nanos: 2_000_000,
            chunks: 4,
        }
    }

    /// Runs the payload for task `i` on a single processor.
    pub fn run(&self, tree: &TaskTree, i: NodeId) {
        self.run_shard(tree, i, 0, 1);
    }

    /// Runs shard `shard` of task `i`'s payload split `of` ways — the
    /// intra-task parallelism unit executed by one gang member. Shards
    /// partition the payload evenly (each is a `1/of` slice of the sleep /
    /// spin duration or the touched buffer), so a full gang of `of`
    /// members realises the linear speedup the moldable engine predicts.
    pub fn run_shard(&self, tree: &TaskTree, i: NodeId, shard: u32, of: u32) {
        debug_assert!(shard < of, "shard index out of range");
        let of64 = of as u64;
        match *self {
            Workload::Noop => {}
            Workload::Sleep {
                nanos_per_time_unit,
                max_nanos,
            } => {
                let nanos = ((tree.time(i) * nanos_per_time_unit) as u64).min(max_nanos) / of64;
                if nanos > 0 {
                    std::thread::sleep(std::time::Duration::from_nanos(nanos));
                }
            }
            Workload::Spin {
                nanos_per_time_unit,
                max_nanos,
            } => {
                let nanos = ((tree.time(i) * nanos_per_time_unit) as u64).min(max_nanos) / of64;
                let deadline = std::time::Instant::now() + std::time::Duration::from_nanos(nanos);
                while std::time::Instant::now() < deadline {
                    std::hint::spin_loop();
                }
            }
            Workload::AllocTouch {
                bytes_per_output_unit,
                max_bytes,
            } => {
                let bytes = ((tree.output(i) as f64 * bytes_per_output_unit) as usize)
                    .clamp(1, max_bytes.max(1));
                // Each shard allocates and touches its slice of the buffer.
                let bytes = (bytes / of as usize).max(1);
                let mut buf = vec![0u8; bytes];
                // Touch one byte per page so the allocation is real.
                let mut k = 0;
                while k < buf.len() {
                    buf[k] = buf[k].wrapping_add(1);
                    k += 4096;
                }
                std::hint::black_box(&buf);
            }
            Workload::IoBound {
                nanos_per_time_unit,
                max_nanos,
                chunks,
            } => {
                // The synchronous interpretation: the same total wait as
                // Sleep, in `chunks` slices — a thread-backed platform
                // blocks a worker for the whole IO wait, which is exactly
                // the cost the async backend avoids.
                let nanos = ((tree.time(i) * nanos_per_time_unit) as u64).min(max_nanos) / of64;
                let slice = nanos / u64::from(chunks.max(1));
                if slice > 0 {
                    for _ in 0..chunks.max(1) {
                        std::thread::sleep(std::time::Duration::from_nanos(slice));
                    }
                }
            }
            Workload::FailAt { node } => {
                if i.index() as u32 == node {
                    panic!("injected workload fault at task {node}");
                }
            }
        }
    }

    /// The async interpretation of [`Workload::run_shard`], polled by the
    /// [`AsyncPlatform`](crate::AsyncPlatform) executor. Timed payloads
    /// (`Sleep`, `IoBound`) await `minitok` timers instead of blocking, so
    /// a waiting task releases its executor thread; compute-shaped
    /// payloads (`Spin`, `AllocTouch`) run inline in the poll — they are
    /// CPU work, and blocking an executor thread is their honest cost.
    pub async fn run_shard_async(&self, tree: &TaskTree, i: NodeId, shard: u32, of: u32) {
        debug_assert!(shard < of, "shard index out of range");
        match *self {
            Workload::Sleep {
                nanos_per_time_unit,
                max_nanos,
            } => {
                let nanos =
                    ((tree.time(i) * nanos_per_time_unit) as u64).min(max_nanos) / u64::from(of);
                if nanos > 0 {
                    minitok::time::sleep(std::time::Duration::from_nanos(nanos)).await;
                }
            }
            Workload::IoBound {
                nanos_per_time_unit,
                max_nanos,
                chunks,
            } => {
                let nanos =
                    ((tree.time(i) * nanos_per_time_unit) as u64).min(max_nanos) / u64::from(of);
                let chunks = chunks.max(1);
                let slice = nanos / u64::from(chunks);
                for _ in 0..chunks {
                    if slice > 0 {
                        minitok::time::sleep(std::time::Duration::from_nanos(slice)).await;
                    }
                    // The cooperative point between IO waits: hand the
                    // executor thread back even when the slice rounds to 0.
                    minitok::yield_now().await;
                }
            }
            // Noop, Spin, AllocTouch and FailAt behave exactly as in the
            // synchronous regime (FailAt panics inside the poll; the
            // executor catches it and the platform surfaces a clean error).
            _ => self.run_shard(tree, i, shard, of),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{TaskSpec, TaskTree};

    fn tree() -> TaskTree {
        TaskTree::from_parents(&[None], &[TaskSpec::new(0, 100, 2.0)]).unwrap()
    }

    #[test]
    fn sleep_respects_cap() {
        let t = tree();
        let w = Workload::Sleep {
            nanos_per_time_unit: 1e12,
            max_nanos: 1_000_000,
        };
        let start = std::time::Instant::now();
        w.run(&t, memtree_tree::NodeId(0));
        assert!(start.elapsed() < std::time::Duration::from_millis(100));
    }

    #[test]
    fn all_workloads_run() {
        let t = tree();
        for w in [
            Workload::Noop,
            Workload::quick(),
            Workload::Spin {
                nanos_per_time_unit: 10.0,
                max_nanos: 10_000,
            },
            Workload::AllocTouch {
                bytes_per_output_unit: 16.0,
                max_bytes: 1 << 16,
            },
            Workload::quick_io(),
            Workload::FailAt { node: 999 }, // fault targets another task
        ] {
            w.run(&t, memtree_tree::NodeId(0));
            for shard in 0..4 {
                w.run_shard(&t, memtree_tree::NodeId(0), shard, 4);
            }
            // The async interpretation completes for every variant too.
            minitok::block_on(w.run_shard_async(&t, memtree_tree::NodeId(0), 0, 1));
        }
    }

    #[test]
    #[should_panic(expected = "injected workload fault")]
    fn fail_at_panics_on_its_target() {
        Workload::FailAt { node: 0 }.run(&tree(), memtree_tree::NodeId(0));
    }

    #[test]
    fn shards_split_the_sleep_evenly() {
        let t = tree();
        let w = Workload::Sleep {
            nanos_per_time_unit: 1e12,
            max_nanos: 8_000_000,
        };
        // One shard of 8 sleeps ~1 ms, not the full 8 ms.
        let start = std::time::Instant::now();
        w.run_shard(&t, memtree_tree::NodeId(0), 0, 8);
        let one = start.elapsed();
        assert!(one < std::time::Duration::from_millis(6), "got {one:?}");
    }
}
