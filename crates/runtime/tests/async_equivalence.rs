// Real-thread integration tests: excluded from the `memtree_loom` model
// build, where sync primitives only work inside a minloom model.
#![cfg(not(memtree_loom))]

//! Differential tests: `AsyncPlatform` against `SimPlatform` and
//! `ThreadedPlatform`.
//!
//! The futures-backed regime must be observationally equivalent to the
//! established platforms for every `PolicySpec`: the same completion set
//! (every task of the policy's exec tree exactly once — fictitious
//! RedTree tasks included), the same policy identity, and a booking peak
//! inside the same global envelope `peak_actual ≤ peak_booked ≤ M` —
//! across kinds × p ∈ {1, 2, 4} × executor thread counts, with the
//! single-threaded executor (the IO-bound configuration) a first-class
//! cell of the matrix.
//!
//! Executor thread counts are pinned per CI job through
//! `MEMTREE_TEST_WORKERS`, exactly as the threaded and sharded suites
//! pin their worker counts.

use memtree_runtime::{
    AsyncPlatform, Platform, RuntimeConfig, SimPlatform, ThreadedPlatform, Workload,
};
use memtree_sched::{AllotmentCaps, HeuristicKind, PolicySpec};
use memtree_tree::TaskTree;

fn thread_counts() -> Vec<usize> {
    RuntimeConfig::worker_counts_from_env(&[1, 2])
}

/// The differential contract for one (tree, spec) point: the async run
/// completes the same task set as both established platforms, inside the
/// same booking envelope, for every executor thread count.
fn assert_async_equivalence(name: &str, tree: &TaskTree, spec: &PolicySpec) {
    let m = spec.memory;
    let sim = SimPlatform::new(4).run(tree, spec).unwrap();
    let thr = ThreadedPlatform::new(4).run(tree, spec).unwrap();
    assert_eq!(sim.tasks_run, thr.tasks_run, "{name}: sim vs threaded");
    for threads in thread_counts() {
        for p in [1usize, 2, 4] {
            let ctx = format!("{name} p={p} threads={threads}");
            let report = AsyncPlatform::new(p)
                .with_threads(threads)
                .run(tree, spec)
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(report.tasks_run, sim.tasks_run, "{ctx}: completion set");
            assert_eq!(report.policy, sim.policy, "{ctx}: policy identity");
            assert!(report.peak_booked <= m, "{ctx}: booked over the bound");
            assert!(
                report.peak_actual <= report.peak_booked,
                "{ctx}: actual over booked"
            );
            assert_eq!(report.platform, "async", "{ctx}");
        }
    }
}

/// Roomy bound: headroom for every kind, RedTree's transformed minimum
/// included.
fn roomy(tree: &TaskTree) -> u64 {
    memtree_sched::min_feasible_memory(tree) * 1000
}

/// Every policy kind is observationally equivalent on synthetic trees
/// across the p × executor-thread matrix.
#[test]
fn every_kind_equivalent_on_synthetic_trees() {
    for seed in 0..2 {
        let tree = memtree_gen::synthetic::paper_tree(200, 80 + seed);
        let m = roomy(&tree);
        for kind in HeuristicKind::all() {
            let spec = PolicySpec::new(kind, m);
            assert_async_equivalence(&format!("synth-{seed}-{kind}"), &tree, &spec);
        }
    }
}

/// … and on assembly trees from the multifrontal pipeline.
#[test]
fn membooking_equivalent_on_assembly_trees() {
    let corpus = memtree_multifrontal::assembly_corpus(&memtree_multifrontal::CorpusSpec::small());
    assert!(corpus.len() >= 2, "small corpus unexpectedly empty");
    for (name, tree) in corpus.iter().take(2) {
        for kind in [HeuristicKind::MemBooking, HeuristicKind::Activation] {
            let spec = PolicySpec::new(kind, roomy(tree));
            assert_async_equivalence(&format!("{name}-{kind}"), tree, &spec);
        }
    }
}

/// Moldable MemBooking gang-schedules its allotments as member futures
/// and stays equivalent.
#[test]
fn moldable_spec_equivalent_across_thread_counts() {
    let tree = memtree_gen::synthetic::paper_tree(150, 43);
    let m = roomy(&tree);
    let caps = AllotmentCaps::uniform(&tree, 4);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
    assert_async_equivalence("moldable", &tree, &spec);
}

/// At the minimum feasible bound — the tightest booking regime — the
/// async backend still completes with the exact booking peak the
/// simulator predicts for the single-worker schedule.
#[test]
fn tight_memory_single_worker_matches_sim_peak() {
    let tree = memtree_gen::synthetic::paper_tree(120, 13);
    let m = memtree_sched::min_feasible_memory(&tree);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
    let sim = SimPlatform::new(1).run(&tree, &spec).unwrap();
    let report = AsyncPlatform::new(1)
        .with_threads(1)
        .run(&tree, &spec)
        .unwrap();
    // One logical worker: completions are a deterministic sequence, so
    // the booking trajectory — hence its peak — matches exactly.
    assert_eq!(report.peak_booked, sim.peak_booked);
    assert_eq!(report.tasks_run, sim.tasks_run);
}

/// The IO-bound payload changes timing, never the contract: the
/// completion set and the booking envelope are identical to the no-op
/// payload's.
#[test]
fn io_bound_payload_preserves_the_contract() {
    let tree = memtree_gen::synthetic::paper_tree(100, 29);
    let m = roomy(&tree);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, m);
    let noop = AsyncPlatform::new(4).run(&tree, &spec).unwrap();
    let io = AsyncPlatform::new(4)
        .with_threads(1)
        .with_workload(Workload::quick_io())
        .run(&tree, &spec)
        .unwrap();
    assert_eq!(io.tasks_run, noop.tasks_run);
    assert!(io.peak_booked <= m);
    assert!(io.peak_actual <= io.peak_booked);
}
