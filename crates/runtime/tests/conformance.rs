// Real-thread integration tests: excluded from the `memtree_loom` model
// build, where sync primitives only work inside a minloom model.
#![cfg(not(memtree_loom))]

//! The shared platform invariant suite, stamped out per platform by
//! `platform_conformance!` — one contract, three backends (and one
//! instantiation line per future backend).
//!
//! This replaces the per-platform invariant assertions that used to be
//! duplicated across the sim-vs-threaded equivalence tests: the
//! cross-platform *comparisons* stay in `tests/runtime_vs_sim.rs` and
//! `tests/sharded_equivalence.rs`; the per-platform *invariants* live
//! here, once.

memtree_runtime::platform_conformance!(sim, memtree_runtime::SimPlatform::new(4));

memtree_runtime::platform_conformance!(threaded, memtree_runtime::ThreadedPlatform::new(4));

memtree_runtime::platform_conformance!(
    sharded_x2,
    memtree_runtime::ShardedPlatform::new(2).with_workers_per_shard(2)
);

memtree_runtime::platform_conformance!(sharded_x4, memtree_runtime::ShardedPlatform::new(4));

memtree_runtime::platform_conformance!(async_x4, memtree_runtime::AsyncPlatform::new(4));

// Process backend: the shard protocol over real worker processes. The
// suite runs completely unmodified — CARGO_BIN_EXE pins the worker
// binary Cargo built alongside this test.
memtree_runtime::platform_conformance!(
    process_x2,
    memtree_runtime::ProcessPlatform::new(2)
        .with_workers_per_shard(2)
        .with_worker_bin(env!("CARGO_BIN_EXE_memtree-shard-worker"))
);

memtree_runtime::platform_conformance!(
    process_x4,
    memtree_runtime::ProcessPlatform::new(4)
        .with_worker_bin(env!("CARGO_BIN_EXE_memtree-shard-worker"))
);

// The single-threaded executor flavour: p = 4 logical workers polled by
// one OS thread — the IO-bound configuration must satisfy the exact same
// contract.
memtree_runtime::platform_conformance!(
    async_single_thread,
    memtree_runtime::AsyncPlatform::new(4).with_threads(1)
);

// Malleable flavours: the same backends with the feedback rescheduler
// resizing gangs mid-run. Grow/shrink must not be observable in the
// contract — every invariant (completion, occupancy, booking envelope)
// holds unchanged.
memtree_runtime::platform_conformance!(
    sim_rescheduled,
    memtree_runtime::SimPlatform::new(4)
        .with_rescheduler(memtree_sched::ReschedulePolicy::default())
);

memtree_runtime::platform_conformance!(
    threaded_rescheduled,
    memtree_runtime::ThreadedPlatform::new(4)
        .with_rescheduler(memtree_sched::ReschedulePolicy::default())
);

memtree_runtime::platform_conformance!(
    async_rescheduled,
    memtree_runtime::AsyncPlatform::new(4)
        .with_rescheduler(memtree_sched::ReschedulePolicy::default())
);
