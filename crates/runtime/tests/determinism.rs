// Real-thread integration tests: excluded from the `memtree_loom` model
// build, where sync primitives only work inside a minloom model.
#![cfg(not(memtree_loom))]

//! Determinism regression suite for the hot-path rewrite (DESIGN.md
//! §6.11): schedule order and `RunReport` must stay **byte-identical**
//! to the original heap-based implementation.
//!
//! The golden hashes below were captured from the pre-rewrite code
//! (`BinaryHeap` ready sets in Activation/MemBooking, sorted-`Vec`
//! running set in the gang driver). Every cell folds the full per-task
//! trace — start/finish times, processor, start/finish epochs — plus
//! the deterministic `RunReport` fields into one FNV-1a digest per
//! corpus tree. Any drift in pop order, batch ordering or the booking
//! ledgers changes the digest.
//!
//! Regenerate (ONLY when a schedule change is intended and justified):
//!
//! ```text
//! cargo test -p memtree_runtime --test determinism -- --ignored --nocapture print_goldens
//! ```

use memtree_runtime::{Platform as _, SimPlatform};
use memtree_sched::{AllotmentCaps, HeuristicKind, PolicySpec};
use memtree_sim::{simulate, SimConfig};
use memtree_tree::{Fnv64, TaskSpec, TaskTree};

/// The corpus: the `platform_conformance!` trees (paper synthetic family)
/// plus named shapes stressing each ready-set regime — deep chain (serial
/// pops), caterpillar (bursts of leaves), random recursive (mixed).
fn corpus() -> Vec<(&'static str, TaskTree)> {
    vec![
        ("paper-150-17", memtree_gen::synthetic::paper_tree(150, 17)),
        ("paper-120-23", memtree_gen::synthetic::paper_tree(120, 23)),
        ("paper-300-5", memtree_gen::synthetic::paper_tree(300, 5)),
        (
            "chain-64",
            memtree_gen::shapes::chain(64, TaskSpec::new(2, 5, 1.0)),
        ),
        (
            "caterpillar-20x3",
            memtree_gen::shapes::caterpillar(
                20,
                3,
                TaskSpec::new(1, 4, 2.0),
                TaskSpec::new(0, 3, 1.0),
            ),
        ),
        (
            "random-400-9",
            memtree_gen::shapes::random_recursive(400, TaskSpec::new(1, 2, 1.0), 9),
        ),
    ]
}

/// Captured from the pre-rewrite implementation; same order as
/// [`corpus`].
const GOLDENS: &[(&str, u64)] = &[
    ("paper-150-17", 0xc1b3393ce5c3a482),
    ("paper-120-23", 0x2e72596b760f9cdd),
    ("paper-300-5", 0xa02b1b5c413b688d),
    ("chain-64", 0x020b72a3f97c4b11),
    ("caterpillar-20x3", 0x7a5da09f0835ff63),
    ("random-400-9", 0x6c296950a0123077),
];

fn fold_report(h: &mut Fnv64, label: &str, report: &memtree_runtime::RunReport) {
    h.write_str(label);
    h.write_str(&report.policy);
    h.write_f64(report.makespan);
    h.write_u64(report.peak_booked);
    h.write_u64(report.peak_actual);
    h.write_u64(report.events as u64);
    h.write_u64(report.tasks_run as u64);
}

/// One digest per tree: every (kind × memory × processors) cell's full
/// sim trace plus the platform-level `RunReport`, moldable caps included.
fn tree_digest(tree: &TaskTree) -> u64 {
    let mut h = Fnv64::with_tag("memtree-determinism-v1");
    for kind in HeuristicKind::all() {
        let tight = PolicySpec::new(kind, 0).min_feasible(tree);
        for (mem_label, memory) in [("tight", tight), ("roomy", tight.saturating_mul(1000))] {
            for p in [1usize, 4] {
                let label = format!("{kind}/{mem_label}/p{p}");
                // Platform-level report (the public contract).
                let spec = PolicySpec::new(kind, memory);
                let report = SimPlatform::new(p)
                    .run(tree, &spec)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                fold_report(&mut h, &label, &report);

                // Trace-level schedule order (start/finish instants,
                // processor assignment, causal epochs — the bytes).
                let instance = spec.instantiate(tree).unwrap();
                let exec = instance.exec_tree(tree);
                let sched = instance.scheduler(tree).unwrap();
                let trace = simulate(exec, SimConfig::new(p, memory), sched)
                    .unwrap_or_else(|e| panic!("{label} (trace): {e}"));
                h.write_u64(trace.records.len() as u64);
                for r in &trace.records {
                    h.write_f64(r.start);
                    h.write_f64(r.finish);
                    h.write_u32(r.processor);
                    h.write_u64(r.start_epoch);
                    h.write_u64(r.finish_epoch);
                }
                h.write_f64(trace.makespan);
                h.write_u64(trace.peak_booked);
                h.write_u64(trace.peak_actual);
                h.write_u64(trace.events as u64);
            }
        }
    }
    // Moldable caps ride the gang loop proper (allotments > 1).
    let tight = PolicySpec::new(HeuristicKind::MemBooking, 0).min_feasible(tree);
    for caps in [2u32, 4] {
        let spec = PolicySpec::new(HeuristicKind::MemBooking, tight.saturating_mul(1000))
            .with_caps(AllotmentCaps::uniform(tree, caps));
        let report = SimPlatform::new(4)
            .run(tree, &spec)
            .unwrap_or_else(|e| panic!("caps{caps}: {e}"));
        fold_report(&mut h, &format!("moldable-caps{caps}"), &report);
    }
    h.finish()
}

#[test]
fn schedules_match_pre_rewrite_goldens() {
    for ((name, tree), &(gname, golden)) in corpus().iter().zip(GOLDENS) {
        assert_eq!(*name, gname, "corpus/golden tables out of sync");
        let got = tree_digest(tree);
        assert_eq!(
            got, golden,
            "{name}: schedule digest {got:#018x} != golden {golden:#018x} \
             — the ready-set/driver rewrite changed schedule order"
        );
    }
}

/// Run-twice determinism, independent of the pinned constants.
#[test]
fn digests_are_stable_across_runs() {
    let tree = memtree_gen::synthetic::paper_tree(150, 17);
    assert_eq!(tree_digest(&tree), tree_digest(&tree));
}

/// 10⁵-node smoke at scale — in the **debug** profile, where a per-event
/// O(R) shift or a superlinear booking walk turns seconds into hours.
/// Deliberately not a digest: just "the big runs complete, run the whole
/// tree, and a rerun schedules identically".
#[test]
fn hundred_thousand_nodes_complete_under_debug() {
    for shape in [
        memtree_gen::LargeShape::Chain,
        memtree_gen::LargeShape::Caterpillar { legs: 4 },
        memtree_gen::LargeShape::Random,
    ] {
        let tree = memtree_gen::large::build(shape, 100_000, 42);
        let spec = PolicySpec::new(HeuristicKind::Activation, 0);
        let memory = spec.min_feasible(&tree).saturating_mul(2);
        let spec = spec.with_memory(memory);
        let run = || {
            let report = SimPlatform::new(4)
                .run(&tree, &spec)
                .unwrap_or_else(|e| panic!("{}: {e}", shape.label()));
            assert_eq!(report.tasks_run, tree.len());
            let mut h = Fnv64::with_tag("memtree-determinism-large");
            fold_report(&mut h, shape.label(), &report);
            h.finish()
        };
        assert_eq!(run(), run(), "{}: rerun drifted", shape.label());
    }
}

#[test]
#[ignore = "golden regeneration helper, not a check"]
fn print_goldens() {
    for (name, tree) in corpus() {
        println!("    (\"{name}\", {:#018x}),", tree_digest(&tree));
    }
}
