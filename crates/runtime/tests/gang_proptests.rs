// Real-thread integration tests: excluded from the `memtree_loom` model
// build, where sync primitives only work inside a minloom model.
#![cfg(not(memtree_loom))]

//! Property tests for the gang pool: whatever legal gang pattern a
//! moldable policy produces on whatever tree, the threaded executor
//! (a) never runs more concurrent gang members than it has workers —
//! the sum of live allotments stays within `p`, measured by the workers
//! themselves, not the driver's ledger; (b) releases every launched gang —
//! the run finishes the whole tree instead of deadlocking whenever the
//! largest allotment fits the machine; and (c) matches the paper policy's
//! booking envelope when the policy is MoldableMemBooking.

use memtree_order::mem_postorder;
use memtree_runtime::{execute_moldable, execute_moldable_with, RuntimeConfig, Workload};
use memtree_sched::{AllotmentCaps, MoldableMemBooking};
use memtree_sim::{
    simulate_moldable_with, LiveStats, MoldableScheduler, RescheduleAction, Rescheduler,
    SpeedupModel,
};
use memtree_tree::{NodeId, TaskSpec, TaskTree};
use proptest::prelude::*;

/// Worker counts the properties draw from; the CI matrix narrows this to
/// one count per job via `MEMTREE_TEST_WORKERS`.
fn worker_pool() -> Vec<usize> {
    RuntimeConfig::worker_counts_from_env(&[1, 2, 3, 4])
}

fn arb_workers() -> impl Strategy<Value = usize> {
    (0usize..worker_pool().len()).prop_map(|k| worker_pool()[k])
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_n)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            let specs = proptest::collection::vec((0u64..20, 0u64..20, 0u32..5), n);
            (parents, specs)
        })
        .prop_map(|(parents, specs)| {
            let mut full: Vec<Option<usize>> = vec![None];
            full.extend(parents.into_iter().map(Some));
            let specs: Vec<TaskSpec> = specs
                .into_iter()
                .map(|(e, f, t)| TaskSpec::new(e, f, t as f64))
                .collect();
            TaskTree::from_parents(&full, &specs).unwrap()
        })
}

/// A randomized-but-legal moldable policy: books the whole bound, starts a
/// pseudo-random subset of the available tasks with pseudo-random
/// allotments in `1..=cap` (never claiming more than the idle budget, and
/// never stalling with nothing running).
struct ChaosGang<'a> {
    tree: &'a TaskTree,
    bound: u64,
    cap: usize,
    rng_state: u64,
    ready: Vec<NodeId>,
    remaining_children: Vec<usize>,
    running: usize,
}

impl<'a> ChaosGang<'a> {
    fn new(tree: &'a TaskTree, bound: u64, cap: usize, seed: u64) -> Self {
        ChaosGang {
            tree,
            bound,
            cap: cap.max(1),
            rng_state: seed | 1,
            ready: tree.leaves().collect(),
            remaining_children: tree.nodes().map(|i| tree.degree(i)).collect(),
            running: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl MoldableScheduler for ChaosGang<'_> {
    fn name(&self) -> &str {
        "chaos-gang"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        self.running -= finished.len();
        for &j in finished {
            if let Some(p) = self.tree.parent(j) {
                self.remaining_children[p.index()] -= 1;
                if self.remaining_children[p.index()] == 0 {
                    self.ready.push(p);
                }
            }
        }
        if !self.ready.is_empty() {
            let k = (self.next_rand() as usize) % self.ready.len();
            self.ready.rotate_left(k);
        }
        let mut budget = idle;
        while budget > 0 && !self.ready.is_empty() {
            // Randomly stop early — but never leave the machine idle with
            // nothing running (that would be a stall, not a bug).
            if self.running + to_start.len() > 0 && self.next_rand().is_multiple_of(3) {
                break;
            }
            let i = self.ready.pop().expect("nonempty");
            let q = 1 + (self.next_rand() as usize) % self.cap.min(budget);
            to_start.push((i, q));
            budget -= q;
        }
        self.running += to_start.len();
    }

    fn booked(&self) -> u64 {
        self.bound
    }
}

/// A randomized-but-legal rescheduler: every tick it may shrink any
/// running gang (never to zero) or grow it out of the idle pool, with the
/// same sequential bookkeeping the driver applies — maximal grow/shrink
/// churn while staying inside the contract.
struct ChaosRescheduler {
    rng_state: u64,
}

impl ChaosRescheduler {
    fn new(seed: u64) -> Self {
        ChaosRescheduler {
            rng_state: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Rescheduler for ChaosRescheduler {
    fn tick(&mut self, stats: &LiveStats, actions: &mut Vec<RescheduleAction>) {
        let mut idle = stats.idle;
        let mut cur: Vec<(NodeId, usize)> = stats
            .gangs
            .iter()
            .map(|g| (g.node, g.allotment as usize))
            .collect();
        // A couple of passes so a gang can shrink and another grow into
        // the freed processors within one tick.
        for _ in 0..2 {
            for slot in cur.iter_mut() {
                let (node, allot) = *slot;
                match self.next_rand() % 4 {
                    0 if allot > 1 => {
                        let release = 1 + (self.next_rand() as usize) % (allot - 1);
                        actions.push(RescheduleAction::Shrink { node, release });
                        slot.1 -= release;
                        idle += release;
                    }
                    1 if idle > 0 => {
                        let extra = 1 + (self.next_rand() as usize) % idle;
                        actions.push(RescheduleAction::Grow { node, extra });
                        slot.1 += extra;
                        idle -= extra;
                    }
                    _ => {}
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary legal gang patterns: the pool never runs more concurrent
    /// members than workers, and every gang is released — the tree always
    /// finishes (allotments are capped at the idle budget ≤ p).
    #[test]
    fn chaos_gangs_complete_without_oversubscription(
        tree in arb_tree(40),
        seed in 1u64..500,
        cap in 1usize..5,
        p in arb_workers(),
    ) {
        let bound: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let report = execute_moldable(
            &tree,
            RuntimeConfig { workers: p, memory: bound },
            ChaosGang::new(&tree, bound, cap, seed),
            Workload::Noop,
        )
        .unwrap();
        // Every launched gang was released: the whole tree completed.
        prop_assert_eq!(report.tasks_run, tree.len());
        // Live allotments never exceeded the worker count, as measured by
        // the workers' own occupancy counter.
        prop_assert!(
            report.peak_busy <= p,
            "{} members busy on {} workers", report.peak_busy, p
        );
        prop_assert!(report.peak_busy >= 1);
    }

    /// The paper policy under gangs: MoldableMemBooking with any uniform
    /// cap ≤ p finishes at the minimum feasible memory (Theorem 1 carries
    /// over — allotments never change the completion history's legality),
    /// inside the booking envelope, without oversubscribing the pool.
    #[test]
    fn moldable_membooking_completes_at_minimum_memory(
        tree in arb_tree(40),
        cap in 1u32..5,
        p in arb_workers(),
    ) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        // "No deadlock when max allotment ≤ p".
        let cap = cap.min(p as u32);
        let caps = AllotmentCaps::uniform(&tree, cap);
        prop_assert!(caps.max_cap() <= p as u32);
        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let report = execute_moldable(
            &tree,
            RuntimeConfig { workers: p, memory: m },
            sched,
            Workload::Noop,
        )
        .unwrap();
        prop_assert_eq!(report.tasks_run, tree.len());
        prop_assert!(report.peak_busy <= p);
        prop_assert!(report.peak_booked <= m);
        prop_assert!(report.peak_actual <= report.peak_booked);
    }

    /// Time-scaled caps (the sqrt-of-time heuristic) behave identically:
    /// complete, in-envelope, no oversubscription.
    #[test]
    fn sqrt_caps_complete_threaded(
        tree in arb_tree(30),
        p in arb_workers(),
    ) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let caps = AllotmentCaps::sqrt_of_time(&tree, p as u32);
        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let report = execute_moldable(
            &tree,
            RuntimeConfig { workers: p, memory: m },
            sched,
            Workload::Noop,
        )
        .unwrap();
        prop_assert_eq!(report.tasks_run, tree.len());
        prop_assert!(report.peak_busy <= p);
    }

    /// Mid-run grow/shrink under maximal churn: a chaos policy crossed with
    /// a chaos rescheduler still finishes every tree, never exceeds `p`
    /// members of simultaneous occupancy (workers' own counter, so members
    /// joining via Grow and retiring via Shrink are neither lost nor
    /// double-counted in `busy`), and stays inside the booking envelope.
    #[test]
    fn chaos_reschedule_completes_without_oversubscription(
        tree in arb_tree(30),
        seed in 1u64..500,
        cap in 1usize..5,
        p in arb_workers(),
    ) {
        let bound: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let mut chaos = ChaosRescheduler::new(seed.wrapping_mul(0x9E3779B97F4A7C15));
        let report = execute_moldable_with(
            &tree,
            RuntimeConfig { workers: p, memory: bound },
            ChaosGang::new(&tree, bound, cap, seed),
            Workload::Noop,
            Some(&mut chaos),
        )
        .unwrap();
        prop_assert_eq!(report.tasks_run, tree.len());
        prop_assert!(
            report.peak_busy <= p,
            "{} members busy on {} workers", report.peak_busy, p
        );
        prop_assert!(report.peak_busy >= 1);
        prop_assert!(report.peak_booked <= bound);
        prop_assert!(report.peak_actual <= report.peak_booked);
    }

    /// The same churn through the simulator: the resulting malleable trace
    /// replays cleanly (work conservation per allotment segment, precedence,
    /// booking), and a sweep over the replayed trace's allotment segments
    /// never exceeds the driver's `peak_busy` ledger — the ledger bounds
    /// what actually ran (it can only exceed the sweep by pre-resize
    /// transients at zero-width segments; the deterministic rescheduler
    /// tests pin exact equality on well-separated traces).
    #[test]
    fn chaos_reschedule_sim_trace_replays_exactly(
        tree in arb_tree(30),
        seed in 1u64..500,
        cap in 1u32..5,
        p in arb_workers(),
    ) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let caps = AllotmentCaps::uniform(&tree, cap.min(p as u32));
        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let mut chaos = ChaosRescheduler::new(seed);
        let trace = simulate_moldable_with(
            &tree,
            p,
            m,
            SpeedupModel::Linear,
            sched,
            Some(&mut chaos),
        )
        .unwrap();
        trace.validate(&tree, SpeedupModel::Linear).unwrap();
        prop_assert!(trace.peak_busy <= p);
        prop_assert!(trace.occupancy_peak() <= trace.peak_busy);
        prop_assert!(trace.peak_booked <= m);
        prop_assert!(trace.peak_actual <= trace.peak_booked);
    }
}
