//! Property tests for the gang pool: whatever legal gang pattern a
//! moldable policy produces on whatever tree, the threaded executor
//! (a) never runs more concurrent gang members than it has workers —
//! the sum of live allotments stays within `p`, measured by the workers
//! themselves, not the driver's ledger; (b) releases every launched gang —
//! the run finishes the whole tree instead of deadlocking whenever the
//! largest allotment fits the machine; and (c) matches the paper policy's
//! booking envelope when the policy is MoldableMemBooking.

use memtree_order::mem_postorder;
use memtree_runtime::{execute_moldable, RuntimeConfig, Workload};
use memtree_sched::{AllotmentCaps, MoldableMemBooking};
use memtree_sim::MoldableScheduler;
use memtree_tree::{NodeId, TaskSpec, TaskTree};
use proptest::prelude::*;

/// Worker counts the properties draw from; the CI matrix narrows this to
/// one count per job via `MEMTREE_TEST_WORKERS`.
fn worker_pool() -> Vec<usize> {
    RuntimeConfig::worker_counts_from_env(&[1, 2, 3, 4])
}

fn arb_workers() -> impl Strategy<Value = usize> {
    (0usize..worker_pool().len()).prop_map(|k| worker_pool()[k])
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_n)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            let specs = proptest::collection::vec((0u64..20, 0u64..20, 0u32..5), n);
            (parents, specs)
        })
        .prop_map(|(parents, specs)| {
            let mut full: Vec<Option<usize>> = vec![None];
            full.extend(parents.into_iter().map(Some));
            let specs: Vec<TaskSpec> = specs
                .into_iter()
                .map(|(e, f, t)| TaskSpec::new(e, f, t as f64))
                .collect();
            TaskTree::from_parents(&full, &specs).unwrap()
        })
}

/// A randomized-but-legal moldable policy: books the whole bound, starts a
/// pseudo-random subset of the available tasks with pseudo-random
/// allotments in `1..=cap` (never claiming more than the idle budget, and
/// never stalling with nothing running).
struct ChaosGang<'a> {
    tree: &'a TaskTree,
    bound: u64,
    cap: usize,
    rng_state: u64,
    ready: Vec<NodeId>,
    remaining_children: Vec<usize>,
    running: usize,
}

impl<'a> ChaosGang<'a> {
    fn new(tree: &'a TaskTree, bound: u64, cap: usize, seed: u64) -> Self {
        ChaosGang {
            tree,
            bound,
            cap: cap.max(1),
            rng_state: seed | 1,
            ready: tree.leaves().collect(),
            remaining_children: tree.nodes().map(|i| tree.degree(i)).collect(),
            running: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl MoldableScheduler for ChaosGang<'_> {
    fn name(&self) -> &str {
        "chaos-gang"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        self.running -= finished.len();
        for &j in finished {
            if let Some(p) = self.tree.parent(j) {
                self.remaining_children[p.index()] -= 1;
                if self.remaining_children[p.index()] == 0 {
                    self.ready.push(p);
                }
            }
        }
        if !self.ready.is_empty() {
            let k = (self.next_rand() as usize) % self.ready.len();
            self.ready.rotate_left(k);
        }
        let mut budget = idle;
        while budget > 0 && !self.ready.is_empty() {
            // Randomly stop early — but never leave the machine idle with
            // nothing running (that would be a stall, not a bug).
            if self.running + to_start.len() > 0 && self.next_rand().is_multiple_of(3) {
                break;
            }
            let i = self.ready.pop().expect("nonempty");
            let q = 1 + (self.next_rand() as usize) % self.cap.min(budget);
            to_start.push((i, q));
            budget -= q;
        }
        self.running += to_start.len();
    }

    fn booked(&self) -> u64 {
        self.bound
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary legal gang patterns: the pool never runs more concurrent
    /// members than workers, and every gang is released — the tree always
    /// finishes (allotments are capped at the idle budget ≤ p).
    #[test]
    fn chaos_gangs_complete_without_oversubscription(
        tree in arb_tree(40),
        seed in 1u64..500,
        cap in 1usize..5,
        p in arb_workers(),
    ) {
        let bound: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let report = execute_moldable(
            &tree,
            RuntimeConfig { workers: p, memory: bound },
            ChaosGang::new(&tree, bound, cap, seed),
            Workload::Noop,
        )
        .unwrap();
        // Every launched gang was released: the whole tree completed.
        prop_assert_eq!(report.tasks_run, tree.len());
        // Live allotments never exceeded the worker count, as measured by
        // the workers' own occupancy counter.
        prop_assert!(
            report.peak_busy <= p,
            "{} members busy on {} workers", report.peak_busy, p
        );
        prop_assert!(report.peak_busy >= 1);
    }

    /// The paper policy under gangs: MoldableMemBooking with any uniform
    /// cap ≤ p finishes at the minimum feasible memory (Theorem 1 carries
    /// over — allotments never change the completion history's legality),
    /// inside the booking envelope, without oversubscribing the pool.
    #[test]
    fn moldable_membooking_completes_at_minimum_memory(
        tree in arb_tree(40),
        cap in 1u32..5,
        p in arb_workers(),
    ) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        // "No deadlock when max allotment ≤ p".
        let cap = cap.min(p as u32);
        let caps = AllotmentCaps::uniform(&tree, cap);
        prop_assert!(caps.max_cap() <= p as u32);
        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let report = execute_moldable(
            &tree,
            RuntimeConfig { workers: p, memory: m },
            sched,
            Workload::Noop,
        )
        .unwrap();
        prop_assert_eq!(report.tasks_run, tree.len());
        prop_assert!(report.peak_busy <= p);
        prop_assert!(report.peak_booked <= m);
        prop_assert!(report.peak_actual <= report.peak_booked);
    }

    /// Time-scaled caps (the sqrt-of-time heuristic) behave identically:
    /// complete, in-envelope, no oversubscription.
    #[test]
    fn sqrt_caps_complete_threaded(
        tree in arb_tree(30),
        p in arb_workers(),
    ) {
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        let caps = AllotmentCaps::sqrt_of_time(&tree, p as u32);
        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let report = execute_moldable(
            &tree,
            RuntimeConfig { workers: p, memory: m },
            sched,
            Workload::Noop,
        )
        .unwrap();
        prop_assert_eq!(report.tasks_run, tree.len());
        prop_assert!(report.peak_busy <= p);
    }
}
