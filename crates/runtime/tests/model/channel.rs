//! Vendored crossbeam channel models: no message is lost or duplicated
//! across concurrent senders, a blocked receiver always observes a
//! disconnect (no lost shutdown wakeup), and a timed receive never
//! hangs — the properties the sharded stall watchdog rides on.

use crossbeam::channel::{unbounded, RecvTimeoutError};
use minloom::{thread, Config};

/// Two concurrent senders, one receiver: both messages arrive, neither
/// is duplicated, and after both senders hang up the receiver sees the
/// disconnect rather than blocking forever.
#[test]
fn mpmc_no_lost_or_duplicated_message() {
    minloom::model_with(Config::with_preemption_bound(2), || {
        let (tx, rx) = unbounded::<u32>();
        let senders: Vec<_> = [1u32, 2u32]
            .into_iter()
            .map(|msg| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(msg).expect("receiver alive"))
            })
            .collect();
        drop(tx);
        let mut got = [rx.recv().expect("first"), rx.recv().expect("second")];
        got.sort_unstable();
        assert_eq!(got, [1, 2], "every message exactly once");
        for s in senders {
            s.join().expect("sender panicked");
        }
        // Both senders are gone and the queue is drained: a blocked recv
        // must wake up with the disconnect error, not deadlock.
        assert!(rx.recv().is_err(), "disconnect observed");
    });
}

/// `recv_timeout` under the model: the scheduler explores both the
/// timeout firing and the message arriving first; neither path hangs,
/// and a timeout never swallows an already-delivered message.
#[test]
fn recv_timeout_never_hangs_or_drops() {
    minloom::model_with(Config::default(), || {
        let (tx, rx) = unbounded::<u32>();
        let sender = thread::spawn(move || {
            tx.send(9).expect("receiver alive");
        });
        let mut delivered = false;
        // At most two timed waits, then a final blocking recv: bounded
        // work on every explored schedule (an unbounded retry loop would
        // give the DFS an infinite schedule space).
        for _ in 0..2 {
            // A huge duration so the wall-clock deadline never expires for
            // real: whether the timeout "fires" is purely the scheduler's
            // choice, keeping every schedule deterministic and replayable.
            match rx.recv_timeout(std::time::Duration::from_secs(3600)) {
                Ok(v) => {
                    assert_eq!(v, 9);
                    delivered = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("sender cannot be gone with its message undelivered")
                }
            }
        }
        if !delivered {
            assert_eq!(rx.recv(), Ok(9), "message survives the timeouts");
        }
        sender.join().expect("sender panicked");
    });
}
