//! Gang member-ledger models: every payload shard runs exactly once,
//! exactly one completion report per gang, the retire CAS floor, and the
//! grow-after-completion latch. Mirrors the worker protocol in
//! `executor.rs` (`try_retire` → `claim` → payload → `finish_shard`,
//! then `member_exit` for non-retired members) with the payload replaced
//! by a per-shard run counter.

use memtree_runtime::executor::GangState;
use minloom::sync::atomic::{AtomicUsize, Ordering};
use minloom::sync::Arc;
use minloom::{thread, Config};

/// One gang member's whole life, as in the executor's worker loop.
/// Returns `(retired, reported)`.
fn member(gang: &GangState, shard_runs: &[AtomicUsize]) -> (bool, bool) {
    loop {
        if gang.try_retire() {
            return (true, false);
        }
        let Some(shard) = gang.claim() else { break };
        // The payload: visible, countable effect per shard.
        shard_runs[shard as usize].fetch_add(1, Ordering::Relaxed);
        gang.finish_shard();
    }
    let reported = gang.member_exit();
    if reported {
        // The invariant the executor's done-channel send rides on, and it
        // must hold HERE, on the reporter thread, at report time: the
        // exit chain's AcqRel decrements are the only edges carrying the
        // other members' finish_shard writes to the reporter. (Asserting
        // this after join() on the driver thread would prove nothing —
        // joins synchronize everything.) The relaxed-exit teeth check
        // breaks exactly this read.
        let (done, total) = gang.progress();
        assert_eq!(
            done, total,
            "reporter must observe the whole payload finished"
        );
    }
    (false, reported)
}

fn check_all_shards_ran_once(shard_runs: &[AtomicUsize]) {
    for (s, runs) in shard_runs.iter().enumerate() {
        assert_eq!(
            runs.load(Ordering::Relaxed),
            1,
            "shard {s} must run exactly once"
        );
    }
}

/// 2 members × 3 shards, no resizing: every shard claimed and executed
/// exactly once, exactly one member reports, and the reporter observes
/// the whole payload finished (the invariant the relaxed-exit mutation
/// breaks: its Relaxed decrement lets the reporter read a stale
/// `shards_done`).
#[test]
fn claim_complete_exhaustive() {
    let iterations = minloom::model_with(Config::with_preemption_bound(2), || {
        let gang = Arc::new(GangState::new(2, 3));
        let shard_runs: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        let members: Vec<_> = (0..2)
            .map(|_| {
                let gang = gang.clone();
                let shard_runs = shard_runs.clone();
                thread::spawn(move || member(&gang, &shard_runs[..]))
            })
            .collect();
        let mut reports = 0;
        for m in members {
            let (retired, reported) = m.join().expect("member panicked");
            assert!(!retired, "nobody retires from an unshrunk gang");
            reports += usize::from(reported);
        }
        check_all_shards_ran_once(&shard_runs[..]);
        assert_eq!(reports, 1, "exactly one completion report");
        // The last member out must have seen the payload complete — this
        // is what the reporter's caller (done_tx.send) relies on.
        let (done, total) = gang.progress();
        assert_eq!((done, total), (3, 3), "reporter left unfinished shards");
    });
    assert!(iterations > 1, "model explored more than one schedule");
}

/// 2 members × 3 shards with a concurrent shrink to 1: at most one
/// member retires (the CAS floor keeps `active ≥ max(target, 1)`), the
/// payload still completes exactly once, and exactly one report is made.
/// The `memtree_loom_mutate_cas_floor` teeth check replaces the CAS with
/// a blind decrement, letting both members retire off the same stale
/// read — this test must then see unfinished shards or a missing report.
#[test]
fn shrink_retires_exact_surplus() {
    minloom::model_with(Config::with_preemption_bound(2), || {
        let gang = Arc::new(GangState::new(2, 3));
        let shard_runs: Arc<[AtomicUsize; 3]> = Arc::new(Default::default());
        let members: Vec<_> = (0..2)
            .map(|_| {
                let gang = gang.clone();
                let shard_runs = shard_runs.clone();
                thread::spawn(move || member(&gang, &shard_runs[..]))
            })
            .collect();
        // Driver thread: shrink the entitlement to 1 mid-flight.
        gang.release(1);
        let mut retired = 0;
        let mut reports = 0;
        for m in members {
            let (r, rep) = m.join().expect("member panicked");
            retired += usize::from(r);
            reports += usize::from(rep);
        }
        assert!(retired <= 1, "only the surplus may retire");
        check_all_shards_ran_once(&shard_runs[..]);
        assert_eq!(reports, 1, "exactly one completion report");
        let (done, total) = gang.progress();
        assert_eq!((done, total), (3, 3), "reporter left unfinished shards");
    });
}

/// A grow landing after the final shard: the sole member may drain the
/// gang to zero and report before the admitted member even starts; the
/// late member re-raises `active`, drains it again, and must NOT report
/// a second time — the `reported` latch is the only thing stopping it.
#[test]
fn grow_after_final_shard_reports_once() {
    minloom::model_with(Config::with_preemption_bound(2), || {
        let gang = Arc::new(GangState::new(1, 1));
        let shard_runs: Arc<[AtomicUsize; 1]> = Arc::new(Default::default());
        let first = {
            let gang = gang.clone();
            let shard_runs = shard_runs.clone();
            thread::spawn(move || member(&gang, &shard_runs[..]))
        };
        // Driver: admit before queueing the member message, as
        // GangThreadedBackend::resize does — racing the first member's
        // completion.
        gang.admit(1);
        let second = {
            let gang = gang.clone();
            let shard_runs = shard_runs.clone();
            thread::spawn(move || member(&gang, &shard_runs[..]))
        };
        let mut reports = 0;
        for m in [first, second] {
            let (retired, reported) = m.join().expect("member panicked");
            assert!(!retired, "target only ever grows here");
            reports += usize::from(reported);
        }
        check_all_shards_ran_once(&shard_runs[..]);
        assert_eq!(reports, 1, "the reported latch must stop the second drain");
    });
}
