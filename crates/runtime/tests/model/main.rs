//! Exhaustive-interleaving model suite (DESIGN.md §6.13): drives the
//! gang member ledger, the quarantine gauge, the minitok wake protocol,
//! and the vendored channel under minloom's DFS scheduler.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS='--cfg memtree_loom' cargo test -p memtree_runtime --test model
//! ```
//!
//! Without the cfg this target compiles to nothing (and the ordinary
//! integration tests compile to nothing *with* it — the two builds are
//! disjoint worlds, because the façades swap `std::sync` for minloom).
//!
//! Every test picks the smallest configuration that still contains the
//! race it guards, and a CHESS-style preemption bound where the full
//! interleaving space is infeasible (most concurrency bugs — including
//! all three seeded `memtree_loom_mutate_*` regressions — need at most
//! two forced preemptions). Failures print a `MINLOOM_REPLAY` seed.
#![cfg(memtree_loom)]

mod channel;
mod gang;
mod minitok_model;
mod quarantine;
