//! Minitok executor models: a wake landing during a poll is never lost
//! (the absorbed-wake/AcqRel-swap protocol in `worker_loop`), and a
//! sleep registration's fire-vs-drop race wakes at most once and never
//! after the future is gone.

use std::task::{Wake, Waker};

use minitok::model_api::{ModelQueue, ModelSleep};
use minloom::sync::atomic::{AtomicUsize, Ordering};
use minloom::sync::Arc;
use minloom::{thread, Config};

/// The executor's core liveness claim: a task polls Pending because its
/// readiness flag is not yet set; a foreign thread sets the flag and
/// wakes it, racing the worker's mid-poll `queued` clear. The task must
/// eventually be re-polled and complete — a lost wakeup leaves the main
/// thread blocked on the completion condvar forever, which minloom
/// reports as a deadlock (this is exactly how the
/// `memtree_loom_mutate_minitok_store` teeth check dies: the mutated
/// plain store has no acquire half, so the re-poll can read a stale
/// readiness flag).
#[test]
fn wake_during_poll_not_lost() {
    minloom::model_with(Config::with_preemption_bound(2), || {
        let queue = Arc::new(ModelQueue::new());
        let ready = Arc::new(minloom::sync::atomic::AtomicBool::new(false));
        let done = Arc::new((
            minloom::sync::Mutex::new(false),
            minloom::sync::Condvar::new(),
        ));

        let task = {
            let ready = ready.clone();
            let done = done.clone();
            queue.spawn(std::future::poll_fn(move |_cx| {
                // ordering: Acquire — pairs with the waker's Release
                // store; the AcqRel queued-swap chain must carry it here.
                if ready.load(Ordering::Acquire) {
                    *done.0.lock().expect("done flag") = true;
                    done.1.notify_all();
                    std::task::Poll::Ready(())
                } else {
                    std::task::Poll::Pending
                }
            }))
        };
        let task = Arc::new(task);

        let waker = {
            let task = task.clone();
            let ready = ready.clone();
            thread::spawn(move || {
                // ordering: Release — publishes readiness; the wake must
                // carry it into the re-poll even when absorbed.
                ready.store(true, Ordering::Release);
                task.wake();
            })
        };
        let worker = {
            let queue = queue.clone();
            thread::spawn(move || queue.run_worker())
        };

        // The completion signal: blocks until the task really finished.
        {
            let mut finished = done.0.lock().expect("done flag");
            while !*finished {
                finished = done.1.wait(finished).expect("done flag");
            }
        }
        waker.join().expect("waker panicked");
        queue.close();
        worker.join().expect("worker panicked");
    });
}

/// The sleep registration race: the timer firing a registration races
/// the future being dropped (task cancelled). The waker must fire at
/// most once, and never once the registration's owner is gone — the
/// weak-handle upgrade is what protects a dead runtime's task slots.
#[test]
fn sleep_fire_vs_drop_wakes_at_most_once() {
    struct CountingWaker(Arc<AtomicUsize>);
    impl Wake for CountingWaker {
        fn wake(self: std::sync::Arc<Self>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    minloom::model_with(Config::default(), || {
        let wakes = Arc::new(AtomicUsize::new(0));
        let sleep = ModelSleep::new(Waker::from(std::sync::Arc::new(CountingWaker(
            wakes.clone(),
        ))));
        let handle = sleep.timer_handle();
        // Timer thread: fire the registration…
        let timer = thread::spawn(move || handle.fire());
        // …racing the owner dropping it (task cancelled / runtime gone).
        drop(sleep);
        timer.join().expect("timer panicked");
        assert!(
            wakes.load(Ordering::Relaxed) <= 1,
            "a sleep registration fires at most once"
        );
    });
}
