//! Quarantine gauge model: a stalled worker's budget is held for exactly
//! as long as the worker provably runs, is drained exactly once, and the
//! gauge is conserved — a concurrent reader only ever sees "fully held"
//! or "fully drained", never a partial or negative value.
//!
//! The gauge (`HELD`) is a process-global static; under minloom its
//! state is generation-stamped, so each explored schedule starts from a
//! clean zero.

use memtree_runtime::quarantine::{held, quarantine_threads_with_reaper};
use minloom::sync::Arc;
use minloom::{thread, Config};

#[test]
fn stall_join_race_conserves_budget() {
    minloom::model_with(Config::with_preemption_bound(2), || {
        // A worker that stays provably alive until the gate opens —
        // the stand-in for a runaway shard worker mid-stall.
        let gate = Arc::new(minloom::sync::Mutex::new(false));
        let cv = Arc::new(minloom::sync::Condvar::new());
        let worker = {
            let (gate, cv) = (gate.clone(), cv.clone());
            thread::spawn(move || {
                let mut open = gate.lock().expect("gate");
                while !*open {
                    open = cv.wait(open).expect("gate");
                }
            })
        };
        // A concurrent reader: the gauge must be conserved — 0 (not yet
        // quarantined, or already reaped) or 7 (held), never partial.
        let reader = thread::spawn(|| {
            let seen = held();
            assert!(
                seen == 0 || seen == 7,
                "gauge must be conserved, saw {seen}"
            );
        });

        let (total, reaper) = quarantine_threads_with_reaper(vec![(worker, 7)]);
        assert_eq!(total, 7);
        // The worker cannot have exited yet (the gate is still closed),
        // so the budget is certainly held: this is the claim that makes
        // quarantine accounting trustworthy — no timer ever releases it.
        assert_eq!(held(), 7, "budget held while the worker runs");

        // Open the gate: the worker exits, the reaper's join confirms it.
        *gate.lock().expect("gate") = true;
        cv.notify_all();

        // Joining the reaper is the happens-after edge for the final
        // read. Exactly-once drain rides on the same assert: a double
        // fetch_sub would wrap the u64 far away from zero.
        reaper
            .expect("model build always spawns a reaper")
            .join()
            .expect("reaper panicked");
        assert_eq!(held(), 0, "budget drained exactly once after the join");
        reader.join().expect("reader panicked");
    });
}
