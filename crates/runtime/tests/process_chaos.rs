// Real-thread integration tests: excluded from the `memtree_loom` model
// build, where sync primitives only work inside a minloom model.
#![cfg(not(memtree_loom))]

//! Chaos and differential suite for `ProcessPlatform`: real worker
//! processes killed mid-shard, death-requeue, retry exhaustion, stall
//! closure, and observational equivalence against the in-process
//! platforms.
//!
//! The worker binary is the one Cargo built alongside this test
//! (`CARGO_BIN_EXE_memtree-shard-worker`), so the suite always exercises
//! the worker from the same commit. Shard counts are pinned per CI job
//! through `MEMTREE_TEST_SHARDS`, like the thread-backed sharded suite.

use memtree_runtime::{
    ChaosKill, Platform, PlatformError, ProcessPlatform, RuntimeError, SimPlatform, Workload,
};
use memtree_sched::{AllotmentCaps, HeuristicKind, PolicySpec};
use memtree_tree::partition::{partition, PartitionPolicy};
use memtree_tree::{TaskSpec, TaskTree};
use std::time::Duration;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_memtree-shard-worker")
}

fn process_platform(shards: usize) -> ProcessPlatform {
    ProcessPlatform::new(shards).with_worker_bin(worker_bin())
}

/// Root 0; a bushy 21-node subtree plus two 13-node chains — partitioned
/// 4 ways this yields exactly three shards, so chaos coordinates aimed at
/// shard 1 always hit a real worker process (pinned below).
fn chaos_tree() -> TaskTree {
    let mut parents: Vec<Option<usize>> = vec![None, Some(0)];
    for _ in 0..2 {
        let mut prev = 1usize;
        for _ in 0..10 {
            parents.push(Some(prev));
            prev = parents.len() - 1;
        }
    }
    for _ in 0..2 {
        let mut prev = 0usize;
        for _ in 0..13 {
            parents.push(Some(prev));
            prev = parents.len() - 1;
        }
    }
    let specs = vec![TaskSpec::new(1, 3, 1.0); parents.len()];
    TaskTree::from_parents(&parents, &specs).unwrap()
}

fn roomy_spec(tree: &TaskTree) -> PolicySpec {
    PolicySpec::new(
        HeuristicKind::MemBooking,
        memtree_sched::min_feasible_memory(tree) * 100,
    )
}

fn shard_counts() -> Vec<usize> {
    match std::env::var("MEMTREE_TEST_SHARDS") {
        Ok(v) => {
            let counts: Vec<usize> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&s| s >= 1)
                .collect();
            assert!(!counts.is_empty(), "MEMTREE_TEST_SHARDS has no counts: {v}");
            counts
        }
        Err(_) => vec![1, 2, 4],
    }
}

#[test]
fn chaos_tree_partitions_as_documented() {
    let tree = chaos_tree();
    let part = partition(&tree, &PartitionPolicy::balanced(4));
    assert_eq!(part.shard_count(), 3, "chaos coordinates rely on 3 shards");
}

/// The acceptance scenario: SIGKILL one worker process mid-shard. The
/// supervisor sees death-without-verdict, the coordinator requeues the
/// shard onto a fresh process, and the run **succeeds** — every task
/// executed, every reservation released (the coordinator's post-phase
/// ledger audit is a debug assertion on exactly this path).
#[test]
fn killed_worker_is_requeued_and_the_run_completes() {
    let tree = chaos_tree();
    let spec = roomy_spec(&tree);
    let platform = process_platform(4).with_chaos_kill(ChaosKill {
        shard: 1,
        attempt: 0,
    });
    let detailed = platform.run_detailed(&tree, &spec).unwrap();
    assert_eq!(detailed.report.tasks_run, tree.len());
    assert_eq!(detailed.report.platform, "process");
    assert_eq!(detailed.shard_reports.len(), 3);
    for (k, (r, &b)) in detailed
        .shard_reports
        .iter()
        .zip(&detailed.budgets)
        .enumerate()
    {
        assert!(r.peak_booked <= b, "shard {k} over its split budget");
        assert!(r.peak_actual <= r.peak_booked, "shard {k}");
    }
    assert!(detailed.shard_peak_sum() <= spec.memory);
    // Process death never quarantines: the requeued worker's predecessor
    // was reaped, and this run ended with nothing outstanding.
    assert_eq!(detailed.report.quarantined, 0);
}

/// With the retry budget exhausted (retries = 0), the same kill becomes
/// a clean `ShardFailed` naming the dead shard, and the platform value
/// stays reusable — nothing leaked across the failed run.
#[test]
fn retry_exhaustion_surfaces_shard_failed() {
    let tree = chaos_tree();
    let spec = roomy_spec(&tree);
    let platform = process_platform(4)
        .with_retries(0)
        .with_chaos_kill(ChaosKill {
            shard: 1,
            attempt: 0,
        });
    match platform.run(&tree, &spec).unwrap_err() {
        PlatformError::ShardFailed { shard, source } => {
            assert_eq!(shard, 1);
            assert!(
                matches!(*source, PlatformError::Process(_)),
                "expected a process-death failure, got {source}"
            );
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
    let report = process_platform(4).run(&tree, &spec).unwrap();
    assert_eq!(report.tasks_run, tree.len());
}

/// A worker whose *payload* panics reports `failed panic` — a clean,
/// deterministic verdict that is NOT retried: the shard fails as
/// `WorkerPanic` exactly like the thread-backed platforms.
#[test]
fn payload_panic_is_a_clean_verdict_not_a_retry() {
    let tree = chaos_tree();
    let spec = roomy_spec(&tree);
    // Local index 15 exists in exactly one shard subtree.
    let platform = process_platform(4).with_workload(Workload::FailAt { node: 15 });
    match platform.run(&tree, &spec).unwrap_err() {
        PlatformError::ShardFailed { shard, source } => {
            assert!(
                matches!(*source, PlatformError::Runtime(RuntimeError::WorkerPanic)),
                "expected WorkerPanic inside shard {shard}, got {source}"
            );
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
}

/// Stall closure: with heartbeats disabled and every task sleeping past
/// the watchdog, the coordinator kills the workers, *waits* for each
/// exit, and releases every reservation — `quarantined` is exactly 0
/// (process isolation closes the race the thread backend can only
/// quarantine around), and a fresh run completes.
#[test]
fn stall_kills_waits_and_releases_everything() {
    let tree = chaos_tree();
    let spec = roomy_spec(&tree);
    let platform = process_platform(4)
        .with_workload(Workload::Sleep {
            nanos_per_time_unit: 1_000_000_000.0,
            max_nanos: 1_000_000_000,
        })
        .with_heartbeat(Duration::ZERO)
        .with_timeout(Duration::from_millis(150));
    match platform.run(&tree, &spec).unwrap_err() {
        PlatformError::ShardStalled {
            reported,
            total,
            quarantined,
        } => {
            assert!(reported < total, "{reported}/{total}");
            assert_eq!(total, 3);
            assert_eq!(quarantined, 0, "confirmed exits must not quarantine");
        }
        other => panic!("expected ShardStalled, got {other}"),
    }
    let report = platform
        .with_workload(Workload::Noop)
        .with_heartbeat(Duration::from_millis(50))
        .run(&tree, &spec)
        .unwrap();
    assert_eq!(report.tasks_run, tree.len());
}

/// Heartbeats keep a slow-but-alive worker off the watchdog: the whole
/// shard takes several watchdog periods, yet the run completes because
/// `heartbeat` lines keep resetting the idle clock.
#[test]
fn heartbeats_keep_the_watchdog_from_firing() {
    let tree = chaos_tree();
    let spec = roomy_spec(&tree);
    let report = process_platform(4)
        .with_workload(Workload::Sleep {
            nanos_per_time_unit: 30_000_000.0, // ~30 ms per task
            max_nanos: 30_000_000,
        })
        .with_heartbeat(Duration::from_millis(20))
        .with_timeout(Duration::from_millis(100))
        .run(&tree, &spec)
        .unwrap();
    assert_eq!(report.tasks_run, tree.len());
}

/// The overall deadline stops the phase even while heartbeats trickle:
/// liveness is not progress.
#[test]
fn deadline_bounds_the_phase_despite_heartbeats() {
    let tree = chaos_tree();
    let spec = roomy_spec(&tree);
    let started = std::time::Instant::now();
    let err = process_platform(4)
        .with_workload(Workload::Sleep {
            nanos_per_time_unit: 1_000_000_000.0,
            max_nanos: 1_000_000_000,
        })
        .with_heartbeat(Duration::from_millis(10))
        .with_deadline(Duration::from_millis(120))
        .run(&tree, &spec)
        .unwrap_err();
    assert!(
        matches!(err, PlatformError::ShardStalled { quarantined: 0, .. }),
        "got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline enforcement took {:?}",
        started.elapsed()
    );
}

/// Observational equivalence: every policy kind, moldable included,
/// completes the same task set through worker processes as on the
/// in-process simulator, inside the same global envelope.
#[test]
fn every_kind_equivalent_through_worker_processes() {
    let tree = memtree_gen::synthetic::paper_tree(150, 83);
    let m = memtree_sched::min_feasible_memory(&tree) * 1000;
    for kind in HeuristicKind::all() {
        let spec = PolicySpec::new(kind, m);
        let sim = SimPlatform::new(4).run(&tree, &spec).unwrap();
        for shards in shard_counts() {
            let detailed = process_platform(shards)
                .run_detailed(&tree, &spec)
                .unwrap_or_else(|e| panic!("{kind} s={shards}: {e}"));
            let ctx = format!("{kind} s={shards}");
            if kind == HeuristicKind::MemBookingRedTree {
                assert!(detailed.report.tasks_run >= tree.len(), "{ctx}");
            } else {
                assert_eq!(detailed.report.tasks_run, sim.tasks_run, "{ctx}");
                assert_eq!(detailed.report.tasks_run, tree.len(), "{ctx}");
            }
            assert_eq!(detailed.report.policy, sim.policy, "{ctx}");
            assert!(detailed.budgets.iter().sum::<u64>() <= m, "{ctx}");
            assert!(detailed.shard_peak_sum() <= m, "{ctx}");
            assert!(detailed.report.peak_booked <= m, "{ctx}");
            assert!(
                detailed.report.peak_actual <= detailed.report.peak_booked,
                "{ctx}"
            );
        }
    }
}

/// Moldable specs gang-schedule inside each worker process: caps project
/// onto shard id spaces across the pipe exactly as in-process.
#[test]
fn moldable_spec_runs_through_worker_processes() {
    let tree = memtree_gen::synthetic::paper_tree(120, 19);
    let m = memtree_sched::min_feasible_memory(&tree) * 1000;
    let caps = AllotmentCaps::uniform(&tree, 4);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
    let detailed = process_platform(2)
        .with_workers_per_shard(2)
        .run_detailed(&tree, &spec)
        .unwrap();
    assert_eq!(detailed.report.tasks_run, tree.len());
    assert!(detailed.report.peak_booked <= m);
}

/// A missing worker binary is a loud, actionable error — not a hang.
#[test]
fn missing_worker_binary_fails_loudly() {
    let tree = chaos_tree();
    let spec = roomy_spec(&tree);
    let err = ProcessPlatform::new(2)
        .with_worker_bin("/nonexistent/memtree-shard-worker")
        .run(&tree, &spec)
        .unwrap_err();
    match err {
        PlatformError::ShardFailed { source, .. } => {
            assert!(matches!(*source, PlatformError::Process(_)), "{source}");
        }
        PlatformError::Process(_) => {}
        other => panic!("expected a process error, got {other}"),
    }
}
