// Real-thread integration tests: excluded from the `memtree_loom` model
// build, where sync primitives only work inside a minloom model.
#![cfg(not(memtree_loom))]

//! Differential tests: `ShardedPlatform` against `SimPlatform` and
//! `ThreadedPlatform`.
//!
//! The sharded backend must be observationally equivalent to the
//! single-platform runs for every `PolicySpec`: the same completion set
//! (every original task exactly once; a transforming policy's fictitious
//! tasks on top), per-shard booking ledgers that respect their split
//! budgets, and a platform-level peak that never exceeds the global
//! bound — with the **sum** of the shard ledger peaks bounded by `M`, the
//! acceptance invariant of the shard merge.
//!
//! The shard counts swept here are pinned per CI job through
//! `MEMTREE_TEST_SHARDS` (comma-separated), mirroring how
//! `MEMTREE_TEST_WORKERS` pins executor worker counts.

use memtree_multifrontal::{assembly_corpus, CorpusSpec};
use memtree_runtime::{Platform, RuntimeConfig, ShardedPlatform, SimPlatform, ThreadedPlatform};
use memtree_sched::{AllotmentCaps, HeuristicKind, PolicySpec, ShardBudget};
use memtree_tree::TaskTree;

/// Shard counts the differential cases sweep: `MEMTREE_TEST_SHARDS` when
/// set (the CI matrix pins one count per job), {1, 2, 4, 8} otherwise.
fn shard_counts() -> Vec<usize> {
    match std::env::var("MEMTREE_TEST_SHARDS") {
        Ok(v) => {
            let counts: Vec<usize> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&s| s >= 1)
                .collect();
            assert!(!counts.is_empty(), "MEMTREE_TEST_SHARDS has no counts: {v}");
            counts
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn worker_counts() -> Vec<usize> {
    RuntimeConfig::worker_counts_from_env(&[1, 2])
}

/// The differential contract for one (tree, spec) point: sharded runs
/// complete the same task set as both single platforms, inside the same
/// global envelope, with per-shard ledgers inside their split budgets.
fn assert_sharded_equivalence(name: &str, tree: &TaskTree, spec: &PolicySpec) {
    let m = spec.memory;
    let sim = SimPlatform::new(4).run(tree, spec).unwrap();
    let thr = ThreadedPlatform::new(4).run(tree, spec).unwrap();
    assert_eq!(sim.tasks_run, thr.tasks_run, "{name}: sim vs threaded");
    for shards in shard_counts() {
        for workers in worker_counts() {
            let platform = ShardedPlatform::new(shards).with_workers_per_shard(workers);
            let detailed = platform
                .run_detailed(tree, spec)
                .unwrap_or_else(|e| panic!("{name} s={shards} w={workers}: {e}"));
            let ctx = format!("{name} s={shards} w={workers}");

            // Completion set: non-transforming policies complete exactly
            // the single-platform task set; the transforming baseline
            // adds per-part fictitious tasks, so it covers at least it.
            if spec.kind == HeuristicKind::MemBookingRedTree {
                assert!(detailed.report.tasks_run >= tree.len(), "{ctx}");
                assert!(sim.tasks_run >= tree.len(), "{ctx}");
            } else {
                assert_eq!(detailed.report.tasks_run, sim.tasks_run, "{ctx}");
                assert_eq!(detailed.report.tasks_run, tree.len(), "{ctx}");
            }
            assert_eq!(detailed.report.policy, sim.policy, "{ctx}");

            // Ledger invariants: every shard inside its budget, budgets
            // sum within the bound, and the acceptance inequality — the
            // sum of shard peaks never exceeds the global budget.
            assert!(detailed.budgets.iter().sum::<u64>() <= m, "{ctx}");
            for (k, (r, &b)) in detailed
                .shard_reports
                .iter()
                .zip(&detailed.budgets)
                .enumerate()
            {
                assert!(r.peak_booked <= b, "{ctx}: shard {k} over its ledger");
                assert!(r.peak_actual <= r.peak_booked, "{ctx}: shard {k}");
            }
            assert!(detailed.shard_peak_sum() <= m, "{ctx}: Σ shard peaks > M");
            assert!(detailed.residual.peak_booked <= m, "{ctx}");
            assert!(detailed.report.peak_booked <= m, "{ctx}");
            assert!(
                detailed.report.peak_actual <= detailed.report.peak_booked,
                "{ctx}"
            );

            // Structural sanity of the merge: one proxy per shard, and
            // shard + residual tasks account for every original node.
            assert_eq!(detailed.proxy_tasks, detailed.shard_reports.len(), "{ctx}");
            if spec.kind != HeuristicKind::MemBookingRedTree {
                let shard_nodes: usize = detailed.shard_reports.iter().map(|r| r.tasks_run).sum();
                assert_eq!(
                    shard_nodes + detailed.residual.tasks_run - detailed.proxy_tasks,
                    tree.len(),
                    "{ctx}"
                );
            }
        }
    }
}

/// Roomy bound: headroom for the per-shard split of every kind, RedTree's
/// transformed minima included.
fn roomy(tree: &TaskTree) -> u64 {
    memtree_sched::min_feasible_memory(tree) * 1000
}

/// Every policy kind is observationally equivalent on synthetic trees
/// across the full shard-count sweep.
#[test]
fn every_kind_equivalent_on_synthetic_trees() {
    for seed in 0..2 {
        let tree = memtree_gen::synthetic::paper_tree(200, 60 + seed);
        let m = roomy(&tree);
        for kind in HeuristicKind::all() {
            let spec = PolicySpec::new(kind, m);
            assert_sharded_equivalence(&format!("synth-{seed}-{kind}"), &tree, &spec);
        }
    }
}

/// … and on assembly trees from the multifrontal pipeline.
#[test]
fn membooking_equivalent_on_assembly_trees() {
    let corpus = assembly_corpus(&CorpusSpec::small());
    assert!(corpus.len() >= 3, "small corpus unexpectedly empty");
    for (name, tree) in corpus.iter().take(3) {
        for kind in [HeuristicKind::MemBooking, HeuristicKind::Activation] {
            let spec = PolicySpec::new(kind, roomy(tree));
            assert_sharded_equivalence(&format!("{name}-{kind}"), tree, &spec);
        }
    }
}

/// Moldable MemBooking (gang-scheduled inside each shard worker) is
/// equivalent too: caps project onto each shard's id space.
#[test]
fn moldable_spec_equivalent_across_shard_counts() {
    let tree = memtree_gen::synthetic::paper_tree(150, 41);
    let m = roomy(&tree);
    let caps = AllotmentCaps::uniform(&tree, 4);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
    assert_sharded_equivalence("moldable", &tree, &spec);
}

/// Every budget split policy preserves the invariants (they only move
/// headroom around).
#[test]
fn all_budget_splits_equivalent() {
    let tree = memtree_gen::synthetic::paper_tree(180, 77);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, roomy(&tree));
    for budget in [
        ShardBudget::Proportional,
        ShardBudget::Even,
        ShardBudget::Minimum,
    ] {
        let detailed = ShardedPlatform::new(4)
            .with_budget(budget)
            .run_detailed(&tree, &spec)
            .unwrap();
        assert_eq!(detailed.report.tasks_run, tree.len(), "{budget}");
        assert!(detailed.shard_peak_sum() <= spec.memory, "{budget}");
        assert!(
            detailed.budgets.iter().sum::<u64>() <= spec.memory,
            "{budget}"
        );
    }
}

/// Tight memory: when the split is infeasible the sharded platform
/// refuses exactly like a policy's construction refusal — the error is
/// `is_infeasible`, and the single platforms still run (sharding may
/// demand more memory than one ledger, never less correctness).
#[test]
fn infeasible_split_refuses_cleanly_where_single_platforms_run() {
    let tree = memtree_gen::synthetic::paper_tree(200, 9);
    let min = memtree_sched::min_feasible_memory(&tree);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, min);
    SimPlatform::new(4).run(&tree, &spec).unwrap();
    ThreadedPlatform::new(2).run(&tree, &spec).unwrap();
    match ShardedPlatform::new(8).run(&tree, &spec) {
        Ok(report) => assert_eq!(report.tasks_run, tree.len(), "feasible split must run"),
        Err(e) => assert!(e.is_infeasible(), "got {e}"),
    }
}
