//! **`AdmissionController`** — the service's budgeted admission state
//! machine (DESIGN.md §6.9).
//!
//! The controller is deliberately **pure**: plain numbers in, decisions
//! out, no threads, no clocks. The [`Service`](crate::Service)
//! coordinator drives it with live sessions; the admission proptests
//! drive it with thousands of random arrival/completion interleavings.
//! Both see exactly the same machine, so the invariants the proptests
//! pin — every admitted budget within its bounds, `Σ` budgets ≤ `M` at
//! all times, refusals exactly the infeasible, the queue draining once
//! budget frees — are the invariants the live service enforces.
//!
//! The protocol, per session:
//!
//! 1. **Refuse** sessions that are infeasible *even alone*: the floor
//!    (its spec's [`min_feasible`](memtree_sched::PolicySpec::min_feasible))
//!    exceeds the requested bound or the whole machine. Running such a
//!    session could never construct its scheduler — refusing up front is
//!    the service-level analogue of the policies' construction-time
//!    feasibility refusal, and what keeps the machine from thrashing on
//!    work it can never finish.
//! 2. **Admit** when the floor fits the currently-free budget, granting
//!    between the floor and the free budget per the [`GrantPolicy`]
//!    (never more than the session asked for), reserved against the
//!    shared hard-error [`BudgetLedger`].
//! 3. **Queue** otherwise: feasible, just not now.
//! 4. On **completion** the grant returns to the ledger and the freed
//!    budget is immediately rebalanced to the queue: waiting sessions are
//!    scanned in priority-then-arrival order and every one whose floor
//!    now fits is admitted (work-conserving backfill — a small session
//!    behind a big one does not hold budget idle). Since every completed
//!    session returns its whole grant, once arrivals cease the ledger
//!    drains and every queued session eventually fits: no feasible
//!    session starves.

use memtree_sched::{BudgetLedger, LedgerError};
use std::collections::HashMap;
use std::fmt;

/// A service-wide session identity (assigned by the service front door).
pub type SessionId = u64;

/// How much of the free budget an admitted session is granted, between
/// its floor and what it requested.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum GrantPolicy {
    /// Everything currently free (capped at the request) — single-tenant
    /// runs get exactly the bound a direct `Platform::run` would use,
    /// which is what makes the differential test bit-for-bit. Later
    /// arrivals queue behind the generosity.
    #[default]
    AllAvailable,
    /// Exactly the floor — maximal concurrent admission, each tenant on
    /// the leanest (slowest) feasible schedule.
    Minimum,
    /// The floor scaled by a factor (≥ 1), capped at the request and the
    /// free budget — headroom above the floor buys schedule parallelism
    /// without one tenant monopolising the machine.
    Scaled(f64),
}

impl GrantPolicy {
    /// Stable label for reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            GrantPolicy::AllAvailable => "all-available",
            GrantPolicy::Minimum => "minimum",
            GrantPolicy::Scaled(_) => "scaled",
        }
    }

    /// The budget granted to a session with `floor`, given `cap` =
    /// `min(requested, available)`. Callers guarantee `floor ≤ cap`.
    fn budget(&self, floor: u64, cap: u64) -> u64 {
        debug_assert!(floor <= cap);
        match *self {
            GrantPolicy::AllAvailable => cap,
            GrantPolicy::Minimum => floor,
            GrantPolicy::Scaled(factor) => {
                let target = floor as f64 * factor.max(1.0);
                if target >= cap as f64 {
                    cap
                } else {
                    (target as u64).max(floor)
                }
            }
        }
    }
}

/// Why a submission was refused outright (never queued): it could not
/// run even with nothing else on the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The session's own requested bound is below its spec's feasibility
    /// floor — a direct `Platform::run` of the same spec would refuse
    /// identically.
    SpecInfeasible {
        /// The spec's feasibility floor on its tree.
        required: u64,
        /// The bound the session requested.
        requested: u64,
    },
    /// The floor exceeds the whole machine's capacity — infeasible even
    /// granted every unit of memory the service owns.
    MachineInfeasible {
        /// The spec's feasibility floor on its tree.
        required: u64,
        /// The service's global memory bound `M`.
        capacity: u64,
    },
}

impl Refusal {
    /// The floor that could not be met.
    pub fn required(&self) -> u64 {
        match *self {
            Refusal::SpecInfeasible { required, .. } => required,
            Refusal::MachineInfeasible { required, .. } => required,
        }
    }

    /// The bound the floor was measured against (the request or the
    /// machine).
    pub fn limit(&self) -> u64 {
        match *self {
            Refusal::SpecInfeasible { requested, .. } => requested,
            Refusal::MachineInfeasible { capacity, .. } => capacity,
        }
    }
}

impl fmt::Display for Refusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refusal::SpecInfeasible {
                required,
                requested,
            } => write!(
                f,
                "requested bound {requested} below the spec's feasibility floor {required}"
            ),
            Refusal::MachineInfeasible { required, capacity } => write!(
                f,
                "feasibility floor {required} exceeds the machine capacity {capacity}"
            ),
        }
    }
}

/// A session admitted with a concrete budget reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// The admitted session.
    pub session: SessionId,
    /// Its reserved slice of the global bound — ≥ its floor, ≤ its
    /// request, `Σ` over running sessions ≤ `M`.
    pub budget: u64,
}

/// The controller's answer to one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Admitted now, with this reservation.
    Admitted(Grant),
    /// Feasible but not now; parked in the wait queue.
    Queued {
        /// Sessions ahead of it in (priority, arrival) order.
        position: usize,
    },
    /// Infeasible even alone; never queued.
    Refused(Refusal),
}

/// One completion's outcome: the released reservation plus every queued
/// session the freed budget admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The budget returned to the ledger.
    pub released: u64,
    /// Queued sessions admitted by the rebalance, in admission order.
    pub admitted: Vec<Grant>,
}

/// Controller misuse — always a coordinator bug, mirroring the ledger's
/// hard-error stance on accounting drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// A session id submitted twice, or completed while queued.
    DuplicateSession(SessionId),
    /// A completion for a session the controller is not running — a
    /// double completion or a phantom id.
    UnknownSession(SessionId),
    /// The shared budget ledger refused an operation the controller's
    /// own invariants should have made impossible.
    Ledger(LedgerError),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::DuplicateSession(id) => write!(f, "session {id} already known"),
            AdmissionError::UnknownSession(id) => {
                write!(f, "session {id} is not running (double completion?)")
            }
            AdmissionError::Ledger(e) => write!(f, "admission ledger: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<LedgerError> for AdmissionError {
    fn from(e: LedgerError) -> Self {
        AdmissionError::Ledger(e)
    }
}

/// Monotonic counters over the controller's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Sessions submitted (admitted + queued + refused).
    pub submitted: u64,
    /// Sessions ever admitted (immediately or from the queue).
    pub admitted: u64,
    /// Sessions that waited in the queue at least once.
    pub queued: u64,
    /// Sessions refused as infeasible.
    pub refused: u64,
    /// Sessions completed (their budgets returned).
    pub completed: u64,
}

/// A session parked in the wait queue.
#[derive(Clone, Copy, Debug)]
struct Waiting {
    id: SessionId,
    floor: u64,
    requested: u64,
    priority: u8,
    arrival: u64,
}

/// The budgeted admission state machine; see the module docs.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    ledger: BudgetLedger,
    grant: GrantPolicy,
    /// Kept sorted by (priority desc, arrival asc) — the admission scan
    /// order.
    queue: Vec<Waiting>,
    /// Running sessions and their reservations.
    running: HashMap<SessionId, u64>,
    peak_running: usize,
    arrivals: u64,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller over `capacity` memory units with the given grant
    /// policy.
    pub fn new(capacity: u64, grant: GrantPolicy) -> Self {
        AdmissionController {
            ledger: BudgetLedger::new(capacity),
            grant,
            queue: Vec::new(),
            running: HashMap::new(),
            peak_running: 0,
            arrivals: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// The global memory bound `M`.
    pub fn capacity(&self) -> u64 {
        self.ledger.capacity()
    }

    /// Budget currently free for admission.
    pub fn available(&self) -> u64 {
        self.ledger.available()
    }

    /// `Σ` budgets of the running sessions.
    pub fn reserved(&self) -> u64 {
        self.ledger.reserved()
    }

    /// High-water mark of [`reserved`](AdmissionController::reserved) —
    /// the service-level booking peak, provably ≤ `M`.
    pub fn peak_reserved(&self) -> u64 {
        self.ledger.peak_reserved()
    }

    /// Running session count.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// High-water mark of concurrently running sessions.
    pub fn peak_running(&self) -> usize {
        self.peak_running
    }

    /// The budget granted to a running session, if it is running.
    pub fn budget_of(&self, id: SessionId) -> Option<u64> {
        self.running.get(&id).copied()
    }

    /// The running session ids, sorted (a deterministic snapshot for
    /// tests and introspection).
    pub fn running_sessions(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self.running.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Sessions waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Submits a session: `floor` is its spec's feasibility minimum on
    /// its tree, `requested` the bound it asked for, higher `priority`
    /// admits sooner from the queue.
    ///
    /// # Errors
    /// [`AdmissionError::DuplicateSession`] when `id` is already running
    /// or queued.
    pub fn submit(
        &mut self,
        id: SessionId,
        floor: u64,
        requested: u64,
        priority: u8,
    ) -> Result<Decision, AdmissionError> {
        if self.running.contains_key(&id) || self.queue.iter().any(|w| w.id == id) {
            return Err(AdmissionError::DuplicateSession(id));
        }
        self.stats.submitted += 1;
        let floor = floor.max(1);
        if floor > requested {
            self.stats.refused += 1;
            return Ok(Decision::Refused(Refusal::SpecInfeasible {
                required: floor,
                requested,
            }));
        }
        if floor > self.capacity() {
            self.stats.refused += 1;
            return Ok(Decision::Refused(Refusal::MachineInfeasible {
                required: floor,
                capacity: self.capacity(),
            }));
        }
        if floor <= self.available() {
            let grant = self.admit(id, floor, requested)?;
            return Ok(Decision::Admitted(grant));
        }
        let arrival = self.arrivals;
        self.arrivals += 1;
        let waiting = Waiting {
            id,
            floor,
            requested,
            priority,
            arrival,
        };
        // Insert in (priority desc, arrival asc) order; arrivals are
        // strictly increasing, so equal-priority entries stay FIFO.
        let position = self
            .queue
            .iter()
            .position(|w| {
                (std::cmp::Reverse(w.priority), w.arrival) > (std::cmp::Reverse(priority), arrival)
            })
            .unwrap_or(self.queue.len());
        self.queue.insert(position, waiting);
        self.stats.queued += 1;
        Ok(Decision::Queued { position })
    }

    /// Completes a running session: its budget returns to the ledger and
    /// the freed headroom is rebalanced to the queue.
    ///
    /// # Errors
    /// [`AdmissionError::UnknownSession`] on a double or phantom
    /// completion; [`AdmissionError::Ledger`] if the books stopped
    /// balancing (a controller bug, surfaced loudly).
    pub fn complete(&mut self, id: SessionId) -> Result<Completion, AdmissionError> {
        let budget = self
            .running
            .remove(&id)
            .ok_or(AdmissionError::UnknownSession(id))?;
        self.ledger.release(budget)?;
        self.stats.completed += 1;
        let admitted = self.rebalance()?;
        Ok(Completion {
            released: budget,
            admitted,
        })
    }

    /// Admits every queued session whose floor fits the free budget, in
    /// (priority desc, arrival asc) order — the rebalance step run after
    /// every completion. Work-conserving: non-fitting sessions are
    /// skipped, not blocking the budget for fitting ones behind them.
    fn rebalance(&mut self) -> Result<Vec<Grant>, AdmissionError> {
        let mut admitted = Vec::new();
        let mut k = 0;
        while k < self.queue.len() {
            if self.queue[k].floor <= self.available() {
                let w = self.queue.remove(k);
                admitted.push(self.admit(w.id, w.floor, w.requested)?);
            } else {
                k += 1;
            }
        }
        Ok(admitted)
    }

    fn admit(
        &mut self,
        id: SessionId,
        floor: u64,
        requested: u64,
    ) -> Result<Grant, AdmissionError> {
        let cap = requested.min(self.available());
        let budget = self.grant.budget(floor, cap);
        self.ledger.reserve(budget)?;
        self.running.insert(id, budget);
        self.peak_running = self.peak_running.max(self.running.len());
        self.stats.admitted += 1;
        Ok(Grant {
            session: id,
            budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_queue_refuse_and_rebalance() {
        let mut c = AdmissionController::new(100, GrantPolicy::Minimum);
        // Two tenants fit at their floors.
        assert_eq!(
            c.submit(1, 40, 100, 0).unwrap(),
            Decision::Admitted(Grant {
                session: 1,
                budget: 40
            })
        );
        assert_eq!(
            c.submit(2, 60, 100, 0).unwrap(),
            Decision::Admitted(Grant {
                session: 2,
                budget: 60
            })
        );
        assert_eq!(c.available(), 0);
        // The third queues; the fourth is refused (floor over capacity).
        assert_eq!(
            c.submit(3, 10, 100, 0).unwrap(),
            Decision::Queued { position: 0 }
        );
        assert_eq!(
            c.submit(4, 101, 200, 0).unwrap(),
            Decision::Refused(Refusal::MachineInfeasible {
                required: 101,
                capacity: 100
            })
        );
        // Completing tenant 1 rebalances the freed budget to tenant 3.
        let done = c.complete(1).unwrap();
        assert_eq!(done.released, 40);
        assert_eq!(
            done.admitted,
            vec![Grant {
                session: 3,
                budget: 10
            }]
        );
        assert_eq!(c.running(), 2);
        assert_eq!(c.peak_reserved(), 100);
        assert!(c.peak_reserved() <= c.capacity());
    }

    #[test]
    fn spec_infeasible_is_refused_like_a_direct_run() {
        let mut c = AdmissionController::new(1_000, GrantPolicy::AllAvailable);
        // Floor 50 but the tenant only asked for 49: a direct
        // Platform::run at 49 would refuse with InfeasibleMemory too.
        assert_eq!(
            c.submit(1, 50, 49, 0).unwrap(),
            Decision::Refused(Refusal::SpecInfeasible {
                required: 50,
                requested: 49
            })
        );
        assert_eq!(c.stats().refused, 1);
        assert_eq!(c.running(), 0);
    }

    #[test]
    fn all_available_grants_the_request_when_alone() {
        let mut c = AdmissionController::new(1_000, GrantPolicy::AllAvailable);
        // Capped at the request, not the machine: the tenant's own bound
        // is what a direct run would use.
        let Decision::Admitted(g) = c.submit(1, 10, 300, 0).unwrap() else {
            panic!("should admit")
        };
        assert_eq!(g.budget, 300);
        // A second tenant gets everything still free (capped at request).
        let Decision::Admitted(g) = c.submit(2, 10, 10_000, 0).unwrap() else {
            panic!("should admit")
        };
        assert_eq!(g.budget, 700);
    }

    #[test]
    fn scaled_grants_between_floor_and_cap() {
        let mut c = AdmissionController::new(1_000, GrantPolicy::Scaled(1.5));
        let Decision::Admitted(g) = c.submit(1, 100, 1_000, 0).unwrap() else {
            panic!("should admit")
        };
        assert_eq!(g.budget, 150);
        // A factor below 1 is clamped to the floor, and the grant never
        // exceeds min(requested, available).
        let mut c = AdmissionController::new(1_000, GrantPolicy::Scaled(0.5));
        let Decision::Admitted(g) = c.submit(1, 100, 120, 0).unwrap() else {
            panic!("should admit")
        };
        assert_eq!(g.budget, 100);
        let mut c = AdmissionController::new(130, GrantPolicy::Scaled(10.0));
        let Decision::Admitted(g) = c.submit(1, 100, 10_000, 0).unwrap() else {
            panic!("should admit")
        };
        assert_eq!(g.budget, 130);
    }

    #[test]
    fn priority_orders_the_queue_fifo_within_a_level() {
        let mut c = AdmissionController::new(100, GrantPolicy::Minimum);
        c.submit(1, 100, 100, 0).unwrap();
        c.submit(2, 30, 100, 1).unwrap();
        c.submit(3, 30, 100, 5).unwrap();
        c.submit(4, 30, 100, 1).unwrap();
        c.submit(5, 40, 100, 5).unwrap();
        // Queue order: priority desc, FIFO within a level.
        let done = c.complete(1).unwrap();
        let order: Vec<SessionId> = done.admitted.iter().map(|g| g.session).collect();
        assert_eq!(
            order,
            vec![3, 5, 2],
            "3 and 5 (prio 5) first, then 2 (prio 1)"
        );
        assert_eq!(c.queue_len(), 1, "4 still waiting (no budget left)");
    }

    #[test]
    fn backfill_skips_a_blocked_head() {
        let mut c = AdmissionController::new(100, GrantPolicy::Minimum);
        c.submit(1, 80, 100, 0).unwrap();
        // Both queue behind the running 80: floors 90 and 30 exceed the
        // free 20.
        c.submit(2, 90, 100, 9).unwrap();
        c.submit(3, 30, 100, 0).unwrap();
        let done = c.complete(1).unwrap();
        let order: Vec<SessionId> = done.admitted.iter().map(|g| g.session).collect();
        assert_eq!(
            order,
            vec![2],
            "high-priority head admitted once budget freed"
        );
        // 3 does not fit next to 2 (available 10 < 30) and stays queued —
        // but only until the next completion frees budget.
        assert_eq!(c.queue_len(), 1);
        let done = c.complete(2).unwrap();
        assert_eq!(done.admitted.len(), 1);
        assert_eq!(c.queue_len(), 0, "queue drains once budget frees");
    }

    #[test]
    fn a_fitting_newcomer_is_admitted_even_with_a_blocked_queue() {
        // Work-conserving admission: free budget never idles waiting for
        // a big queued session when a small newcomer fits right now.
        let mut c = AdmissionController::new(100, GrantPolicy::Minimum);
        c.submit(1, 80, 100, 0).unwrap();
        c.submit(2, 90, 100, 9).unwrap(); // queued: 90 > 20 free
        let decision = c.submit(3, 20, 100, 0).unwrap();
        assert!(
            matches!(decision, Decision::Admitted(_)),
            "got {decision:?}"
        );
        assert_eq!(c.queue_len(), 1);
    }

    #[test]
    fn duplicate_and_phantom_ids_are_hard_errors() {
        let mut c = AdmissionController::new(100, GrantPolicy::Minimum);
        c.submit(7, 10, 100, 0).unwrap();
        assert_eq!(
            c.submit(7, 10, 100, 0).unwrap_err(),
            AdmissionError::DuplicateSession(7)
        );
        c.complete(7).unwrap();
        assert_eq!(
            c.complete(7).unwrap_err(),
            AdmissionError::UnknownSession(7)
        );
        assert_eq!(
            c.complete(8).unwrap_err(),
            AdmissionError::UnknownSession(8)
        );
    }

    #[test]
    fn zero_floor_is_clamped_to_one() {
        let mut c = AdmissionController::new(10, GrantPolicy::Minimum);
        let Decision::Admitted(g) = c.submit(1, 0, 10, 0).unwrap() else {
            panic!("should admit")
        };
        assert!(g.budget >= 1, "a session always reserves something");
    }
}
