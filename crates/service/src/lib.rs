#![forbid(unsafe_code)]
//! # memtree_service — multi-tenant scheduling as a service
//!
//! The per-run entry points (`Platform::run`, the sweep harness, the
//! sharded forest) all assume one tenant owns the machine's memory bound
//! `M` for the duration of a run. This crate lifts the same booking
//! discipline one level up, to the regime the paper's model actually
//! targets: a shared machine where many tenants' trees arrive over time
//! and the bound is a *global* resource (DESIGN.md §6.9).
//!
//! Three layers:
//!
//! * [`AdmissionController`] — the pure policy: a promoted
//!   [`BudgetLedger`](memtree_sched::BudgetLedger) plus a priority wait
//!   queue. Every admitted session's budget is at least its
//!   [`PolicySpec::min_feasible`](memtree_sched::PolicySpec::min_feasible)
//!   floor; `Σ` budgets never exceeds `M` (the ledger hard-errors);
//!   sessions infeasible even alone are refused outright — the service
//!   never thrashes on a tenant it cannot serve.
//! * [`Service`] — the coordinator thread wiring the controller to real
//!   execution: admitted sessions run concurrently on their own threads
//!   through the unmodified sim/threaded/async
//!   [`Platform`](memtree_runtime::Platform) backends, and every
//!   completion immediately rebalances its freed budget to the queue.
//! * [`ServicePlatform`] — the service itself as a `Platform`, so the
//!   shared conformance suite stamps it and the single-tenant
//!   differential tests compare it bit-for-bit against direct runs.

#![warn(missing_docs)]

pub mod admission;
pub mod platform;
pub mod service;

pub use admission::{
    AdmissionController, AdmissionError, AdmissionStats, Decision, Grant, GrantPolicy, Refusal,
    SessionId,
};
pub use platform::ServicePlatform;
pub use service::{
    Admission, Service, ServiceConfig, ServiceStats, SessionBackend, SessionOutcome,
    SessionRequest, SessionTicket, SubmitError,
};
