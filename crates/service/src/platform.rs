//! **`ServicePlatform`** — the service as a
//! [`Platform`](memtree_runtime::Platform), so the conformance suite and
//! differential tests can drive it exactly like sim/threaded/async.
//!
//! `run` starts a one-shot [`Service`](crate::Service) over `spec.memory`,
//! submits the tree as the only tenant, waits for the outcome, and
//! relabels the report `"service"`. Under [`GrantPolicy::AllAvailable`]
//! (the default) the lone tenant is granted exactly its requested bound,
//! so the report is the direct backend run's report bit-for-bit (modulo
//! wall-clock fields) — the single-tenant differential contract of
//! DESIGN.md §6.9. Admission refusals surface as
//! [`SchedError::InfeasibleMemory`], making `is_infeasible()` true just
//! as on every other platform.

use crate::service::{Service, ServiceConfig, SessionBackend, SessionRequest, SubmitError};
use crate::GrantPolicy;
use memtree_runtime::{Platform, PlatformError, RunReport, RuntimeError};
use memtree_sched::{PolicyInstance, PolicySpec, ReschedulePolicy, SchedError};
use memtree_tree::TaskTree;
use std::sync::Arc;

/// One-shot service runs over a configurable backend; see the module
/// docs.
#[derive(Clone, Copy, Debug)]
pub struct ServicePlatform {
    /// The execution regime sessions run on.
    pub backend: SessionBackend,
    /// The grant policy — keep [`GrantPolicy::AllAvailable`] for
    /// bit-for-bit single-tenant equivalence.
    pub grant: GrantPolicy,
    /// When set, moldable sessions run malleable (DESIGN.md §6.10).
    pub reschedule: Option<ReschedulePolicy>,
}

impl ServicePlatform {
    /// A service platform over `backend` with the default
    /// (all-available) grant policy and no rescheduler.
    pub fn new(backend: SessionBackend) -> Self {
        ServicePlatform {
            backend,
            grant: GrantPolicy::AllAvailable,
            reschedule: None,
        }
    }

    /// Overrides the grant policy.
    pub fn with_grant(mut self, grant: GrantPolicy) -> Self {
        self.grant = grant;
        self
    }

    /// Makes moldable sessions malleable under `policy`.
    pub fn with_rescheduler(mut self, policy: ReschedulePolicy) -> Self {
        self.reschedule = Some(policy);
        self
    }
}

impl Platform for ServicePlatform {
    fn name(&self) -> &'static str {
        "service"
    }

    /// An already-instantiated policy carries no spec to price admission
    /// against, so it runs directly on the backend (relabelled); the
    /// admission path is [`Platform::run`].
    fn run_instance(
        &self,
        tree: &TaskTree,
        instance: &PolicyInstance,
    ) -> Result<RunReport, PlatformError> {
        let mut report = match self.backend {
            SessionBackend::Sim { processors } => {
                let mut sim = memtree_runtime::SimPlatform::new(processors);
                sim.reschedule = self.reschedule;
                sim.run_instance(tree, instance)?
            }
            SessionBackend::Threaded { workers, workload } => memtree_runtime::ThreadedPlatform {
                workers,
                workload,
                reschedule: self.reschedule,
            }
            .run_instance(tree, instance)?,
            SessionBackend::Async {
                workers,
                threads,
                workload,
            } => memtree_runtime::AsyncPlatform {
                workers,
                threads,
                workload,
                reschedule: self.reschedule,
            }
            .run_instance(tree, instance)?,
        };
        report.platform = self.name();
        Ok(report)
    }

    fn run(&self, tree: &TaskTree, spec: &PolicySpec) -> Result<RunReport, PlatformError> {
        let mut config = ServiceConfig::new(spec.memory)
            .with_backend(self.backend)
            .with_grant(self.grant);
        config.reschedule = self.reschedule;
        let service = Service::start(config);
        let submitted = service.submit(SessionRequest::new(spec.clone(), Arc::new(tree.clone())));
        let result = match submitted {
            Ok(ticket) => match ticket.wait() {
                Ok(outcome) => outcome.result,
                Err(_) => Err(PlatformError::Runtime(RuntimeError::WorkerPanic)),
            },
            Err(SubmitError::Infeasible(refusal)) => {
                Err(PlatformError::Sched(SchedError::InfeasibleMemory {
                    required: refusal.required(),
                    available: refusal.limit(),
                }))
            }
            Err(_) => Err(PlatformError::Runtime(RuntimeError::WorkerPanic)),
        };
        service.shutdown();
        let mut report = result?;
        report.platform = self.name();
        Ok(report)
    }
}
