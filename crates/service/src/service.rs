//! **`Service`** — the long-lived multi-tenant session server
//! (DESIGN.md §6.9).
//!
//! A [`Service`] owns one machine's memory bound `M` and serves many
//! tenants' trees against it concurrently. Submissions go through
//! [`Service::submit`]: the caller's spec and tree are priced
//! (`PolicySpec::min_feasible` — the RedTree-aware floor), the
//! coordinator's [`AdmissionController`] admits, queues or refuses, and
//! the caller gets a [`SessionTicket`] it can block on for the final
//! [`SessionOutcome`]. Admitted sessions run on their own OS thread
//! through an unmodified [`Platform`](memtree_runtime::Platform) backend
//! — the same sim/threaded/async regimes every other entry point uses —
//! with the session's spec re-bounded to its granted budget, so the
//! session's own driver ledger enforces `actual ≤ booked ≤ grant` while
//! the coordinator's [`BudgetLedger`](memtree_sched::BudgetLedger)
//! enforces `Σ grants ≤ M` across tenants.
//!
//! Completions stream back to the coordinator over a crossbeam channel
//! (exactly the merge-protocol surface of the sharded platform); each
//! one releases its grant and immediately rebalances the freed budget to
//! the queue. The coordinator is a plain event loop over messages —
//! submit, done, stats, shutdown — so admission latency is one channel
//! round trip, measured per session and reported in the outcome.

use crate::admission::{
    AdmissionController, AdmissionStats, Decision, Grant, GrantPolicy, Refusal, SessionId,
};
use crossbeam::channel::{self, Receiver, Sender};
use memtree_runtime::{
    AsyncPlatform, Platform, PlatformError, RunReport, SimPlatform, ThreadedPlatform, Workload,
};
use memtree_sched::{PolicySpec, ReschedulePolicy};
use memtree_tree::TaskTree;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One tenant's submission: a policy spec, the tree it should schedule,
/// and a queueing priority (higher admits sooner from the wait queue).
#[derive(Clone, Debug)]
pub struct SessionRequest {
    /// The policy to run — any kind, moldable caps and RedTree included;
    /// `spec.memory` is the bound the tenant *requests* (its grant never
    /// exceeds it).
    pub spec: PolicySpec,
    /// The tenant's task tree, shared so the service can run it without
    /// copying.
    pub tree: Arc<TaskTree>,
    /// Queueing priority; higher leaves the wait queue first (FIFO
    /// within a level).
    pub priority: u8,
}

impl SessionRequest {
    /// A priority-0 request.
    pub fn new(spec: PolicySpec, tree: Arc<TaskTree>) -> Self {
        SessionRequest {
            spec,
            tree,
            priority: 0,
        }
    }

    /// Overrides the queueing priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// Which single-process execution regime admitted sessions run on. The
/// spec runs unmodified on any of them — this is the same [`Platform`]
/// surface as everywhere else, selected per service.
#[derive(Clone, Copy, Debug)]
pub enum SessionBackend {
    /// The discrete-event simulator (virtual time) with `processors`
    /// simulated processors per session.
    Sim {
        /// Simulated processor count per session.
        processors: usize,
    },
    /// Real worker threads per session.
    Threaded {
        /// Worker-thread count per session.
        workers: usize,
        /// Per-task payload.
        workload: Workload,
    },
    /// The futures-backed executor — IO-bound sessions overlap on few OS
    /// threads.
    Async {
        /// Logical processor count per session.
        workers: usize,
        /// Executor OS threads per session.
        threads: usize,
        /// Per-task payload.
        workload: Workload,
    },
}

impl SessionBackend {
    /// The simulator backend with `processors` per session.
    pub fn sim(processors: usize) -> Self {
        SessionBackend::Sim { processors }
    }

    /// The threaded backend with `workers` per session and the no-op
    /// payload.
    pub fn threaded(workers: usize) -> Self {
        SessionBackend::Threaded {
            workers,
            workload: Workload::Noop,
        }
    }

    /// The async backend with `workers` logical processors on a
    /// two-thread executor and the no-op payload.
    pub fn asynchronous(workers: usize) -> Self {
        SessionBackend::Async {
            workers,
            threads: 2,
            workload: Workload::Noop,
        }
    }

    /// Stable label for reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            SessionBackend::Sim { .. } => "sim",
            SessionBackend::Threaded { .. } => "threaded",
            SessionBackend::Async { .. } => "async",
        }
    }

    /// Runs one session's spec over its tree on this regime. A
    /// `reschedule` policy makes moldable sessions malleable — the
    /// backend's feedback rescheduler resizes gangs mid-run; non-moldable
    /// specs ignore it.
    fn run(
        &self,
        tree: &TaskTree,
        spec: &PolicySpec,
        reschedule: Option<ReschedulePolicy>,
    ) -> Result<RunReport, PlatformError> {
        match *self {
            SessionBackend::Sim { processors } => {
                let mut sim = SimPlatform::new(processors);
                sim.reschedule = reschedule;
                sim.run(tree, spec)
            }
            SessionBackend::Threaded { workers, workload } => ThreadedPlatform {
                workers,
                workload,
                reschedule,
            }
            .run(tree, spec),
            SessionBackend::Async {
                workers,
                threads,
                workload,
            } => AsyncPlatform {
                workers,
                threads,
                workload,
                reschedule,
            }
            .run(tree, spec),
        }
    }
}

/// Service construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The machine's global memory bound `M` — what every tenant's grant
    /// is carved out of.
    pub memory: u64,
    /// The execution regime admitted sessions run on.
    pub backend: SessionBackend,
    /// How much of the free budget an admitted session is granted.
    pub grant: GrantPolicy,
    /// When set, moldable sessions run malleable: the backend's feedback
    /// rescheduler resizes their gangs mid-run (DESIGN.md §6.10).
    pub reschedule: Option<ReschedulePolicy>,
}

impl ServiceConfig {
    /// A service over `memory` units: simulator sessions on 4 virtual
    /// processors, [`GrantPolicy::AllAvailable`] grants, no rescheduler.
    pub fn new(memory: u64) -> Self {
        ServiceConfig {
            memory,
            backend: SessionBackend::sim(4),
            grant: GrantPolicy::AllAvailable,
            reschedule: None,
        }
    }

    /// Overrides the execution backend.
    pub fn with_backend(mut self, backend: SessionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the grant policy.
    pub fn with_grant(mut self, grant: GrantPolicy) -> Self {
        self.grant = grant;
        self
    }

    /// Makes moldable sessions malleable under `policy`.
    pub fn with_rescheduler(mut self, policy: ReschedulePolicy) -> Self {
        self.reschedule = Some(policy);
        self
    }
}

/// How a submission was received.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted immediately with this budget.
    Immediate {
        /// The reserved budget.
        budget: u64,
    },
    /// Feasible but parked in the wait queue behind `position` sessions.
    Queued {
        /// Sessions ahead in the queue at submission time.
        position: usize,
    },
}

/// Why a submission returned no ticket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Refused by admission control: infeasible even alone (see
    /// [`Refusal`]). The service-level spelling of
    /// `SchedError::InfeasibleMemory`.
    Infeasible(Refusal),
    /// The service is draining (shutdown requested) and accepts no new
    /// sessions.
    Draining,
    /// The coordinator is gone (a service bug — the coordinator never
    /// exits while a handle is live unless it panicked).
    ServiceDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Infeasible(r) => write!(f, "admission refused: {r}"),
            SubmitError::Draining => write!(f, "service is draining"),
            SubmitError::ServiceDown => write!(f, "service coordinator is gone"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The final outcome of one session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The session's id.
    pub id: SessionId,
    /// The budget it ran under.
    pub budget: u64,
    /// Submit-to-admission wait (≈ 0 for immediate admissions; the
    /// queueing delay otherwise) — the quantity the service bench
    /// reports as admission latency.
    pub admission_wait: Duration,
    /// The run's report, or how it failed.
    pub result: Result<RunReport, PlatformError>,
}

/// A submitted session's handle: how it was admitted plus a blocking
/// wait for its outcome.
pub struct SessionTicket {
    /// The session's service-wide id.
    pub id: SessionId,
    /// Immediate or queued.
    pub admission: Admission,
    done: Receiver<SessionOutcome>,
}

impl SessionTicket {
    /// Blocks until the session completes.
    ///
    /// # Errors
    /// [`SubmitError::ServiceDown`] when the coordinator died before
    /// delivering the outcome.
    pub fn wait(self) -> Result<SessionOutcome, SubmitError> {
        self.done.recv().map_err(|_| SubmitError::ServiceDown)
    }
}

impl std::fmt::Debug for SessionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTicket")
            .field("id", &self.id)
            .field("admission", &self.admission)
            .finish_non_exhaustive()
    }
}

/// A live snapshot / final summary of the service's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// The global memory bound `M`.
    pub capacity: u64,
    /// Admission counters (submitted / admitted / queued / refused /
    /// completed).
    pub admission: AdmissionStats,
    /// Sessions whose run returned an error (a subset of completed).
    pub failed: u64,
    /// Currently running sessions.
    pub running: usize,
    /// Currently queued sessions.
    pub queued: usize,
    /// High-water mark of `Σ` granted budgets — the service-level
    /// booking peak, provably ≤ `capacity` (the ledger hard-errors past
    /// it).
    pub peak_reserved: u64,
    /// High-water mark of concurrently running sessions.
    pub peak_running: usize,
}

enum Msg {
    Submit {
        id: SessionId,
        req: SessionRequest,
        floor: u64,
        submitted_at: Instant,
        reply: Sender<Result<(Admission, Receiver<SessionOutcome>), SubmitError>>,
    },
    Done {
        id: SessionId,
        result: Box<Result<RunReport, PlatformError>>,
    },
    Stats {
        reply: Sender<ServiceStats>,
    },
    Shutdown {
        reply: Sender<ServiceStats>,
    },
}

/// The long-lived session server; see the module docs.
///
/// Dropping the service without [`Service::shutdown`] drains it
/// (running and queued sessions complete) before the coordinator exits.
pub struct Service {
    tx: Sender<Msg>,
    coordinator: Option<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Starts the coordinator for a service over `config`.
    pub fn start(config: ServiceConfig) -> Self {
        let (tx, rx) = channel::unbounded::<Msg>();
        let done_tx = tx.clone();
        let coordinator = std::thread::Builder::new()
            .name("memtree-service".into())
            .spawn(move || Coordinator::new(config, done_tx).run(rx))
            .map_err(|err| {
                // No coordinator thread (resource exhaustion): the
                // receiver just died with the failed closure, so every
                // submit observes the closed channel and returns
                // `SubmitError::ServiceDown` — degraded, never panicked.
                eprintln!("memtree-service: coordinator spawn failed ({err}); service is down");
            })
            .ok();
        Service {
            tx,
            coordinator,
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits a session: prices its feasibility floor
    /// ([`PolicySpec::min_feasible`] — RedTree-aware, computed on the
    /// caller's thread so a large tree never blocks the coordinator),
    /// asks admission control, and returns the ticket.
    ///
    /// # Errors
    /// [`SubmitError::Infeasible`] when the session could not run even
    /// alone, [`SubmitError::Draining`] after shutdown started.
    pub fn submit(&self, req: SessionRequest) -> Result<SessionTicket, SubmitError> {
        let floor = req.spec.min_feasible(&req.tree);
        // ordering: Relaxed — ticket ids only need uniqueness; every
        // transfer of session state rides the coordinator channel.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel::unbounded();
        self.tx
            .send(Msg::Submit {
                id,
                req,
                floor,
                submitted_at: Instant::now(),
                reply: reply_tx,
            })
            .map_err(|_| SubmitError::ServiceDown)?;
        let (admission, done) = reply_rx.recv().map_err(|_| SubmitError::ServiceDown)??;
        Ok(SessionTicket {
            id,
            admission,
            done,
        })
    }

    /// A live snapshot of the service counters.
    ///
    /// # Errors
    /// [`SubmitError::ServiceDown`] when the coordinator is gone.
    pub fn stats(&self) -> Result<ServiceStats, SubmitError> {
        let (reply_tx, reply_rx) = channel::unbounded();
        self.tx
            .send(Msg::Stats { reply: reply_tx })
            .map_err(|_| SubmitError::ServiceDown)?;
        reply_rx.recv().map_err(|_| SubmitError::ServiceDown)
    }

    /// Drains the service — every running and queued session completes,
    /// new submissions are refused — and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner().unwrap_or_default()
    }

    fn shutdown_inner(&mut self) -> Option<ServiceStats> {
        let (reply_tx, reply_rx) = channel::unbounded();
        let stats = match self.tx.send(Msg::Shutdown { reply: reply_tx }) {
            Ok(()) => reply_rx.recv().ok(),
            Err(_) => None,
        };
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        stats
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("sessions_issued", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// A session the coordinator is tracking (running or queued).
struct Session {
    req: SessionRequest,
    done_tx: Sender<SessionOutcome>,
    submitted_at: Instant,
    /// Set at admission.
    granted: Option<Grant>,
    admitted_at: Option<Instant>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct Coordinator {
    config: ServiceConfig,
    controller: AdmissionController,
    sessions: HashMap<SessionId, Session>,
    /// The coordinator's own sender, cloned into session threads so
    /// completions stream back as messages.
    self_tx: Sender<Msg>,
    failed: u64,
    draining: Option<Sender<ServiceStats>>,
}

impl Coordinator {
    fn new(config: ServiceConfig, self_tx: Sender<Msg>) -> Self {
        Coordinator {
            controller: AdmissionController::new(config.memory, config.grant),
            config,
            sessions: HashMap::new(),
            self_tx,
            failed: 0,
            draining: None,
        }
    }

    fn run(mut self, rx: Receiver<Msg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Submit {
                    id,
                    req,
                    floor,
                    submitted_at,
                    reply,
                } => self.on_submit(id, req, floor, submitted_at, reply),
                Msg::Done { id, result } => self.on_done(id, *result),
                Msg::Stats { reply } => {
                    let _ = reply.send(self.stats());
                }
                Msg::Shutdown { reply } => {
                    self.draining = Some(reply);
                }
            }
            if let Some(reply) = &self.draining {
                if self.sessions.is_empty() {
                    let _ = reply.send(self.stats());
                    break;
                }
            }
        }
        // Handles of sessions that completed in the final iteration were
        // already joined in on_done; anything left here means the channel
        // closed mid-flight — join to avoid leaking threads.
        for (_, s) in self.sessions.drain() {
            if let Some(handle) = s.handle {
                let _ = handle.join();
            }
        }
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats {
            capacity: self.controller.capacity(),
            admission: self.controller.stats(),
            failed: self.failed,
            running: self.controller.running(),
            queued: self.controller.queue_len(),
            peak_reserved: self.controller.peak_reserved(),
            peak_running: self.controller.peak_running(),
        }
    }

    #[allow(clippy::type_complexity)]
    fn on_submit(
        &mut self,
        id: SessionId,
        req: SessionRequest,
        floor: u64,
        submitted_at: Instant,
        reply: Sender<Result<(Admission, Receiver<SessionOutcome>), SubmitError>>,
    ) {
        if self.draining.is_some() {
            let _ = reply.send(Err(SubmitError::Draining));
            return;
        }
        let decision = match self
            .controller
            .submit(id, floor, req.spec.memory, req.priority)
        {
            Ok(d) => d,
            // Ids are coordinator-assigned and unique; a controller error
            // here is a service bug — surface it as a refused submission
            // rather than poisoning the coordinator.
            Err(e) => {
                panic!("admission controller rejected a coordinator-assigned id: {e}")
            }
        };
        match decision {
            Decision::Refused(r) => {
                let _ = reply.send(Err(SubmitError::Infeasible(r)));
            }
            Decision::Admitted(grant) => {
                let (done_tx, done_rx) = channel::unbounded();
                let mut session = Session {
                    req,
                    done_tx,
                    submitted_at,
                    granted: Some(grant),
                    admitted_at: Some(Instant::now()),
                    handle: None,
                };
                Self::launch(&self.config, &self.self_tx, grant, &mut session);
                self.sessions.insert(id, session);
                let _ = reply.send(Ok((
                    Admission::Immediate {
                        budget: grant.budget,
                    },
                    done_rx,
                )));
            }
            Decision::Queued { position } => {
                let (done_tx, done_rx) = channel::unbounded();
                self.sessions.insert(
                    id,
                    Session {
                        req,
                        done_tx,
                        submitted_at,
                        granted: None,
                        admitted_at: None,
                        handle: None,
                    },
                );
                let _ = reply.send(Ok((Admission::Queued { position }, done_rx)));
            }
        }
    }

    fn on_done(&mut self, id: SessionId, result: Result<RunReport, PlatformError>) {
        // Ledger or session-map misses here are coordinator invariant
        // violations. They are logged loudly and survived — one corrupt
        // session must degrade, not take the whole coordinator thread
        // (and with it every tenant) down with a panic.
        let completion = match self.controller.complete(id) {
            Ok(c) => c,
            Err(err) => {
                eprintln!("memtree-service: completion for unlaunched session {id}: {err}");
                return;
            }
        };
        if result.is_err() {
            self.failed += 1;
        }
        match self.sessions.remove(&id) {
            Some(mut session) => {
                if let Some(handle) = session.handle.take() {
                    let _ = handle.join();
                }
                let outcome = SessionOutcome {
                    id,
                    budget: completion.released,
                    admission_wait: session
                        .admitted_at
                        .unwrap_or(session.submitted_at)
                        .duration_since(session.submitted_at),
                    result,
                };
                // The ticket may have been dropped; the outcome is then
                // simply unobserved.
                let _ = session.done_tx.send(outcome);
            }
            None => {
                eprintln!("memtree-service: completed session {id} was not tracked");
            }
        }
        // Rebalance: the freed budget admits queued sessions right now.
        for grant in completion.admitted {
            let grant_id = grant.session;
            let Some(session) = self.sessions.get_mut(&grant_id) else {
                eprintln!("memtree-service: admission granted to untracked session {grant_id}");
                continue;
            };
            session.granted = Some(grant);
            session.admitted_at = Some(Instant::now());
            Self::launch(&self.config, &self.self_tx, grant, session);
        }
    }

    /// Spawns one admitted session's worker thread: the tenant's spec,
    /// re-bounded to the granted budget, runs on the configured backend;
    /// the completion streams back as a [`Msg::Done`]. A panicking run
    /// becomes an error message, never a silent death — the coordinator's
    /// only view of the session is the channel.
    fn launch(config: &ServiceConfig, self_tx: &Sender<Msg>, grant: Grant, session: &mut Session) {
        let backend = config.backend;
        let reschedule = config.reschedule;
        let spec = session.req.spec.clone().with_memory(grant.budget);
        let tree = session.req.tree.clone();
        let tx = self_tx.clone();
        let id = grant.session;
        let spawned = std::thread::Builder::new()
            .name(format!("memtree-session-{id}"))
            .spawn(move || {
                let result =
                    catch_unwind(AssertUnwindSafe(|| backend.run(&tree, &spec, reschedule)))
                        .unwrap_or(Err(PlatformError::Runtime(
                            memtree_runtime::RuntimeError::WorkerPanic,
                        )));
                let _ = tx.send(Msg::Done {
                    id,
                    result: Box::new(result),
                });
            });
        match spawned {
            Ok(handle) => session.handle = Some(handle),
            Err(err) => {
                // Out of threads: fail this session through the normal
                // Done path so its budget is released and its ticket
                // resolves, instead of panicking the coordinator or
                // leaking a granted-but-never-run session.
                eprintln!("memtree-service: session worker spawn failed for {id}: {err}");
                let _ = self_tx.send(Msg::Done {
                    id,
                    result: Box::new(Err(PlatformError::Runtime(
                        memtree_runtime::RuntimeError::Protocol(format!(
                            "session worker spawn failed: {err}"
                        )),
                    ))),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_sched::HeuristicKind;

    fn arc_tree(n: usize, seed: u64) -> Arc<TaskTree> {
        Arc::new(memtree_gen::synthetic::paper_tree(n, seed))
    }

    #[test]
    fn one_session_runs_to_completion() {
        let tree = arc_tree(120, 5);
        let floor = memtree_sched::min_feasible_memory(&tree);
        let service = Service::start(ServiceConfig::new(floor * 4));
        let spec = PolicySpec::new(HeuristicKind::MemBooking, floor * 4);
        let ticket = service
            .submit(SessionRequest::new(spec, tree.clone()))
            .unwrap();
        assert!(matches!(ticket.admission, Admission::Immediate { .. }));
        let outcome = ticket.wait().unwrap();
        let report = outcome.result.unwrap();
        assert_eq!(report.tasks_run, tree.len());
        assert!(report.peak_booked <= floor * 4);
        let stats = service.shutdown();
        assert_eq!(stats.admission.completed, 1);
        assert_eq!(stats.failed, 0);
        assert!(stats.peak_reserved <= stats.capacity);
    }

    #[test]
    fn rescheduled_moldable_session_completes_in_envelope() {
        let tree = arc_tree(100, 7);
        let floor = memtree_sched::min_feasible_memory(&tree);
        let workers = 3;
        let service = Service::start(
            ServiceConfig::new(floor * 4)
                .with_backend(SessionBackend::Threaded {
                    workers,
                    workload: Workload::Noop,
                })
                .with_rescheduler(ReschedulePolicy::default()),
        );
        let caps = memtree_sched::AllotmentCaps::uniform(&tree, workers as u32);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, floor * 4).with_caps(caps);
        let ticket = service
            .submit(SessionRequest::new(spec, tree.clone()))
            .unwrap();
        let outcome = ticket.wait().unwrap();
        let report = outcome.result.unwrap();
        assert_eq!(report.tasks_run, tree.len());
        assert!(report.peak_booked <= floor * 4);
        assert!(report.peak_actual <= report.peak_booked);
        let stats = service.shutdown();
        assert_eq!(stats.admission.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn infeasible_submission_is_refused_not_queued() {
        let tree = arc_tree(80, 9);
        let floor = memtree_sched::min_feasible_memory(&tree);
        let service = Service::start(ServiceConfig::new(floor * 4));
        // Requests less memory than its own floor.
        let spec = PolicySpec::new(HeuristicKind::MemBooking, floor - 1);
        let err = service
            .submit(SessionRequest::new(spec, tree.clone()))
            .unwrap_err();
        assert!(matches!(err, SubmitError::Infeasible(_)), "got {err}");
        // A floor over the whole machine is refused too.
        let spec = PolicySpec::new(HeuristicKind::MemBooking, floor * 100);
        let service_small = Service::start(ServiceConfig::new(floor - 1));
        let err = service_small
            .submit(SessionRequest::new(spec, tree))
            .unwrap_err();
        assert!(matches!(err, SubmitError::Infeasible(_)), "got {err}");
        let stats = service.shutdown();
        assert_eq!(stats.admission.refused, 1);
        assert_eq!(stats.admission.admitted, 0);
    }

    #[test]
    fn contended_tenants_queue_and_all_complete() {
        let tree = arc_tree(150, 11);
        let floor = memtree_sched::min_feasible_memory(&tree);
        // Room for ~2 minimum-grant tenants at a time, 6 tenants total.
        // Sessions sleep per task so they are still running when later
        // tenants arrive — queueing is then guaranteed, not a race.
        let service = Service::start(
            ServiceConfig::new(floor * 2 + 1)
                .with_backend(SessionBackend::Threaded {
                    workers: 2,
                    workload: Workload::quick(),
                })
                .with_grant(GrantPolicy::Minimum),
        );
        let tickets: Vec<SessionTicket> = (0..6)
            .map(|k| {
                let spec = PolicySpec::new(HeuristicKind::MemBooking, floor * 2);
                service
                    .submit(SessionRequest::new(spec, tree.clone()).with_priority(k as u8))
                    .unwrap()
            })
            .collect();
        for ticket in tickets {
            let outcome = ticket.wait().unwrap();
            let report = outcome.result.unwrap();
            assert_eq!(report.tasks_run, tree.len());
            assert!(outcome.budget >= floor);
        }
        let stats = service.shutdown();
        assert_eq!(stats.admission.completed, 6);
        assert!(stats.admission.queued >= 1, "contention must have queued");
        assert!(stats.peak_reserved <= stats.capacity);
        assert_eq!(stats.running, 0);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn draining_service_refuses_new_sessions() {
        let tree = arc_tree(60, 3);
        let floor = memtree_sched::min_feasible_memory(&tree);
        let service = Service::start(ServiceConfig::new(floor * 4));
        let spec = PolicySpec::new(HeuristicKind::MemBooking, floor * 2);
        let ticket = service
            .submit(SessionRequest::new(spec, tree.clone()))
            .unwrap();
        let outcome = ticket.wait().unwrap();
        assert!(outcome.result.is_ok());
        // After shutdown the handle is consumed; a fresh service proves
        // the Draining refusal by racing a shutdown... which is timing-
        // dependent, so instead assert the final stats are a drain.
        let stats = service.shutdown();
        assert_eq!(stats.running, 0);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn stats_snapshot_is_live() {
        let tree = arc_tree(100, 21);
        let floor = memtree_sched::min_feasible_memory(&tree);
        let service = Service::start(ServiceConfig::new(floor * 8));
        let stats = service.stats().unwrap();
        assert_eq!(stats.capacity, floor * 8);
        assert_eq!(stats.admission.submitted, 0);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, floor * 2);
        let ticket = service
            .submit(SessionRequest::new(spec, tree.clone()))
            .unwrap();
        let stats = service.stats().unwrap();
        assert_eq!(stats.admission.submitted, 1);
        ticket.wait().unwrap().result.unwrap();
        service.shutdown();
    }
}
