//! Property tests for the admission controller under random
//! arrival/completion churn (DESIGN.md §6.9): whatever interleaving of
//! submissions and completions, under every grant policy —
//!
//! * every admitted session's budget is at least its feasibility floor
//!   and at most `min(requested, capacity)`;
//! * `Σ` running budgets equals the ledger's reservation and never
//!   exceeds `M`, at every step (the booking envelope, one level up);
//! * refused sessions are exactly those infeasible even with the whole
//!   machine to themselves — everything else is admitted or queued;
//! * once arrivals cease, draining the running set admits and completes
//!   every queued session: no feasible session starves.
//!
//! The controller is pure (no threads, no clocks), so these runs explore
//! thousands of interleavings the live coordinator would need races to
//! reach.

use memtree_service::{AdmissionController, Decision, GrantPolicy};
use proptest::prelude::*;

/// One random churn event: `kind` selects submit vs complete, the rest
/// parameterise the submission.
type Op = (u8, u64, u64, u8);

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 1u64..300, 1u64..500, 0u8..4), max_len)
}

const POLICIES: [GrantPolicy; 4] = [
    GrantPolicy::AllAvailable,
    GrantPolicy::Minimum,
    GrantPolicy::Scaled(1.5),
    GrantPolicy::Scaled(4.0),
];

/// `Σ` running budgets must equal the ledger and stay within `M`.
fn assert_books_balance(c: &AdmissionController) {
    let sum: u64 = c
        .running_sessions()
        .iter()
        .map(|&id| c.budget_of(id).unwrap())
        .sum();
    assert_eq!(sum, c.reserved(), "ledger drifted from the running set");
    assert!(c.reserved() <= c.capacity(), "Σ budgets over the bound");
    assert!(c.peak_reserved() <= c.capacity());
}

/// A freshly admitted grant's bounds.
fn assert_grant_bounds(c: &AdmissionController, budget: u64, floor: u64, requested: u64) {
    let floor = floor.max(1);
    assert!(budget >= floor, "granted {budget} below the floor {floor}");
    assert!(
        budget <= requested.min(c.capacity()),
        "granted {budget} over min(request {requested}, capacity {})",
        c.capacity()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full invariant set under random churn, for every grant policy.
    #[test]
    fn churn_preserves_admission_invariants(
        capacity in 20u64..400,
        ops in arb_ops(60),
    ) {
        for grant in POLICIES {
            let mut c = AdmissionController::new(capacity, grant);
            let mut next_id = 0u64;
            // floor/request of every submission, admitted or queued, for
            // re-checking grants at rebalance time.
            let mut asked: std::collections::HashMap<u64, (u64, u64)> =
                std::collections::HashMap::new();

            for &(kind, floor, requested, priority) in &ops {
                if kind == 0 && c.running() > 0 {
                    // Complete a pseudo-random running session.
                    let running = c.running_sessions();
                    let victim = running[(floor as usize) % running.len()];
                    let done = c.complete(victim).unwrap();
                    prop_assert!(done.released >= 1);
                    for g in &done.admitted {
                        let (f, r) = asked[&g.session];
                        assert_grant_bounds(&c, g.budget, f, r);
                    }
                } else {
                    let id = next_id;
                    next_id += 1;
                    let decision = c.submit(id, floor, requested, priority).unwrap();
                    let feasible =
                        floor.max(1) <= requested && floor.max(1) <= capacity;
                    match decision {
                        Decision::Refused(_) => {
                            prop_assert!(
                                !feasible,
                                "refused a feasible session (floor {floor}, req {requested}, M {capacity})"
                            );
                        }
                        Decision::Admitted(g) => {
                            prop_assert!(feasible);
                            assert_grant_bounds(&c, g.budget, floor, requested);
                            asked.insert(id, (floor, requested));
                        }
                        Decision::Queued { .. } => {
                            prop_assert!(feasible, "queued an infeasible session");
                            asked.insert(id, (floor, requested));
                        }
                    }
                }
                assert_books_balance(&c);
            }

            // Arrivals have ceased: drain. Every completion returns its
            // whole grant, so the queue must fully empty — no feasible
            // session starves.
            let mut steps = 0;
            while c.running() > 0 {
                let victim = c.running_sessions()[0];
                let done = c.complete(victim).unwrap();
                for g in &done.admitted {
                    let (f, r) = asked[&g.session];
                    assert_grant_bounds(&c, g.budget, f, r);
                }
                assert_books_balance(&c);
                steps += 1;
                prop_assert!(steps <= ops.len() + 1, "drain did not terminate");
            }
            prop_assert_eq!(c.queue_len(), 0, "a queued session starved");
            prop_assert_eq!(c.reserved(), 0u64, "budget leaked through the drain");

            // Counter bookkeeping closes: everyone submitted was refused
            // or admitted (queued sessions were admitted by the drain),
            // and everyone admitted completed.
            let s = c.stats();
            prop_assert_eq!(s.submitted, s.admitted + s.refused);
            prop_assert_eq!(s.admitted, s.completed);
        }
    }

    /// Priority inversion never strands budget: with FIFO-within-level
    /// priority queueing, a completed machine always readmits the
    /// highest-priority fitting session first.
    #[test]
    fn rebalance_respects_priority_order(
        capacity in 50u64..200,
        floors in proptest::collection::vec((1u64..100, 0u8..4), 12),
    ) {
        let mut c = AdmissionController::new(capacity, GrantPolicy::Minimum);
        // Fill the machine with one session, queue the rest.
        c.submit(9999, capacity, capacity, 0).unwrap();
        let mut queued: Vec<(u64, u64, u8)> = Vec::new();
        for (i, &(floor, priority)) in floors.iter().enumerate() {
            let id = i as u64;
            if let Decision::Queued { .. } = c.submit(id, floor, capacity, priority).unwrap() {
                queued.push((id, floor, priority));
            }
        }
        let done = c.complete(9999).unwrap();
        // The admitted prefix must be a greedy scan of the queue in
        // (priority desc, arrival asc) order.
        queued.sort_by_key(|&(id, _, priority)| (std::cmp::Reverse(priority), id));
        let mut free = capacity;
        let mut expected = Vec::new();
        for &(id, floor, _) in &queued {
            if floor <= free {
                expected.push(id);
                free -= floor;
            }
        }
        let got: Vec<u64> = done.admitted.iter().map(|g| g.session).collect();
        prop_assert_eq!(got, expected);
    }
}
