//! The shared platform invariant suite, stamped over the service
//! (DESIGN.md §7): the service is a `Platform` like any other, so the
//! same contract — every kind completes inside the envelope, infeasible
//! bounds are distinguishable, completion sets are deterministic,
//! moldable and transforming specs are first-class — holds when every
//! run goes through admission control.

memtree_runtime::platform_conformance!(
    service_over_sim,
    ::memtree_service::ServicePlatform::new(::memtree_service::SessionBackend::sim(4))
);

memtree_runtime::platform_conformance!(
    service_over_threaded,
    ::memtree_service::ServicePlatform::new(::memtree_service::SessionBackend::threaded(2))
);

memtree_runtime::platform_conformance!(
    service_over_async,
    ::memtree_service::ServicePlatform::new(::memtree_service::SessionBackend::asynchronous(2))
);
