//! Differential tests: a single-tenant, no-contention service run must be
//! the direct `Platform::run` — same completion set, same policy
//! decisions, same booking peaks (DESIGN.md §6.9).
//!
//! Under [`GrantPolicy::AllAvailable`] a lone tenant is granted exactly
//! the bound it requested, so the spec the session thread executes is the
//! very spec a direct run would execute. On the deterministic regimes —
//! the simulator at any `p`, the threaded and async executors at one
//! worker — the comparison is bit-for-bit on makespan and both peaks; on
//! multi-worker regimes execution interleaving moves bookings around, so
//! the contract is completion set, policy and envelope.
//!
//! Worker counts are pinned per CI job through `MEMTREE_TEST_WORKERS`,
//! like every other differential suite in the workspace.

use memtree_runtime::{
    AsyncPlatform, Platform, RuntimeConfig, SimPlatform, ThreadedPlatform, Workload,
};
use memtree_sched::{HeuristicKind, PolicySpec};
use memtree_service::{ServicePlatform, SessionBackend};
use memtree_tree::TaskTree;

fn worker_counts() -> Vec<usize> {
    RuntimeConfig::worker_counts_from_env(&[1, 2, 4])
}

fn roomy(tree: &TaskTree) -> u64 {
    memtree_sched::min_feasible_memory(tree) * 1000
}

/// Bit-for-bit: identical policy decisions, completion set, event count
/// and both booking peaks. The executors' makespan is wall-clock (only
/// the simulator's is virtual time), so it is compared only where
/// `virtual_time` holds; wall-clock fields are allowed to differ.
fn assert_bit_for_bit(
    ctx: &str,
    direct: &memtree_runtime::RunReport,
    via: &memtree_runtime::RunReport,
    virtual_time: bool,
) {
    assert_eq!(via.platform, "service", "{ctx}: report relabelled");
    assert_eq!(direct.policy, via.policy, "{ctx}: policy");
    assert_eq!(direct.tasks_run, via.tasks_run, "{ctx}: tasks");
    if virtual_time {
        assert_eq!(direct.makespan, via.makespan, "{ctx}: makespan");
    }
    assert_eq!(direct.peak_booked, via.peak_booked, "{ctx}: peak booked");
    assert_eq!(direct.peak_actual, via.peak_actual, "{ctx}: peak actual");
    assert_eq!(direct.events, via.events, "{ctx}: events");
}

/// The simulator is deterministic at any processor count: a lone service
/// tenant reproduces the direct run bit-for-bit for every policy kind.
#[test]
fn sim_single_tenant_is_bit_for_bit() {
    for seed in [3, 31] {
        let tree = memtree_gen::synthetic::paper_tree(160, seed);
        let m = roomy(&tree);
        for p in [1, 4] {
            for kind in HeuristicKind::all() {
                let spec = PolicySpec::new(kind, m);
                let direct = SimPlatform::new(p).run(&tree, &spec).unwrap();
                let via = ServicePlatform::new(SessionBackend::sim(p))
                    .run(&tree, &spec)
                    .unwrap();
                assert_bit_for_bit(&format!("sim p={p} {kind}"), &direct, &via, true);
            }
        }
    }
}

/// One worker makes the threaded executor deterministic; the service is
/// bit-for-bit there. With more workers the completion set, policy and
/// envelope still match.
#[test]
fn threaded_single_tenant_matches_direct_runs() {
    let tree = memtree_gen::synthetic::paper_tree(120, 8);
    let m = roomy(&tree);
    for workers in worker_counts() {
        let backend = SessionBackend::Threaded {
            workers,
            workload: Workload::Noop,
        };
        for kind in HeuristicKind::all() {
            let spec = PolicySpec::new(kind, m);
            let direct = ThreadedPlatform::new(workers).run(&tree, &spec).unwrap();
            let via = ServicePlatform::new(backend).run(&tree, &spec).unwrap();
            let ctx = format!("threaded w={workers} {kind}");
            if workers == 1 {
                assert_bit_for_bit(&ctx, &direct, &via, false);
            } else {
                assert_eq!(direct.tasks_run, via.tasks_run, "{ctx}: tasks");
                assert_eq!(direct.policy, via.policy, "{ctx}: policy");
                assert!(via.peak_booked <= m, "{ctx}: envelope");
                assert!(via.peak_actual <= via.peak_booked, "{ctx}: envelope");
            }
        }
    }
}

/// Same contract on the async executor.
#[test]
fn async_single_tenant_matches_direct_runs() {
    let tree = memtree_gen::synthetic::paper_tree(100, 12);
    let m = roomy(&tree);
    for workers in worker_counts() {
        let backend = SessionBackend::Async {
            workers,
            threads: 2,
            workload: Workload::Noop,
        };
        for kind in HeuristicKind::all() {
            let spec = PolicySpec::new(kind, m);
            let direct = AsyncPlatform {
                workers,
                threads: 2,
                workload: Workload::Noop,
                reschedule: None,
            }
            .run(&tree, &spec)
            .unwrap();
            let via = ServicePlatform::new(backend).run(&tree, &spec).unwrap();
            let ctx = format!("async w={workers} {kind}");
            if workers == 1 {
                assert_bit_for_bit(&ctx, &direct, &via, false);
            } else {
                assert_eq!(direct.tasks_run, via.tasks_run, "{ctx}: tasks");
                assert_eq!(direct.policy, via.policy, "{ctx}: policy");
                assert!(via.peak_booked <= m, "{ctx}: envelope");
                assert!(via.peak_actual <= via.peak_booked, "{ctx}: envelope");
            }
        }
    }
}

/// Refusal parity: the service refuses an infeasible spec with the same
/// distinguishable error a direct run produces — admission never converts
/// a feasibility refusal into a hang or a panic.
#[test]
fn infeasible_specs_are_refused_identically() {
    let tree = memtree_gen::synthetic::paper_tree(70, 4);
    let min = memtree_sched::min_feasible_memory(&tree);
    let spec = PolicySpec::new(HeuristicKind::MemBooking, min - 1);
    let direct_err = SimPlatform::new(4).run(&tree, &spec).unwrap_err();
    let via_err = ServicePlatform::new(SessionBackend::sim(4))
        .run(&tree, &spec)
        .unwrap_err();
    assert!(direct_err.is_infeasible());
    assert!(via_err.is_infeasible(), "got {via_err}");
}
