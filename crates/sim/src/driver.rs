//! The shared event-loop driver behind every execution platform.
//!
//! The discrete-event engine ([`crate::simulate`]) and the threaded runtime
//! (`memtree_runtime::execute`) used to each hand-roll the same loop:
//! deliver a completion batch to the scheduler, start the requested tasks,
//! re-check the booking invariants, drain the next batch. The only genuine
//! difference between them is *where completions come from* — a virtual
//! clock or real worker threads. [`drive_gang`] owns the loop once; a
//! [`GangBackend`] supplies the completions.
//!
//! The loop is **gang-aware**: every start carries a processor allotment
//! `q ≥ 1`, and the driver's capacity ledger counts processors, not tasks,
//! so a moldable policy ([`MoldableScheduler`]) runs under exactly the same
//! contract as a sequential one. The classic single-processor-per-task
//! regime ([`drive`] + [`Backend`] + [`crate::Scheduler`]) is a thin
//! adapter that pins every allotment to 1 — one loop, one contract, every
//! platform.
//!
//! The driver enforces the full scheduler contract on every platform:
//!
//! * precedence — a started task has all children finished;
//! * single start — no task starts twice;
//! * capacity — the live allotments sum to at most `p` (at most `idle`
//!   processors claimed per event), and no gang is ever launched without
//!   its full processor complement free;
//! * booking — `actual ≤ booked ≤ M` at every event (configurable);
//! * progress — no event may leave zero tasks in flight while the tree is
//!   unfinished (the stall/deadlock check).
//!
//! This is strictly stronger than the old threaded executor, which only
//! checked the booking ledger.

use crate::moldable::MoldableScheduler;
use crate::scheduler::Scheduler;
use memtree_tree::memory::LiveSet;
use memtree_tree::{BitSet, NodeId, TaskTree};

/// Driver configuration shared by all platforms.
#[derive(Clone, Copy, Debug)]
pub struct DriveConfig {
    /// Number of processors / worker threads (the model's `p`).
    pub workers: usize,
    /// Shared memory bound `M` (model units).
    pub memory: u64,
    /// Check `actual ≤ booked ≤ M` at every event. Booking-sound
    /// schedulers (all of the paper's) must pass; disable only for
    /// deliberately unsound baselines.
    pub enforce_booking: bool,
    /// Measure wall-clock time spent inside scheduler callbacks.
    pub measure_overhead: bool,
}

impl DriveConfig {
    /// `workers` processors and memory `M`, all checks on.
    pub fn new(workers: usize, memory: u64) -> Self {
        DriveConfig {
            workers,
            memory,
            enforce_booking: true,
            measure_overhead: true,
        }
    }
}

/// Live snapshot of one running gang, taken between events for a
/// [`Rescheduler`].
#[derive(Clone, Copy, Debug)]
pub struct GangSnapshot {
    /// The running task.
    pub node: NodeId,
    /// Processors currently allotted to it.
    pub allotment: u32,
    /// Payload shards the gang was launched with (0 when the backend does
    /// not track shard progress — e.g. the unit-allotment adapters).
    pub shards: u32,
    /// Shards already completed.
    pub shards_done: u32,
}

impl GangSnapshot {
    /// Fraction of the payload still to run, in `[0, 1]`. Backends that
    /// report no progress count as all-remaining (1.0).
    pub fn remaining_fraction(&self) -> f64 {
        if self.shards == 0 {
            return 1.0;
        }
        1.0 - (self.shards_done.min(self.shards) as f64 / self.shards as f64)
    }
}

/// Snapshot of the driver's state between events, handed to a
/// [`Rescheduler`] once per event (after starts and invariant checks,
/// before the driver blocks for the next completion batch).
#[derive(Clone, Debug)]
pub struct LiveStats {
    /// The current event index (1-based; the initial event is 1).
    pub event: u64,
    /// Configured processor count `p`.
    pub workers: usize,
    /// Processors currently claimed by running gangs (Σ allotments).
    pub busy: usize,
    /// Processors idle (`workers − busy`).
    pub idle: usize,
    /// Tasks completed so far.
    pub completed: usize,
    /// Total tasks in the tree.
    pub total: usize,
    /// Tasks the scheduler reports ready-but-not-started (0 when the
    /// policy does not track a ready set).
    pub ready_depth: usize,
    /// Memory currently booked by the policy.
    pub booked: u64,
    /// Actual resident memory at this instant.
    pub actual: u64,
    /// One snapshot per running gang, in ascending node id.
    pub gangs: Vec<GangSnapshot>,
}

/// An allotment change requested by a [`Rescheduler`]. The driver applies
/// actions in order and keeps its processor ledger exact: growing claims
/// idle processors immediately, shrinking returns them immediately (the
/// backend retires the members at the next chunk boundary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RescheduleAction {
    /// Add `extra` processors to the running gang of `node`.
    Grow {
        /// The running task to grow.
        node: NodeId,
        /// Processors to add (must be ≤ the idle pool at application).
        extra: usize,
    },
    /// Release `release` processors from the running gang of `node`
    /// (its allotment must stay ≥ 1).
    Shrink {
        /// The running task to shrink.
        node: NodeId,
        /// Processors to release.
        release: usize,
    },
}

/// A feedback policy over the gang driver: once per event the driver
/// hands it a [`LiveStats`] snapshot and applies whatever allotment
/// changes it pushes (malleable tasks — DESIGN.md §6.10).
pub trait Rescheduler {
    /// Inspect the live state and push allotment changes. Called between
    /// events with at least one task in flight; illegal actions (growing
    /// past the idle pool, shrinking to zero, resizing a task that is not
    /// running) abort the run loudly.
    fn tick(&mut self, stats: &LiveStats, actions: &mut Vec<RescheduleAction>);
}

impl<R: Rescheduler + ?Sized> Rescheduler for &mut R {
    fn tick(&mut self, stats: &LiveStats, actions: &mut Vec<RescheduleAction>) {
        (**self).tick(stats, actions)
    }
}

/// What the driver learned from a completed run.
#[derive(Clone, Copy, Debug)]
pub struct DriveStats {
    /// Events processed (task-completion batches + the initial event).
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
    /// Peak memory booked by the policy.
    pub peak_booked: u64,
    /// Peak model-level resident memory (replayed by the driver).
    pub peak_actual: u64,
    /// Tasks completed (the full tree on success).
    pub completed: usize,
    /// Peak sum of live allotments (busy processors). Always ≤ the
    /// configured worker count — the driver rejects the start otherwise.
    pub peak_busy: usize,
}

/// Errors raised by [`drive`]; the platforms map these onto their public
/// error types.
#[derive(Clone, Debug, PartialEq)]
pub enum DriveError {
    /// The scheduler requested more starts than idle workers.
    TooManyStarts {
        /// Starts requested.
        requested: usize,
        /// Idle workers available.
        idle: usize,
    },
    /// The scheduler started a task twice.
    DoubleStart {
        /// The doubly started task.
        node: NodeId,
    },
    /// The scheduler started a task whose children were not all finished.
    PrecedenceViolation {
        /// The prematurely started task.
        node: NodeId,
    },
    /// A moldable scheduler assigned a task an allotment of zero
    /// processors.
    ZeroAllotment {
        /// The task with the empty gang.
        node: NodeId,
    },
    /// The scheduler's booked memory exceeded the bound.
    BookedOverBound {
        /// Booked memory at the violation.
        booked: u64,
        /// The memory bound `M`.
        bound: u64,
    },
    /// Actual resident memory exceeded the scheduler's booking.
    ActualOverBooked {
        /// Replayed actual resident memory.
        actual: u64,
        /// Booked memory at the same instant.
        booked: u64,
    },
    /// No task is in flight, the scheduler started none, and the tree is
    /// unfinished — the policy deadlocked.
    Stalled {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks in the tree.
        total: usize,
        /// Booked memory at the stall, for diagnosis.
        booked: u64,
    },
    /// Zero workers or an otherwise unusable configuration.
    BadConfig(String),
    /// The backend lost its ability to complete tasks (e.g. a worker
    /// thread panicked).
    Backend(String),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::TooManyStarts { requested, idle } => {
                write!(
                    f,
                    "scheduler claimed {requested} processors with only {idle} idle workers"
                )
            }
            DriveError::DoubleStart { node } => write!(f, "task {node:?} started twice"),
            DriveError::PrecedenceViolation { node } => {
                write!(f, "task {node:?} started before its children finished")
            }
            DriveError::ZeroAllotment { node } => {
                write!(f, "zero allotment for {node:?}")
            }
            DriveError::BookedOverBound { booked, bound } => {
                write!(f, "booked memory {booked} exceeds the bound {bound}")
            }
            DriveError::ActualOverBooked { actual, booked } => {
                write!(f, "actual memory {actual} exceeds booked memory {booked}")
            }
            DriveError::Stalled {
                completed,
                total,
                booked,
            } => write!(
                f,
                "scheduler stalled after {completed}/{total} tasks (booked = {booked})"
            ),
            DriveError::BadConfig(msg) => write!(f, "bad driver config: {msg}"),
            DriveError::Backend(msg) => write!(f, "execution backend failed: {msg}"),
        }
    }
}

impl std::error::Error for DriveError {}

/// An execution vehicle for **gang-scheduled** tasks under the shared
/// driver loop.
///
/// The driver owns scheduler interaction and every invariant check; the
/// backend owns task execution: [`GangBackend::launch`] makes a task run
/// on a gang of `procs` workers, [`GangBackend::await_batch`] blocks until
/// at least one task completes.
pub trait GangBackend {
    /// Starts task `i` on a gang of `procs` workers at the current
    /// instant. `epoch` is the driver's event index (useful for trace
    /// records; `u64` — a million-node tree clears 2^32 events without
    /// wrapping). The driver guarantees `procs ≥ 1` and that at least
    /// `procs` workers are idle, so the backend may claim the whole gang
    /// unconditionally — no partial gangs, no hold-and-wait deadlock.
    fn launch(&mut self, i: NodeId, procs: usize, epoch: u64) -> Result<(), DriveError>;

    /// Observation hook, called once per event after the booking checks
    /// with the current memory state (used for memory profiles).
    fn observe(&mut self, actual: u64, booked: u64) {
        let _ = (actual, booked);
    }

    /// Changes the running gang of `i` from `from` to `to` members — the
    /// malleable hook behind [`Rescheduler`]. Growing enrols `to − from`
    /// extra members into the gang; shrinking retires `from − to` members
    /// at their next chunk boundary. The default declines: a backend that
    /// never sees a rescheduler never needs this.
    fn resize(&mut self, i: NodeId, from: usize, to: usize, epoch: u64) -> Result<(), DriveError> {
        let _ = (i, from, to, epoch);
        Err(DriveError::Backend(
            "backend does not support malleable resize".into(),
        ))
    }

    /// Shard progress of the running task `i` as `(done, total)`, for
    /// [`LiveStats`] snapshots. `None` (the default) means the backend
    /// does not track progress; the snapshot then reports the whole
    /// payload as remaining.
    fn progress(&self, i: NodeId) -> Option<(u32, u32)> {
        let _ = i;
        None
    }

    /// Blocks until at least one launched task completes and pushes the
    /// completions into `batch` (driver sorts them). `epoch` is the event
    /// index the completions will take effect at, minus one. The driver
    /// guarantees at least one task is in flight. A completion releases
    /// the task's whole gang at once — the driver returns its allotment to
    /// the idle pool before the next scheduler event.
    fn await_batch(&mut self, epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError>;
}

/// An execution vehicle for classic one-processor-per-task scheduling.
///
/// Implementations are driven through [`drive`], which adapts them onto
/// the gang loop with every allotment pinned to 1.
pub trait Backend {
    /// Starts task `i` at the current instant. `epoch` is the driver's
    /// event index (useful for trace records; `u64`, never wrapping at
    /// realistic tree sizes). The driver guarantees a worker is idle.
    fn launch(&mut self, i: NodeId, epoch: u64) -> Result<(), DriveError>;

    /// Observation hook, called once per event after the booking checks
    /// with the current memory state (used for memory profiles).
    fn observe(&mut self, actual: u64, booked: u64) {
        let _ = (actual, booked);
    }

    /// Blocks until at least one launched task completes and pushes the
    /// completions into `batch` (driver sorts them). `epoch` is the event
    /// index the completions will take effect at, minus one. The driver
    /// guarantees at least one task is in flight.
    fn await_batch(&mut self, epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError>;
}

/// Adapter: a sequential [`Scheduler`] viewed as a [`MoldableScheduler`]
/// that assigns every task a unit allotment. This is how the classic
/// engines ride the gang loop; it is public so any platform can reuse it.
pub struct UnitAllotments<S> {
    inner: S,
    buf: Vec<NodeId>,
}

impl<S: Scheduler> UnitAllotments<S> {
    /// Wraps `inner`, pinning every allotment to 1.
    pub fn new(inner: S) -> Self {
        UnitAllotments {
            inner,
            buf: Vec::new(),
        }
    }
}

impl<S: Scheduler> MoldableScheduler for UnitAllotments<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        self.buf.clear();
        self.inner.on_event(finished, idle, &mut self.buf);
        to_start.extend(self.buf.iter().map(|&i| (i, 1)));
    }
    fn booked(&self) -> u64 {
        self.inner.booked()
    }
    fn on_begin(&mut self) {
        self.inner.on_begin()
    }
}

/// Adapter: a sequential [`Backend`] viewed as a [`GangBackend`] (every
/// gang is a single worker).
struct UnitBackend<'a, B>(&'a mut B);

impl<B: Backend> GangBackend for UnitBackend<'_, B> {
    fn launch(&mut self, i: NodeId, procs: usize, epoch: u64) -> Result<(), DriveError> {
        debug_assert_eq!(procs, 1, "UnitAllotments only issues unit gangs");
        self.0.launch(i, epoch)
    }
    fn observe(&mut self, actual: u64, booked: u64) {
        self.0.observe(actual, booked)
    }
    fn await_batch(&mut self, epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
        self.0.await_batch(epoch, batch)
    }
}

/// Runs `scheduler` over `tree` on `backend` until the whole tree has
/// completed or an invariant breaks — the classic one-processor-per-task
/// regime, adapted onto [`drive_gang`] with unit allotments.
pub fn drive<S: Scheduler, B: Backend>(
    tree: &TaskTree,
    cfg: DriveConfig,
    scheduler: S,
    backend: &mut B,
) -> Result<DriveStats, DriveError> {
    drive_gang(
        tree,
        cfg,
        UnitAllotments::new(scheduler),
        &mut UnitBackend(backend),
    )
}

/// Runs a moldable `scheduler` over `tree` on `backend` until the whole
/// tree has completed or an invariant breaks.
///
/// Every started task carries a processor allotment `q`; the driver's
/// capacity ledger counts processors (the live allotments sum to at most
/// `cfg.workers`), releases a completed task's whole gang at once, and
/// enforces precedence, single-start, booking and stall detection exactly
/// as the sequential loop does — there is only this loop.
pub fn drive_gang<S: MoldableScheduler, B: GangBackend>(
    tree: &TaskTree,
    cfg: DriveConfig,
    scheduler: S,
    backend: &mut B,
) -> Result<DriveStats, DriveError> {
    drive_gang_with(tree, cfg, scheduler, backend, None)
}

/// [`drive_gang`] with an optional [`Rescheduler`] hook: once per event —
/// after starts are issued and the invariants re-checked, before the
/// driver blocks for the next completion batch — the rescheduler sees a
/// [`LiveStats`] snapshot and may grow or shrink running gangs. The
/// processor ledger stays exact through every transition (grow claims
/// idle processors, shrink returns them immediately), and booking is
/// untouched: memory is booked per task, not per processor.
///
/// The hook is a parameter rather than a `DriveConfig` field because the
/// config is a plain `Copy` value shared by every platform; a trait
/// object would poison that.
pub fn drive_gang_with<S: MoldableScheduler, B: GangBackend>(
    tree: &TaskTree,
    cfg: DriveConfig,
    mut scheduler: S,
    backend: &mut B,
    mut rescheduler: Option<&mut dyn Rescheduler>,
) -> Result<DriveStats, DriveError> {
    if cfg.workers == 0 {
        return Err(DriveError::BadConfig("zero workers".into()));
    }
    let n = tree.len();
    let mut started = BitSet::new(n);
    let mut finished = BitSet::new(n);
    // Live allotment of each running task, for gang release on completion.
    let mut allotment = vec![0u32; n];
    // Running tasks, unordered; `run_pos[i]` is task i's slot in `running`
    // (u32::MAX when not running), so completion removal is a swap-remove —
    // O(1) instead of the old sorted-insert/shift. Every gang needs ≥ 1
    // processor, so at most `workers` tasks run at once.
    let mut running: Vec<NodeId> = Vec::with_capacity(cfg.workers.min(n));
    let mut run_pos: Vec<u32> = vec![u32::MAX; n];
    let mut live = LiveSet::new(tree);
    let mut peak_booked = 0u64;
    let mut completed = 0usize;
    // Processors busy (sum of live allotments) and tasks in flight are
    // distinct ledgers under gangs.
    let mut busy = 0usize;
    let mut peak_busy = 0usize;
    let mut in_flight = 0usize;
    let mut events = 0usize;
    let mut scheduling_seconds = 0f64;
    // Event-loop scratch, recycled across every event: the steady state
    // allocates nothing (asserted by tests/alloc_count.rs).
    let mut to_start: Vec<(NodeId, usize)> = Vec::with_capacity(cfg.workers.min(n));
    let mut finished_batch: Vec<NodeId> = Vec::with_capacity(cfg.workers.min(n));
    let mut actions: Vec<RescheduleAction> = Vec::new();
    // LiveStats is built only when a rescheduler is attached; the snapshot
    // struct and its gang vector are recycled across ticks, and the
    // ascending-node-id ordering contract is met by sorting a scratch copy
    // of `running` only when a snapshot is actually published.
    let mut stats = LiveStats {
        event: 0,
        workers: cfg.workers,
        busy: 0,
        idle: 0,
        completed: 0,
        total: n,
        ready_depth: 0,
        booked: 0,
        actual: 0,
        gangs: Vec::with_capacity(if rescheduler.is_some() {
            cfg.workers.min(n)
        } else {
            0
        }),
    };
    let mut snapshot_order: Vec<NodeId> = Vec::with_capacity(if rescheduler.is_some() {
        cfg.workers.min(n)
    } else {
        0
    });

    scheduler.on_begin();

    loop {
        // Deliver the event (initial or completions) to the scheduler.
        to_start.clear();
        let idle = cfg.workers - busy;
        let t0 = cfg.measure_overhead.then(std::time::Instant::now);
        scheduler.on_event(&finished_batch, idle, &mut to_start);
        if let Some(t0) = t0 {
            scheduling_seconds += t0.elapsed().as_secs_f64();
        }
        events += 1;

        // Start the requested gangs. The capacity check counts processors,
        // and it happens before any launch: either every requested gang
        // fits in the idle pool or nothing starts — no partial gangs.
        let requested: usize = to_start.iter().map(|&(_, q)| q).sum();
        if requested > idle {
            return Err(DriveError::TooManyStarts { requested, idle });
        }
        for &(i, q) in &to_start {
            if q == 0 {
                return Err(DriveError::ZeroAllotment { node: i });
            }
            if started.get(i.index()) {
                return Err(DriveError::DoubleStart { node: i });
            }
            if tree.children(i).iter().any(|c| !finished.get(c.index())) {
                return Err(DriveError::PrecedenceViolation { node: i });
            }
            started.set(i.index());
            allotment[i.index()] = q as u32;
            backend.launch(i, q, events as u64)?;
            live.start(i);
            busy += q;
            in_flight += 1;
            run_pos[i.index()] = running.len() as u32;
            running.push(i);
        }
        peak_busy = peak_busy.max(busy);

        // Booking invariants at this instant.
        let booked = scheduler.booked();
        peak_booked = peak_booked.max(booked);
        if cfg.enforce_booking {
            if booked > cfg.memory {
                return Err(DriveError::BookedOverBound {
                    booked,
                    bound: cfg.memory,
                });
            }
            if live.current() > booked {
                return Err(DriveError::ActualOverBooked {
                    actual: live.current(),
                    booked,
                });
            }
        }
        backend.observe(live.current(), booked);

        if completed == n {
            break;
        }
        if in_flight == 0 {
            return Err(DriveError::Stalled {
                completed,
                total: n,
                booked,
            });
        }

        // The rescheduler tick: state is settled (starts issued, booking
        // re-checked, at least one task in flight), the driver is about to
        // block — the one instant per event where allotments may change.
        if let Some(resched) = rescheduler.as_deref_mut() {
            // The snapshot contract (gangs in ascending node id) is paid
            // for only here, on the publish path: the running set itself
            // stays unordered for O(1) completion removal.
            snapshot_order.clear();
            snapshot_order.extend_from_slice(&running);
            snapshot_order.sort_unstable();
            stats.event = events as u64;
            stats.busy = busy;
            stats.idle = cfg.workers - busy;
            stats.completed = completed;
            stats.ready_depth = scheduler.ready_depth();
            stats.booked = booked;
            stats.actual = live.current();
            stats.gangs.clear();
            stats.gangs.extend(snapshot_order.iter().map(|&i| {
                let (done, shards) = backend.progress(i).unwrap_or((0, 0));
                GangSnapshot {
                    node: i,
                    allotment: allotment[i.index()],
                    shards,
                    shards_done: done,
                }
            }));
            actions.clear();
            let t0 = cfg.measure_overhead.then(std::time::Instant::now);
            resched.tick(&stats, &mut actions);
            if let Some(t0) = t0 {
                scheduling_seconds += t0.elapsed().as_secs_f64();
            }
            for &action in &actions {
                match action {
                    RescheduleAction::Grow { node, extra } => {
                        if extra == 0 {
                            continue;
                        }
                        let k = node.index();
                        if !started.get(k) || finished.get(k) {
                            return Err(DriveError::Backend(format!(
                                "rescheduler grew {node:?}, which is not running"
                            )));
                        }
                        let idle_now = cfg.workers - busy;
                        if extra > idle_now {
                            return Err(DriveError::TooManyStarts {
                                requested: extra,
                                idle: idle_now,
                            });
                        }
                        let from = allotment[k] as usize;
                        backend.resize(node, from, from + extra, events as u64)?;
                        allotment[k] += extra as u32;
                        busy += extra;
                    }
                    RescheduleAction::Shrink { node, release } => {
                        if release == 0 {
                            continue;
                        }
                        let k = node.index();
                        if !started.get(k) || finished.get(k) {
                            return Err(DriveError::Backend(format!(
                                "rescheduler shrank {node:?}, which is not running"
                            )));
                        }
                        let from = allotment[k] as usize;
                        if release >= from {
                            // Shrinking to zero members is starting a gang
                            // with none: the same contract violation.
                            return Err(DriveError::ZeroAllotment { node });
                        }
                        backend.resize(node, from, from - release, events as u64)?;
                        allotment[k] -= release as u32;
                        busy -= release;
                    }
                }
            }
            // One tick's resizes are atomic for the occupancy ledger: the
            // peak reflects the settled allotments, not the transient
            // order actions were applied in.
            peak_busy = peak_busy.max(busy);
        }

        // Block until the next completion batch; each completion releases
        // its whole gang back to the idle pool.
        finished_batch.clear();
        backend.await_batch(events as u64, &mut finished_batch)?;
        finished_batch.sort_unstable();
        for &i in &finished_batch {
            debug_assert!(started.get(i.index()) && !finished.get(i.index()));
            finished.set(i.index());
            live.finish(i);
            completed += 1;
            in_flight -= 1;
            busy -= allotment[i.index()] as usize;
            // Swap-remove from the unordered running set, patching the
            // moved task's position index.
            let pos = run_pos[i.index()] as usize;
            debug_assert!(pos < running.len() && running[pos] == i);
            run_pos[i.index()] = u32::MAX;
            running.swap_remove(pos);
            if pos < running.len() {
                run_pos[running[pos].index()] = pos as u32;
            }
        }
    }

    Ok(DriveStats {
        events,
        scheduling_seconds,
        peak_booked,
        peak_actual: live.peak(),
        completed,
        peak_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial backend: tasks complete immediately, one batch per event,
    /// in launch order.
    struct Immediate {
        pending: Vec<NodeId>,
    }

    impl Backend for Immediate {
        fn launch(&mut self, i: NodeId, _epoch: u64) -> Result<(), DriveError> {
            self.pending.push(i);
            Ok(())
        }
        fn await_batch(&mut self, _epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
            batch.append(&mut self.pending);
            Ok(())
        }
    }

    /// Greedy test scheduler: books the whole bound, starts any available
    /// task.
    struct Greedy<'a> {
        tree: &'a TaskTree,
        bound: u64,
        remaining: Vec<usize>,
        ready: Vec<NodeId>,
    }

    impl<'a> Greedy<'a> {
        fn new(tree: &'a TaskTree, bound: u64) -> Self {
            Greedy {
                tree,
                bound,
                remaining: tree.nodes().map(|i| tree.degree(i)).collect(),
                ready: tree.leaves().collect(),
            }
        }
    }

    impl Scheduler for Greedy<'_> {
        fn name(&self) -> &str {
            "greedy-driver-test"
        }
        fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
            for &j in finished {
                if let Some(p) = self.tree.parent(j) {
                    self.remaining[p.index()] -= 1;
                    if self.remaining[p.index()] == 0 {
                        self.ready.push(p);
                    }
                }
            }
            self.ready.sort_unstable();
            while to_start.len() < idle {
                let Some(i) = self.ready.pop() else { break };
                to_start.push(i);
            }
        }
        fn booked(&self) -> u64 {
            self.bound
        }
    }

    fn fork() -> TaskTree {
        use memtree_tree::TaskSpec;
        TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 2, 2.0),
                TaskSpec::new(0, 3, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn drives_to_completion() {
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let stats = drive(
            &t,
            DriveConfig::new(2, 1000),
            Greedy::new(&t, 1000),
            &mut backend,
        )
        .unwrap();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.peak_booked, 1000);
        // Leaves in one batch, root in the next, plus the final event.
        assert_eq!(stats.events, 3);
        assert_eq!(stats.peak_actual, 6);
    }

    #[test]
    fn zero_workers_rejected() {
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        assert!(matches!(
            drive(
                &t,
                DriveConfig::new(0, 10),
                Greedy::new(&t, 10),
                &mut backend
            ),
            Err(DriveError::BadConfig(_))
        ));
    }

    #[test]
    fn stall_detected_with_booked_memory() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn on_event(&mut self, _: &[NodeId], _: usize, _: &mut Vec<NodeId>) {}
            fn booked(&self) -> u64 {
                7
            }
        }
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let err = drive(&t, DriveConfig::new(2, 10), Lazy, &mut backend).unwrap_err();
        assert_eq!(
            err,
            DriveError::Stalled {
                completed: 0,
                total: 3,
                booked: 7
            }
        );
    }

    #[test]
    fn booking_violations_detected() {
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let err = drive(
            &t,
            DriveConfig::new(2, 10),
            Greedy::new(&t, 1000),
            &mut backend,
        )
        .unwrap_err();
        assert!(matches!(err, DriveError::BookedOverBound { .. }));

        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let err = drive(
            &t,
            DriveConfig::new(2, 10),
            Greedy::new(&t, 1),
            &mut backend,
        )
        .unwrap_err();
        assert!(matches!(err, DriveError::ActualOverBooked { .. }));
    }

    /// A gang backend where tasks complete immediately, one batch per
    /// event.
    struct ImmediateGang {
        pending: Vec<NodeId>,
        launched: Vec<(NodeId, usize)>,
    }

    impl GangBackend for ImmediateGang {
        fn launch(&mut self, i: NodeId, procs: usize, _epoch: u64) -> Result<(), DriveError> {
            self.pending.push(i);
            self.launched.push((i, procs));
            Ok(())
        }
        fn await_batch(&mut self, _epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
            batch.append(&mut self.pending);
            Ok(())
        }
    }

    /// Runs tasks one at a time on the full machine.
    struct WholeMachine<'a> {
        tree: &'a TaskTree,
        order: Vec<NodeId>,
        next: usize,
        procs: usize,
    }

    impl MoldableScheduler for WholeMachine<'_> {
        fn name(&self) -> &str {
            "whole-machine"
        }
        fn on_event(&mut self, _: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
            let _ = self.tree;
            if idle >= self.procs && self.next < self.order.len() {
                to_start.push((self.order[self.next], self.procs));
                self.next += 1;
            }
        }
        fn booked(&self) -> u64 {
            1_000
        }
    }

    #[test]
    fn gangs_claim_and_release_whole_allotments() {
        let t = fork();
        let order = vec![NodeId(1), NodeId(2), NodeId(0)];
        let mut backend = ImmediateGang {
            pending: Vec::new(),
            launched: Vec::new(),
        };
        let stats = drive_gang(
            &t,
            DriveConfig::new(3, 1_000),
            WholeMachine {
                tree: &t,
                order,
                next: 0,
                procs: 3,
            },
            &mut backend,
        )
        .unwrap();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.peak_busy, 3);
        assert!(backend.launched.iter().all(|&(_, q)| q == 3));
        // One gang at a time: each event starts one task on the whole
        // machine, so there are n + 1 events.
        assert_eq!(stats.events, 4);
    }

    #[test]
    fn gang_capacity_counts_processors_not_tasks() {
        // Two tasks of 2 processors each on a 3-worker machine: 4 > 3.
        struct Greedy2;
        impl MoldableScheduler for Greedy2 {
            fn name(&self) -> &str {
                "greedy2"
            }
            fn on_event(&mut self, _: &[NodeId], _: usize, to_start: &mut Vec<(NodeId, usize)>) {
                to_start.push((NodeId(1), 2));
                to_start.push((NodeId(2), 2));
            }
            fn booked(&self) -> u64 {
                u64::MAX
            }
        }
        let t = fork();
        let mut backend = ImmediateGang {
            pending: Vec::new(),
            launched: Vec::new(),
        };
        let err = drive_gang(&t, DriveConfig::new(3, 1_000), Greedy2, &mut backend).unwrap_err();
        assert_eq!(
            err,
            DriveError::TooManyStarts {
                requested: 4,
                idle: 3
            }
        );
        assert!(
            backend.launched.is_empty(),
            "capacity is checked before any launch: no partial gangs"
        );
    }

    #[test]
    fn zero_allotment_rejected() {
        struct Empty;
        impl MoldableScheduler for Empty {
            fn name(&self) -> &str {
                "empty-gang"
            }
            fn on_event(&mut self, _: &[NodeId], _: usize, to_start: &mut Vec<(NodeId, usize)>) {
                to_start.push((NodeId(1), 0));
            }
            fn booked(&self) -> u64 {
                u64::MAX
            }
        }
        let t = fork();
        let mut backend = ImmediateGang {
            pending: Vec::new(),
            launched: Vec::new(),
        };
        let err = drive_gang(&t, DriveConfig::new(2, 1_000), Empty, &mut backend).unwrap_err();
        assert_eq!(err, DriveError::ZeroAllotment { node: NodeId(1) });
    }

    /// [`ImmediateGang`] plus resize support and canned progress — the
    /// minimal malleable backend.
    struct ResizableGang {
        pending: Vec<NodeId>,
        resized: Vec<(NodeId, usize, usize)>,
    }

    impl GangBackend for ResizableGang {
        fn launch(&mut self, i: NodeId, _procs: usize, _epoch: u64) -> Result<(), DriveError> {
            self.pending.push(i);
            Ok(())
        }
        fn await_batch(&mut self, _epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
            batch.append(&mut self.pending);
            Ok(())
        }
        fn resize(
            &mut self,
            i: NodeId,
            from: usize,
            to: usize,
            _epoch: u64,
        ) -> Result<(), DriveError> {
            self.resized.push((i, from, to));
            Ok(())
        }
        fn progress(&self, _i: NodeId) -> Option<(u32, u32)> {
            Some((1, 4))
        }
    }

    /// Replays canned actions at given events and records every snapshot.
    struct Script {
        plan: Vec<(u64, RescheduleAction)>,
        snapshots: Vec<LiveStats>,
    }

    impl Rescheduler for Script {
        fn tick(&mut self, stats: &LiveStats, actions: &mut Vec<RescheduleAction>) {
            self.snapshots.push(stats.clone());
            for &(ev, a) in &self.plan {
                if ev == stats.event {
                    actions.push(a);
                }
            }
        }
    }

    #[test]
    fn rescheduler_tick_sees_settled_state_and_grows() {
        let t = fork();
        let mut backend = ResizableGang {
            pending: Vec::new(),
            resized: Vec::new(),
        };
        let mut script = Script {
            plan: vec![(
                1,
                RescheduleAction::Grow {
                    node: NodeId(1),
                    extra: 2,
                },
            )],
            snapshots: Vec::new(),
        };
        let stats = drive_gang_with(
            &t,
            DriveConfig::new(4, 1_000),
            WholeMachine {
                tree: &t,
                order: vec![NodeId(1), NodeId(2), NodeId(0)],
                next: 0,
                procs: 2,
            },
            &mut backend,
            Some(&mut script),
        )
        .unwrap();
        assert_eq!(stats.completed, 3);
        // The grown gang held 4 processors before its completion event.
        assert_eq!(stats.peak_busy, 4);
        assert_eq!(backend.resized, vec![(NodeId(1), 2, 4)]);
        // The first tick saw the just-launched gang with its launch
        // allotment and the backend's progress, booking settled.
        let snap = &script.snapshots[0];
        assert_eq!(snap.event, 1);
        assert_eq!((snap.workers, snap.busy, snap.idle), (4, 2, 2));
        assert_eq!(snap.gangs.len(), 1);
        assert_eq!(snap.gangs[0].node, NodeId(1));
        assert_eq!(snap.gangs[0].allotment, 2);
        assert_eq!((snap.gangs[0].shards_done, snap.gangs[0].shards), (1, 4));
        assert!((snap.gangs[0].remaining_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rescheduler_shrink_frees_capacity_in_the_ledger() {
        let t = fork();
        let mut backend = ResizableGang {
            pending: Vec::new(),
            resized: Vec::new(),
        };
        let mut script = Script {
            plan: vec![(
                1,
                RescheduleAction::Shrink {
                    node: NodeId(1),
                    release: 2,
                },
            )],
            snapshots: Vec::new(),
        };
        let stats = drive_gang_with(
            &t,
            DriveConfig::new(3, 1_000),
            WholeMachine {
                tree: &t,
                order: vec![NodeId(1), NodeId(2), NodeId(0)],
                next: 0,
                procs: 3,
            },
            &mut backend,
            Some(&mut script),
        )
        .unwrap();
        assert_eq!(stats.completed, 3);
        assert_eq!(backend.resized, vec![(NodeId(1), 3, 1)]);
        // The completion after the shrink released the *current*
        // allotment (1), not the launch allotment (3): the ledger would
        // underflow otherwise, and the next gang still fit.
        let second = script
            .snapshots
            .iter()
            .find(|s| s.event == 2)
            .expect("a second tick");
        assert_eq!((second.busy, second.idle), (3, 0));
    }

    #[test]
    fn rescheduler_overgrow_rejected() {
        let t = fork();
        let mut backend = ResizableGang {
            pending: Vec::new(),
            resized: Vec::new(),
        };
        let mut script = Script {
            plan: vec![(
                1,
                RescheduleAction::Grow {
                    node: NodeId(1),
                    extra: 3,
                },
            )],
            snapshots: Vec::new(),
        };
        let err = drive_gang_with(
            &t,
            DriveConfig::new(4, 1_000),
            WholeMachine {
                tree: &t,
                order: vec![NodeId(1), NodeId(2), NodeId(0)],
                next: 0,
                procs: 2,
            },
            &mut backend,
            Some(&mut script),
        )
        .unwrap_err();
        assert_eq!(
            err,
            DriveError::TooManyStarts {
                requested: 3,
                idle: 2
            }
        );
        assert!(backend.resized.is_empty(), "no resize past the ledger");
    }

    #[test]
    fn rescheduler_shrink_to_zero_rejected() {
        let t = fork();
        let mut backend = ResizableGang {
            pending: Vec::new(),
            resized: Vec::new(),
        };
        let mut script = Script {
            plan: vec![(
                1,
                RescheduleAction::Shrink {
                    node: NodeId(1),
                    release: 2,
                },
            )],
            snapshots: Vec::new(),
        };
        let err = drive_gang_with(
            &t,
            DriveConfig::new(4, 1_000),
            WholeMachine {
                tree: &t,
                order: vec![NodeId(1), NodeId(2), NodeId(0)],
                next: 0,
                procs: 2,
            },
            &mut backend,
            Some(&mut script),
        )
        .unwrap_err();
        assert_eq!(err, DriveError::ZeroAllotment { node: NodeId(1) });
    }

    #[test]
    fn rescheduler_resize_of_not_running_task_rejected() {
        let t = fork();
        let mut backend = ResizableGang {
            pending: Vec::new(),
            resized: Vec::new(),
        };
        // Node 0 (the root) has not started at event 1.
        let mut script = Script {
            plan: vec![(
                1,
                RescheduleAction::Grow {
                    node: NodeId(0),
                    extra: 1,
                },
            )],
            snapshots: Vec::new(),
        };
        let err = drive_gang_with(
            &t,
            DriveConfig::new(4, 1_000),
            WholeMachine {
                tree: &t,
                order: vec![NodeId(1), NodeId(2), NodeId(0)],
                next: 0,
                procs: 2,
            },
            &mut backend,
            Some(&mut script),
        )
        .unwrap_err();
        match err {
            DriveError::Backend(msg) => assert!(msg.contains("not running"), "{msg}"),
            other => panic!("expected Backend, got {other:?}"),
        }
    }

    #[test]
    fn backend_without_resize_support_errors_loudly() {
        let t = fork();
        let mut backend = ImmediateGang {
            pending: Vec::new(),
            launched: Vec::new(),
        };
        let mut script = Script {
            plan: vec![(
                1,
                RescheduleAction::Grow {
                    node: NodeId(1),
                    extra: 1,
                },
            )],
            snapshots: Vec::new(),
        };
        let err = drive_gang_with(
            &t,
            DriveConfig::new(4, 1_000),
            WholeMachine {
                tree: &t,
                order: vec![NodeId(1), NodeId(2), NodeId(0)],
                next: 0,
                procs: 2,
            },
            &mut backend,
            Some(&mut script),
        )
        .unwrap_err();
        match err {
            DriveError::Backend(msg) => assert!(msg.contains("resize"), "{msg}"),
            other => panic!("expected Backend, got {other:?}"),
        }
    }

    #[test]
    fn unit_adapter_reports_task_level_peak_busy() {
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let stats = drive(
            &t,
            DriveConfig::new(2, 1000),
            Greedy::new(&t, 1000),
            &mut backend,
        )
        .unwrap();
        // Both leaves run concurrently on unit allotments.
        assert_eq!(stats.peak_busy, 2);
    }

    #[test]
    fn precedence_enforced() {
        struct Eager<'a> {
            tree: &'a TaskTree,
            fired: bool,
        }
        impl Scheduler for Eager<'_> {
            fn name(&self) -> &str {
                "eager"
            }
            fn on_event(&mut self, _: &[NodeId], _: usize, to_start: &mut Vec<NodeId>) {
                if !self.fired {
                    self.fired = true;
                    to_start.push(self.tree.root());
                }
            }
            fn booked(&self) -> u64 {
                u64::MAX
            }
        }
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let cfg = DriveConfig {
            enforce_booking: false,
            ..DriveConfig::new(2, u64::MAX)
        };
        let err = drive(
            &t,
            cfg,
            Eager {
                tree: &t,
                fired: false,
            },
            &mut backend,
        )
        .unwrap_err();
        assert!(matches!(err, DriveError::PrecedenceViolation { .. }));
    }
}
