//! The shared event-loop driver behind every execution platform.
//!
//! The discrete-event engine ([`crate::simulate`]) and the threaded runtime
//! (`memtree_runtime::execute`) used to each hand-roll the same loop:
//! deliver a completion batch to the scheduler, start the requested tasks,
//! re-check the booking invariants, drain the next batch. The only genuine
//! difference between them is *where completions come from* — a virtual
//! clock or real worker threads. [`drive`] owns the loop once; a
//! [`Backend`] supplies the completions.
//!
//! The driver enforces the full scheduler contract on every platform:
//!
//! * precedence — a started task has all children finished;
//! * single start — no task starts twice;
//! * capacity — at most `idle` starts per event;
//! * booking — `actual ≤ booked ≤ M` at every event (configurable);
//! * progress — no event may leave zero tasks in flight while the tree is
//!   unfinished (the stall/deadlock check).
//!
//! This is strictly stronger than the old threaded executor, which only
//! checked the booking ledger.

use crate::scheduler::Scheduler;
use memtree_tree::memory::LiveSet;
use memtree_tree::{NodeId, TaskTree};

/// Driver configuration shared by all platforms.
#[derive(Clone, Copy, Debug)]
pub struct DriveConfig {
    /// Number of processors / worker threads (the model's `p`).
    pub workers: usize,
    /// Shared memory bound `M` (model units).
    pub memory: u64,
    /// Check `actual ≤ booked ≤ M` at every event. Booking-sound
    /// schedulers (all of the paper's) must pass; disable only for
    /// deliberately unsound baselines.
    pub enforce_booking: bool,
    /// Measure wall-clock time spent inside scheduler callbacks.
    pub measure_overhead: bool,
}

impl DriveConfig {
    /// `workers` processors and memory `M`, all checks on.
    pub fn new(workers: usize, memory: u64) -> Self {
        DriveConfig {
            workers,
            memory,
            enforce_booking: true,
            measure_overhead: true,
        }
    }
}

/// What the driver learned from a completed run.
#[derive(Clone, Copy, Debug)]
pub struct DriveStats {
    /// Events processed (task-completion batches + the initial event).
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
    /// Peak memory booked by the policy.
    pub peak_booked: u64,
    /// Peak model-level resident memory (replayed by the driver).
    pub peak_actual: u64,
    /// Tasks completed (the full tree on success).
    pub completed: usize,
}

/// Errors raised by [`drive`]; the platforms map these onto their public
/// error types.
#[derive(Clone, Debug, PartialEq)]
pub enum DriveError {
    /// The scheduler requested more starts than idle workers.
    TooManyStarts {
        /// Starts requested.
        requested: usize,
        /// Idle workers available.
        idle: usize,
    },
    /// The scheduler started a task twice.
    DoubleStart {
        /// The doubly started task.
        node: NodeId,
    },
    /// The scheduler started a task whose children were not all finished.
    PrecedenceViolation {
        /// The prematurely started task.
        node: NodeId,
    },
    /// The scheduler's booked memory exceeded the bound.
    BookedOverBound {
        /// Booked memory at the violation.
        booked: u64,
        /// The memory bound `M`.
        bound: u64,
    },
    /// Actual resident memory exceeded the scheduler's booking.
    ActualOverBooked {
        /// Replayed actual resident memory.
        actual: u64,
        /// Booked memory at the same instant.
        booked: u64,
    },
    /// No task is in flight, the scheduler started none, and the tree is
    /// unfinished — the policy deadlocked.
    Stalled {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks in the tree.
        total: usize,
        /// Booked memory at the stall, for diagnosis.
        booked: u64,
    },
    /// Zero workers or an otherwise unusable configuration.
    BadConfig(String),
    /// The backend lost its ability to complete tasks (e.g. a worker
    /// thread panicked).
    Backend(String),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::TooManyStarts { requested, idle } => {
                write!(
                    f,
                    "scheduler started {requested} tasks with only {idle} idle workers"
                )
            }
            DriveError::DoubleStart { node } => write!(f, "task {node:?} started twice"),
            DriveError::PrecedenceViolation { node } => {
                write!(f, "task {node:?} started before its children finished")
            }
            DriveError::BookedOverBound { booked, bound } => {
                write!(f, "booked memory {booked} exceeds the bound {bound}")
            }
            DriveError::ActualOverBooked { actual, booked } => {
                write!(f, "actual memory {actual} exceeds booked memory {booked}")
            }
            DriveError::Stalled {
                completed,
                total,
                booked,
            } => write!(
                f,
                "scheduler stalled after {completed}/{total} tasks (booked = {booked})"
            ),
            DriveError::BadConfig(msg) => write!(f, "bad driver config: {msg}"),
            DriveError::Backend(msg) => write!(f, "execution backend failed: {msg}"),
        }
    }
}

impl std::error::Error for DriveError {}

/// An execution vehicle under the shared driver loop.
///
/// The driver owns scheduler interaction and every invariant check; the
/// backend owns task execution: [`Backend::launch`] makes a task run,
/// [`Backend::await_batch`] blocks until at least one task completes.
pub trait Backend {
    /// Starts task `i` at the current instant. `epoch` is the driver's
    /// event index (useful for trace records). The driver guarantees a
    /// worker is idle.
    fn launch(&mut self, i: NodeId, epoch: u32) -> Result<(), DriveError>;

    /// Observation hook, called once per event after the booking checks
    /// with the current memory state (used for memory profiles).
    fn observe(&mut self, actual: u64, booked: u64) {
        let _ = (actual, booked);
    }

    /// Blocks until at least one launched task completes and pushes the
    /// completions into `batch` (driver sorts them). `epoch` is the event
    /// index the completions will take effect at, minus one. The driver
    /// guarantees at least one task is in flight.
    fn await_batch(&mut self, epoch: u32, batch: &mut Vec<NodeId>) -> Result<(), DriveError>;
}

/// Runs `scheduler` over `tree` on `backend` until the whole tree has
/// completed or an invariant breaks.
pub fn drive<S: Scheduler, B: Backend>(
    tree: &TaskTree,
    cfg: DriveConfig,
    mut scheduler: S,
    backend: &mut B,
) -> Result<DriveStats, DriveError> {
    if cfg.workers == 0 {
        return Err(DriveError::BadConfig("zero workers".into()));
    }
    let n = tree.len();
    let mut started = vec![false; n];
    let mut finished = vec![false; n];
    let mut live = LiveSet::new(tree);
    let mut peak_booked = 0u64;
    let mut completed = 0usize;
    let mut in_flight = 0usize;
    let mut events = 0usize;
    let mut scheduling_seconds = 0f64;
    let mut to_start: Vec<NodeId> = Vec::new();
    let mut finished_batch: Vec<NodeId> = Vec::new();

    scheduler.on_begin();

    loop {
        // Deliver the event (initial or completions) to the scheduler.
        to_start.clear();
        let idle = cfg.workers - in_flight;
        let t0 = cfg.measure_overhead.then(std::time::Instant::now);
        scheduler.on_event(&finished_batch, idle, &mut to_start);
        if let Some(t0) = t0 {
            scheduling_seconds += t0.elapsed().as_secs_f64();
        }
        events += 1;

        // Start the requested tasks.
        if to_start.len() > idle {
            return Err(DriveError::TooManyStarts {
                requested: to_start.len(),
                idle,
            });
        }
        for &i in &to_start {
            if started[i.index()] {
                return Err(DriveError::DoubleStart { node: i });
            }
            if tree.children(i).iter().any(|c| !finished[c.index()]) {
                return Err(DriveError::PrecedenceViolation { node: i });
            }
            started[i.index()] = true;
            backend.launch(i, events as u32)?;
            live.start(i);
            in_flight += 1;
        }

        // Booking invariants at this instant.
        let booked = scheduler.booked();
        peak_booked = peak_booked.max(booked);
        if cfg.enforce_booking {
            if booked > cfg.memory {
                return Err(DriveError::BookedOverBound {
                    booked,
                    bound: cfg.memory,
                });
            }
            if live.current() > booked {
                return Err(DriveError::ActualOverBooked {
                    actual: live.current(),
                    booked,
                });
            }
        }
        backend.observe(live.current(), booked);

        if completed == n {
            break;
        }
        if in_flight == 0 {
            return Err(DriveError::Stalled {
                completed,
                total: n,
                booked,
            });
        }

        // Block until the next completion batch.
        finished_batch.clear();
        backend.await_batch(events as u32, &mut finished_batch)?;
        finished_batch.sort_unstable();
        for &i in &finished_batch {
            debug_assert!(started[i.index()] && !finished[i.index()]);
            finished[i.index()] = true;
            live.finish(i);
            completed += 1;
            in_flight -= 1;
        }
    }

    Ok(DriveStats {
        events,
        scheduling_seconds,
        peak_booked,
        peak_actual: live.peak(),
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial backend: tasks complete immediately, one batch per event,
    /// in launch order.
    struct Immediate {
        pending: Vec<NodeId>,
    }

    impl Backend for Immediate {
        fn launch(&mut self, i: NodeId, _epoch: u32) -> Result<(), DriveError> {
            self.pending.push(i);
            Ok(())
        }
        fn await_batch(&mut self, _epoch: u32, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
            batch.append(&mut self.pending);
            Ok(())
        }
    }

    /// Greedy test scheduler: books the whole bound, starts any available
    /// task.
    struct Greedy<'a> {
        tree: &'a TaskTree,
        bound: u64,
        remaining: Vec<usize>,
        ready: Vec<NodeId>,
    }

    impl<'a> Greedy<'a> {
        fn new(tree: &'a TaskTree, bound: u64) -> Self {
            Greedy {
                tree,
                bound,
                remaining: tree.nodes().map(|i| tree.degree(i)).collect(),
                ready: tree.leaves().collect(),
            }
        }
    }

    impl Scheduler for Greedy<'_> {
        fn name(&self) -> &str {
            "greedy-driver-test"
        }
        fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
            for &j in finished {
                if let Some(p) = self.tree.parent(j) {
                    self.remaining[p.index()] -= 1;
                    if self.remaining[p.index()] == 0 {
                        self.ready.push(p);
                    }
                }
            }
            self.ready.sort_unstable();
            while to_start.len() < idle {
                let Some(i) = self.ready.pop() else { break };
                to_start.push(i);
            }
        }
        fn booked(&self) -> u64 {
            self.bound
        }
    }

    fn fork() -> TaskTree {
        use memtree_tree::TaskSpec;
        TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 2, 2.0),
                TaskSpec::new(0, 3, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn drives_to_completion() {
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let stats = drive(
            &t,
            DriveConfig::new(2, 1000),
            Greedy::new(&t, 1000),
            &mut backend,
        )
        .unwrap();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.peak_booked, 1000);
        // Leaves in one batch, root in the next, plus the final event.
        assert_eq!(stats.events, 3);
        assert_eq!(stats.peak_actual, 6);
    }

    #[test]
    fn zero_workers_rejected() {
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        assert!(matches!(
            drive(
                &t,
                DriveConfig::new(0, 10),
                Greedy::new(&t, 10),
                &mut backend
            ),
            Err(DriveError::BadConfig(_))
        ));
    }

    #[test]
    fn stall_detected_with_booked_memory() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn on_event(&mut self, _: &[NodeId], _: usize, _: &mut Vec<NodeId>) {}
            fn booked(&self) -> u64 {
                7
            }
        }
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let err = drive(&t, DriveConfig::new(2, 10), Lazy, &mut backend).unwrap_err();
        assert_eq!(
            err,
            DriveError::Stalled {
                completed: 0,
                total: 3,
                booked: 7
            }
        );
    }

    #[test]
    fn booking_violations_detected() {
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let err = drive(
            &t,
            DriveConfig::new(2, 10),
            Greedy::new(&t, 1000),
            &mut backend,
        )
        .unwrap_err();
        assert!(matches!(err, DriveError::BookedOverBound { .. }));

        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let err = drive(
            &t,
            DriveConfig::new(2, 10),
            Greedy::new(&t, 1),
            &mut backend,
        )
        .unwrap_err();
        assert!(matches!(err, DriveError::ActualOverBooked { .. }));
    }

    #[test]
    fn precedence_enforced() {
        struct Eager<'a> {
            tree: &'a TaskTree,
            fired: bool,
        }
        impl Scheduler for Eager<'_> {
            fn name(&self) -> &str {
                "eager"
            }
            fn on_event(&mut self, _: &[NodeId], _: usize, to_start: &mut Vec<NodeId>) {
                if !self.fired {
                    self.fired = true;
                    to_start.push(self.tree.root());
                }
            }
            fn booked(&self) -> u64 {
                u64::MAX
            }
        }
        let t = fork();
        let mut backend = Immediate {
            pending: Vec::new(),
        };
        let cfg = DriveConfig {
            enforce_booking: false,
            ..DriveConfig::new(2, u64::MAX)
        };
        let err = drive(
            &t,
            cfg,
            Eager {
                tree: &t,
                fired: false,
            },
            &mut backend,
        )
        .unwrap_err();
        assert!(matches!(err, DriveError::PrecedenceViolation { .. }));
    }
}
