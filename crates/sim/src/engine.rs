//! The discrete-event engine: a virtual-clock [`Backend`] under the shared
//! [`crate::driver`] loop.

use crate::driver::{drive, Backend, DriveConfig, DriveError};
use crate::error::SimError;
use crate::scheduler::Scheduler;
use crate::trace::{MemSample, TaskRecord, Trace};
use memtree_tree::{NodeId, TaskTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of processors `p`.
    pub processors: usize,
    /// Shared memory bound `M`.
    pub memory: u64,
    /// Check `actual ≤ booked ≤ M` at every event. Booking-sound
    /// schedulers (all of the paper's) must pass; disable only for
    /// deliberately unsound baselines.
    pub enforce_booking: bool,
    /// Record a [`MemSample`] at every event (costs memory on big trees).
    pub record_profile: bool,
    /// Measure wall-clock time spent in scheduler callbacks.
    pub measure_overhead: bool,
}

impl SimConfig {
    /// `p` processors, memory `M`, all checks on, no profile.
    pub fn new(processors: usize, memory: u64) -> Self {
        SimConfig {
            processors,
            memory,
            enforce_booking: true,
            record_profile: false,
            measure_overhead: true,
        }
    }

    /// Enables memory-profile recording.
    pub fn with_profile(mut self) -> Self {
        self.record_profile = true;
        self
    }
}

/// Totally ordered f64 for the event heap (times are finite by
/// construction).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("times are finite")
    }
}

/// The virtual-clock backend: tasks "run" on a completion-time heap, and a
/// batch is everything finishing at the next instant.
struct SimBackend<'t> {
    tree: &'t TaskTree,
    now: f64,
    running: BinaryHeap<Reverse<(Time, NodeId)>>,
    free_procs: Vec<u32>,
    records: Vec<TaskRecord>,
    record_profile: bool,
    profile: Vec<MemSample>,
}

impl<'t> SimBackend<'t> {
    fn new(tree: &'t TaskTree, processors: usize, record_profile: bool) -> Self {
        SimBackend {
            tree,
            now: 0.0,
            // At most one entry per processor is ever in flight; sizing
            // up front keeps the steady-state loop allocation-free.
            running: BinaryHeap::with_capacity(processors.min(tree.len()) + 1),
            free_procs: (0..processors as u32).rev().collect(),
            records: vec![
                TaskRecord {
                    start: f64::NAN,
                    finish: f64::NAN,
                    processor: 0,
                    start_epoch: 0,
                    finish_epoch: 0,
                };
                tree.len()
            ],
            record_profile,
            profile: Vec::new(),
        }
    }
}

impl Backend for SimBackend<'_> {
    fn launch(&mut self, i: NodeId, epoch: u64) -> Result<(), DriveError> {
        let proc = self
            .free_procs
            .pop()
            .expect("driver enforces the idle limit");
        let finish = self.now + self.tree.time(i);
        self.records[i.index()] = TaskRecord {
            start: self.now,
            finish,
            processor: proc,
            start_epoch: epoch,
            finish_epoch: 0,
        };
        self.running.push(Reverse((Time(finish), i)));
        Ok(())
    }

    fn observe(&mut self, actual: u64, booked: u64) {
        if self.record_profile {
            self.profile.push(MemSample {
                time: self.now,
                actual,
                booked,
            });
        }
    }

    fn await_batch(&mut self, epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
        let Some(&Reverse((Time(t), _))) = self.running.peek() else {
            // Unreachable through `drive` (it checks in-flight > 0 first).
            return Err(DriveError::Backend("no task is running".into()));
        };
        self.now = t;
        while let Some(&Reverse((Time(ft), i))) = self.running.peek() {
            if ft > t {
                break;
            }
            self.running.pop();
            batch.push(i);
            self.free_procs.push(self.records[i.index()].processor);
            // Completions take effect at the *next* scheduler epoch.
            self.records[i.index()].finish_epoch = epoch + 1;
        }
        Ok(())
    }
}

pub(crate) fn to_sim_error(e: DriveError) -> SimError {
    match e {
        DriveError::TooManyStarts { requested, idle } => {
            SimError::TooManyStarts { requested, idle }
        }
        DriveError::DoubleStart { node } => SimError::DoubleStart { node },
        DriveError::PrecedenceViolation { node } => SimError::PrecedenceViolation { node },
        DriveError::ZeroAllotment { node } => {
            SimError::BadConfig(format!("zero allotment for {node:?}"))
        }
        DriveError::BookedOverBound { booked, bound } => {
            SimError::BookedOverBound { booked, bound }
        }
        DriveError::ActualOverBooked { actual, booked } => {
            SimError::ActualOverBooked { actual, booked }
        }
        DriveError::Stalled {
            completed,
            total,
            booked,
        } => SimError::Stalled {
            completed,
            total,
            booked,
        },
        DriveError::BadConfig(msg) | DriveError::Backend(msg) => SimError::BadConfig(msg),
    }
}

/// Runs `scheduler` on `tree` under `cfg` and returns the trace.
///
/// The engine is generic over the policy; all of the paper's heuristics
/// (Activation, MemBooking, MemBookingRedTree) implement [`Scheduler`].
pub fn simulate<S: Scheduler>(
    tree: &TaskTree,
    cfg: SimConfig,
    scheduler: S,
) -> Result<Trace, SimError> {
    let name = scheduler.name().to_string();
    let mut backend = SimBackend::new(tree, cfg.processors, cfg.record_profile);
    let drive_cfg = DriveConfig {
        workers: cfg.processors,
        memory: cfg.memory,
        enforce_booking: cfg.enforce_booking,
        measure_overhead: cfg.measure_overhead,
    };
    let stats = drive(tree, drive_cfg, scheduler, &mut backend).map_err(to_sim_error)?;
    Ok(Trace {
        scheduler: name,
        processors: cfg.processors,
        memory: cfg.memory,
        makespan: backend.now,
        records: backend.records,
        peak_actual: stats.peak_actual,
        peak_booked: stats.peak_booked,
        scheduling_seconds: stats.scheduling_seconds,
        events: stats.events,
        profile: backend.profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{TaskSpec, TaskTree};

    /// A permissive scheduler used to exercise the engine: books the whole
    /// memory bound up front and greedily starts any available task in id
    /// order.
    struct Greedy<'a> {
        tree: &'a TaskTree,
        bound: u64,
        remaining_children: Vec<usize>,
        ready: Vec<NodeId>,
        started: Vec<bool>,
    }

    impl<'a> Greedy<'a> {
        fn new(tree: &'a TaskTree, bound: u64) -> Self {
            let remaining_children: Vec<usize> = tree.nodes().map(|i| tree.degree(i)).collect();
            let ready = tree.leaves().collect();
            Greedy {
                tree,
                bound,
                remaining_children,
                ready,
                started: vec![false; tree.len()],
            }
        }
    }

    impl Scheduler for Greedy<'_> {
        fn name(&self) -> &str {
            "greedy-test"
        }
        fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
            for &j in finished {
                if let Some(p) = self.tree.parent(j) {
                    self.remaining_children[p.index()] -= 1;
                    if self.remaining_children[p.index()] == 0 {
                        self.ready.push(p);
                    }
                }
            }
            self.ready.sort_unstable();
            let mut k = 0;
            while k < self.ready.len() && to_start.len() < idle {
                let i = self.ready[k];
                if !self.started[i.index()] {
                    self.started[i.index()] = true;
                    to_start.push(i);
                    self.ready.remove(k);
                } else {
                    k += 1;
                }
            }
        }
        fn booked(&self) -> u64 {
            self.bound
        }
    }

    fn fork() -> TaskTree {
        // Root 0 (t=1); leaves 1 (t=2), 2 (t=3).
        TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 2, 2.0),
                TaskSpec::new(0, 3, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_fork_runs_leaves_concurrently() {
        let t = fork();
        let trace = simulate(&t, SimConfig::new(2, 1000), Greedy::new(&t, 1000)).unwrap();
        // Leaves in parallel: finish at 2 and 3; root runs 3..4.
        assert_eq!(trace.makespan, 4.0);
        assert_eq!(trace.max_concurrency(), 2);
        assert_eq!(trace.record(NodeId(0)).start, 3.0);
    }

    #[test]
    fn single_processor_serialises() {
        let t = fork();
        let trace = simulate(&t, SimConfig::new(1, 1000), Greedy::new(&t, 1000)).unwrap();
        assert_eq!(trace.makespan, t.total_time());
        assert_eq!(trace.max_concurrency(), 1);
    }

    #[test]
    fn actual_memory_tracked() {
        let t = fork();
        let trace = simulate(
            &t,
            SimConfig::new(2, 1000).with_profile(),
            Greedy::new(&t, 1000),
        )
        .unwrap();
        // Both leaves running: (0+2) + (0+3) = 5; then root with inputs:
        // 2 + 3 + 1 = 6.
        assert_eq!(trace.peak_actual, 6);
        assert!(!trace.profile.is_empty());
    }

    #[test]
    fn booking_enforcement_catches_overbound() {
        let t = fork();
        // Scheduler books 1000 but the bound is 10.
        let err = simulate(&t, SimConfig::new(2, 10), Greedy::new(&t, 1000)).unwrap_err();
        assert!(matches!(err, SimError::BookedOverBound { .. }));
    }

    #[test]
    fn booking_enforcement_catches_underbooking() {
        let t = fork();
        // Books 1 — less than the actual resident memory.
        let err = simulate(&t, SimConfig::new(2, 10), Greedy::new(&t, 1)).unwrap_err();
        assert!(matches!(err, SimError::ActualOverBooked { .. }));
    }

    #[test]
    fn zero_processors_rejected() {
        let t = fork();
        let err = simulate(&t, SimConfig::new(0, 10), Greedy::new(&t, 10)).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    /// A scheduler that never starts anything stalls.
    struct Lazy;
    impl Scheduler for Lazy {
        fn name(&self) -> &str {
            "lazy"
        }
        fn on_event(&mut self, _: &[NodeId], _: usize, _: &mut Vec<NodeId>) {}
        fn booked(&self) -> u64 {
            0
        }
    }

    #[test]
    fn stall_detected() {
        let t = fork();
        let err = simulate(&t, SimConfig::new(2, 10), Lazy).unwrap_err();
        assert_eq!(
            err,
            SimError::Stalled {
                completed: 0,
                total: 3,
                booked: 0
            }
        );
    }

    /// A scheduler that violates precedence.
    struct Eager<'a> {
        tree: &'a TaskTree,
        fired: bool,
    }
    impl Scheduler for Eager<'_> {
        fn name(&self) -> &str {
            "eager"
        }
        fn on_event(&mut self, _: &[NodeId], _: usize, to_start: &mut Vec<NodeId>) {
            if !self.fired {
                self.fired = true;
                to_start.push(self.tree.root());
            }
        }
        fn booked(&self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn precedence_violation_detected() {
        let t = fork();
        let err = simulate(
            &t,
            SimConfig {
                enforce_booking: false,
                ..SimConfig::new(2, u64::MAX)
            },
            Eager {
                tree: &t,
                fired: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::PrecedenceViolation { .. }));
    }

    #[test]
    fn zero_time_tasks_complete_in_one_instant() {
        let t = TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(0, 1, 0.0), TaskSpec::new(0, 1, 0.0)],
        )
        .unwrap();
        let trace = simulate(&t, SimConfig::new(1, 100), Greedy::new(&t, 100)).unwrap();
        assert_eq!(trace.makespan, 0.0);
    }
}
