//! Simulator error type.

use memtree_tree::NodeId;
use std::fmt;

/// Errors surfaced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No task is running and the scheduler did not start any, but the tree
    /// is not finished — the policy deadlocked (e.g. insufficient memory
    /// without a feasibility guarantee).
    Stalled {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks in the tree.
        total: usize,
        /// Booked memory at the stall, for diagnosis.
        booked: u64,
    },
    /// The scheduler started a task whose children were not all finished.
    PrecedenceViolation {
        /// The prematurely started task.
        node: NodeId,
    },
    /// The scheduler started a task twice.
    DoubleStart {
        /// The doubly started task.
        node: NodeId,
    },
    /// The scheduler returned more tasks than idle processors.
    TooManyStarts {
        /// Tasks (or processors, for moldable runs) requested.
        requested: usize,
        /// Idle processors available.
        idle: usize,
    },
    /// The scheduler's booked memory exceeded the bound.
    BookedOverBound {
        /// Booked memory at the violation.
        booked: u64,
        /// The memory bound `M`.
        bound: u64,
    },
    /// Actual resident memory exceeded the scheduler's booking.
    ActualOverBooked {
        /// Replayed actual resident memory.
        actual: u64,
        /// Booked memory at the same instant.
        booked: u64,
    },
    /// `processors == 0` or an otherwise unusable configuration.
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled {
                completed,
                total,
                booked,
            } => write!(
                f,
                "scheduler stalled after {completed}/{total} tasks (booked = {booked})"
            ),
            SimError::PrecedenceViolation { node } => {
                write!(f, "task {node:?} started before its children finished")
            }
            SimError::DoubleStart { node } => write!(f, "task {node:?} started twice"),
            SimError::TooManyStarts { requested, idle } => {
                write!(
                    f,
                    "scheduler started {requested} tasks with only {idle} idle processors"
                )
            }
            SimError::BookedOverBound { booked, bound } => {
                write!(f, "booked memory {booked} exceeds the bound {bound}")
            }
            SimError::ActualOverBooked { actual, booked } => {
                write!(f, "actual memory {actual} exceeds booked memory {booked}")
            }
            SimError::BadConfig(msg) => write!(f, "bad simulation config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::Stalled {
            completed: 3,
            total: 10,
            booked: 42,
        };
        assert!(e.to_string().contains("3/10"));
        let e = SimError::TooManyStarts {
            requested: 5,
            idle: 2,
        };
        assert!(e.to_string().contains('5'));
    }
}
