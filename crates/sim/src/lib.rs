#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Discrete-event simulator for shared-memory parallel tree scheduling.
//!
//! The platform model of the paper: `p` identical processors sharing a
//! memory of size `M`. A scheduler (the [`Scheduler`] trait) reacts to task
//! completions — the only events — by starting new tasks on idle
//! processors. The engine:
//!
//! * advances time from completion to completion (plus the initial `t = 0`
//!   event),
//! * charges the scheduler's *booked* memory and independently replays the
//!   **actual** resident memory through [`memtree_tree::memory::LiveSet`],
//! * asserts at every instant that actual ≤ booked ≤ `M` for
//!   booking-sound schedulers (configurable),
//! * measures the wall-clock time spent inside scheduler callbacks — the
//!   "scheduling time" of Figures 5, 6 and 13,
//! * produces a full [`Trace`] that [`validate::validate_trace`] re-checks
//!   from scratch (precedence, concurrency, memory).
//!
//! Determinism: simultaneous completions are delivered in ascending node
//! id, and all scheduler queues are tie-broken explicitly, so a simulation
//! is a pure function of (tree, config, scheduler).

pub mod driver;
pub mod engine;
pub mod error;
pub mod moldable;
pub mod scheduler;
pub mod trace;
pub mod validate;

pub use driver::{
    drive, drive_gang, drive_gang_with, Backend, DriveConfig, DriveError, DriveStats, GangBackend,
    GangSnapshot, LiveStats, RescheduleAction, Rescheduler, UnitAllotments,
};
pub use engine::{simulate, SimConfig};
pub use error::SimError;
pub use moldable::{
    simulate_moldable, simulate_moldable_with, AllotmentSegment, MoldableRecord, MoldableScheduler,
    MoldableTrace, SpeedupModel,
};
pub use scheduler::Scheduler;
pub use trace::{TaskRecord, Trace};
